"""Bench: Table 1 — comparison of differentiable co-explorations.

Paper claims (shape, not absolute numbers):
* every baseline needs multiple searches to satisfy 60 FPS (4.9-6.8
  on average) while HDX needs exactly one;
* HDX's GPU-hour cost is a fraction of every baseline's;
* HDX's solution quality (error) is not compromised.
"""

from repro.experiments import render_table1, run_table1

N_RUNS = 8  # paper: 100; ordering stabilizes well before that


def test_table1_methods_comparison(benchmark, save_artifact):
    rows = benchmark.pedantic(lambda: run_table1(n_runs=N_RUNS), rounds=1, iterations=1)
    save_artifact("table1_comparison.txt", render_table1(rows))

    by_method = {r.method: r for r in rows}
    hdx = by_method["HDX"]
    baselines = [r for r in rows if r.method != "HDX"]

    # HDX: one search, hard constraints, always accepted.
    assert hdx.n_searches == 1.0
    assert hdx.hard_constraint
    assert hdx.accept_rate >= 0.9

    # Every baseline needs strictly more searches and GPU-hours.
    for row in baselines:
        assert row.n_searches > 1.5, f"{row.method} needed {row.n_searches}"
        assert row.gpu_hours > hdx.gpu_hours, row.method

    # Baselines land in the paper's 4-8 searches band.
    for row in baselines:
        assert 2.0 <= row.n_searches <= 10.0, f"{row.method}: {row.n_searches}"

    # Quality is not compromised: HDX error within 0.5% absolute of the
    # best baseline (the paper reports HDX strictly best).
    best_baseline_err = min(r.avg_error for r in baselines)
    assert hdx.avg_error <= best_baseline_err + 0.5
