"""Bench: Figure 4 — sensitivity to the pulling magnitude ``p``.

Paper claims: for p in {1e-2, 7e-3, 4e-3} the trajectories share the
same phases (loss-first, then the delta-driven pull, then loss again)
and all final solutions satisfy the 33.3 ms constraint — HDX is
insensitive to its only hyper-parameter.
"""

import numpy as np

from repro.experiments import render_fig4, run_fig4
from repro.experiments.fig4 import P_VALUES, TARGET_MS


def test_fig4_p_sensitivity(benchmark, save_artifact):
    curves = benchmark.pedantic(run_fig4, rounds=1, iterations=1)
    save_artifact("fig4_sensitivity.txt", render_fig4(curves))

    assert {c.p for c in curves} == set(P_VALUES)

    # Every p satisfies the constraint.
    for curve in curves:
        assert curve.final_in_constraint, (
            f"p={curve.p}: final latency {curve.final_latency_ms:.1f} ms"
        )

    # Final latencies agree across p (insensitivity): within 20%.
    finals = [c.final_latency_ms for c in curves]
    assert max(finals) - min(finals) <= 0.2 * TARGET_MS

    # The delta schedule actually grew during the violated phase.
    for curve in curves:
        assert max(curve.delta) > curve.delta[0]

    # Latency ends no higher than its running peak (the pull happened).
    for curve in curves:
        peak = max(curve.latency_ms)
        assert curve.latency_ms[-1] <= peak + 1e-9

    # The global loss improves overall despite the constraint work.
    for curve in curves:
        head = np.mean(curve.global_loss[:10])
        tail = np.mean(curve.global_loss[-10:])
        assert tail < head
