"""Bench: Figure 3 — co-exploration results under 16.6/33.3 ms.

Paper claims:
* every HDX solution satisfies its hard constraint, for every lambda;
* HDX solutions sit right below the bound (no over-optimization);
* soft-constrained baselines mostly fail the tight constraint;
* in error-vs-Cost_HW space HDX is not dominated by the baselines.
"""

from repro.experiments import render_fig3, run_fig3


def test_fig3_constrained_coexploration(benchmark, save_artifact):
    rows = benchmark.pedantic(run_fig3, rounds=1, iterations=1)
    save_artifact("fig3_coexploration.txt", render_fig3(rows))

    hdx = [r for r in rows if r.method == "HDX"]
    assert len(hdx) == 10  # 5 lambdas x 2 constraints

    # Hard constraints: all (allow one borderline estimator miss).
    violations = [r for r in hdx if not r.in_constraint]
    assert len(violations) <= 1, f"HDX violations: {violations}"

    # Solutions sit right below the bound: within [55%, 100%] of it.
    for r in hdx:
        if r.in_constraint:
            assert r.latency_ms >= 0.55 * r.constraint_ms, (
                f"over-optimized: {r.latency_ms:.1f} vs bound {r.constraint_ms}"
            )

    # Soft baselines fail the tight 16.6 ms constraint most of the time.
    soft_tight = [
        r
        for r in rows
        if r.method in ("DANCE+Soft", "Auto-NBA+Soft") and r.constraint_ms == 16.6
    ]
    fail_rate = sum(not r.in_constraint for r in soft_tight) / len(soft_tight)
    assert fail_rate >= 0.5, f"soft baselines failed only {100*fail_rate:.0f}%"

    # Pareto check against the co-exploration baselines: none of them
    # strictly dominates a tight-constraint HDX point while also being
    # feasible.  (The NAS->HW reference cloud is excluded: its weakness
    # is that it cannot *target* a constraint — Table 1 — not that its
    # trial points cannot land near one.)
    hdx_tight = [r for r in hdx if r.constraint_ms == 16.6 and r.in_constraint]
    others = [r for r in rows if r.method not in ("HDX", "NAS->HW")]
    for h in hdx_tight:
        dominated = any(
            o.cost_hw < h.cost_hw and o.error_percent < h.error_percent and
            o.latency_ms <= 16.6
            for o in others
        )
        assert not dominated, "an in-constraint baseline dominates an HDX point"
