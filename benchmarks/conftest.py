"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one paper table/figure, asserts the shape
claims the paper makes about it, and writes the rendered artifact to
``benchmarks/results/``.
"""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_artifact(results_dir):
    def _save(name: str, content: str) -> str:
        path = os.path.join(results_dir, name)
        with open(path, "w") as handle:
            handle.write(content + "\n")
        print(f"\n{content}\n[saved to {path}]")
        return path

    return _save
