"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one paper table/figure, asserts the shape
claims the paper makes about it, and writes the rendered artifact to
``benchmarks/results/``.

The session additionally records the wall-clock of the search-heavy
benchmarks against the timings of the pre-fleet seed tree and writes
``results/BENCH_fleet.json`` so the perf trajectory of the batched
search engine is tracked commit over commit.
"""

import json
import os
import platform
import time

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Wall-clock of the search-heavy benchmarks at the seed tree (scalar
#: ``CoExplorer`` loops, pre-``SearchFleet``), measured with a warm
#: estimator cache on the reference container back-to-back with the
#: fleet measurements (a git worktree at the seed commit), so the
#: recorded speedup is robust to machine-load drift.  The fleet's
#: acceptance bar is a >= 5x combined improvement over these.
SEED_TIMINGS_S = {
    "test_fig1_lambda_sweep": 12.6843,
    "test_fig3_constrained_coexploration": 18.7756,
    "test_table1_methods_comparison": 65.1924,
}

#: Hostname the seed timings were calibrated on.  Speedups computed
#: against these constants on a different machine are meaningless, so
#: the tracked JSON is only (re)written when the hostnames match.
SEED_TIMINGS_MACHINE = "vm"

_FLEET_TIMINGS = {}


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    start = time.perf_counter()
    outcome = yield
    # Only passing runs produce meaningful timings — an assertion 0.3 s
    # into a benchmark must not be recorded as a 0.3 s "speedup".
    if item.name in SEED_TIMINGS_S and outcome.excinfo is None:
        _FLEET_TIMINGS[item.name] = time.perf_counter() - start


def pytest_sessionfinish(session, exitstatus):
    # Only a clean session that timed all three tests on the calibration
    # machine may replace the committed record — a filtered run
    # (``-k fig1``), a failing one, or a contributor's laptop must not
    # clobber the last meaningful measurement.
    if exitstatus != 0 or set(_FLEET_TIMINGS) != set(SEED_TIMINGS_S):
        return
    if (platform.node() or "unknown") != SEED_TIMINGS_MACHINE:
        return
    os.makedirs(RESULTS_DIR, exist_ok=True)
    tests = {
        name: {
            "seed_s": SEED_TIMINGS_S[name],
            "current_s": round(elapsed, 4),
            "speedup": round(SEED_TIMINGS_S[name] / elapsed, 2),
        }
        for name, elapsed in _FLEET_TIMINGS.items()
    }
    seed_total = sum(entry["seed_s"] for entry in tests.values())
    current_total = sum(entry["current_s"] for entry in tests.values())
    payload = {
        "note": (
            "Wall-clock of the search-heavy benchmarks vs the scalar-engine "
            "seed tree; produced by benchmarks/conftest.py on every passing "
            "benchmark run that includes all three tests.  Only meaningful "
            "when measured on the machine the SEED_TIMINGS_S constants were "
            "calibrated on (see conftest) — 'machine' records where this "
            "snapshot came from."
        ),
        "tests": tests,
        "machine": platform.node() or "unknown",
        "seed_total_s": round(seed_total, 4),
        "current_total_s": round(current_total, 4),
        "fleet_speedup": round(seed_total / current_total, 2),
    }
    path = os.path.join(RESULTS_DIR, "BENCH_fleet.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_artifact(results_dir):
    def _save(name: str, content: str) -> str:
        path = os.path.join(results_dir, name)
        with open(path, "w") as handle:
            handle.write(content + "\n")
        print(f"\n{content}\n[saved to {path}]")
        return path

    return _save
