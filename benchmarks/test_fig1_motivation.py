"""Bench: Figure 1 — the motivational lambda_cost sweep.

Paper claim: latency/energy respond to lambda_cost with *some* trend
but with variance and non-monotonicity large enough that tuning lambda
cannot reliably target a latency bound.
"""

import numpy as np

from repro.experiments import render_fig1, run_fig1


def test_fig1_lambda_sweep(benchmark, save_artifact):
    rows = benchmark.pedantic(
        lambda: run_fig1(seeds_per_lambda=3), rounds=1, iterations=1
    )
    save_artifact("fig1_motivation.txt", render_fig1(rows))

    lats = {}
    for row in rows:
        lats.setdefault(row.lambda_cost, []).append(row.latency_ms)
    lambdas = sorted(lats)

    # Overall trend: larger lambda -> lower latency (correlation < 0).
    xs = [lam for lam in lambdas for _ in lats[lam]]
    ys = [lat for lam in lambdas for lat in lats[lam]]
    corr = np.corrcoef(xs, ys)[0, 1]
    assert corr < -0.5, f"expected a downward latency trend, corr={corr:.2f}"

    # But per-setting variance exists: at least some settings vary by
    # a visible amount between seeds (the paper's inconsistency).
    spreads = [max(v) - min(v) for v in lats.values()]
    assert max(spreads) > 1.0, "no per-search variance — motivation would vanish"

    # And the mapping lambda -> latency is not a clean function: the
    # spread bands of adjacent lambdas overlap somewhere.
    overlapping = sum(
        1
        for a, b in zip(lambdas[:-1], lambdas[1:])
        if max(lats[b]) > min(lats[a])
    )
    assert overlapping >= 1
