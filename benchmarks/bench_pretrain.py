"""Measure the pretraining pipeline: dataset build + estimator training.

Produces the numbers recorded in ``results/BENCH_pretrain.json``.  Run
the same script from a seed-of-the-PR worktree for the "seed" column
(the vectorized entry points degrade gracefully: on the seed tree the
``backend=`` kwarg does not exist, so training is timed through the
plain ``train_estimator`` call)::

    git worktree add /tmp/seedtree <seed-commit>
    (cd /tmp/seedtree && PYTHONPATH=src python /path/to/bench_pretrain.py)
    PYTHONPATH=src python benchmarks/bench_pretrain.py

End-to-end cold pretrain of every registered platform::

    rm -rf /tmp/bench-cache
    time REPRO_CACHE_DIR=/tmp/bench-cache python -m repro pretrain

Measurements are wall-clock on one process; run on an otherwise idle
machine and prefer the median of the repeats.
"""

from __future__ import annotations

import inspect
import json
import time

from repro.arch import cifar_space
from repro.estimator import CostEstimator, build_cost_dataset, train_estimator

REPEATS = 3
N_SAMPLES = 8000
EPOCHS = 120


def main() -> None:
    space = cifar_space()
    out = {"n_samples": N_SAMPLES, "epochs": EPOCHS, "platform": "eyeriss"}

    times = []
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        dataset = build_cost_dataset(space, n_samples=N_SAMPLES, seed=0, platform="eyeriss")
        times.append(round(time.perf_counter() - t0, 3))
    out["dataset_build_s"] = times

    fused = "backend" in inspect.signature(train_estimator).parameters
    out["train_backend"] = "fused" if fused else "autodiff (seed tree)"
    times = []
    for _ in range(REPEATS):
        estimator = CostEstimator(space, width=128, seed=0, platform="eyeriss")
        t0 = time.perf_counter()
        train_estimator(estimator, dataset, epochs=EPOCHS, seed=0)
        times.append(round(time.perf_counter() - t0, 3))
    out["training_s"] = times

    print(json.dumps(out, indent=2))


if __name__ == "__main__":
    main()
