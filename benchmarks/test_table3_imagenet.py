"""Bench: Table 3 — ImageNet-scale results under 125 ms.

Paper claims: baselines produce a mix of in/out-of-constraint
solutions; HDX is always inside; HDX quality (error, loss) matches the
best baselines.
"""

from repro.experiments import render_table3, run_table3


def test_table3_imagenet(benchmark, save_artifact):
    rows = benchmark.pedantic(run_table3, rounds=1, iterations=1)
    save_artifact("table3_imagenet.txt", render_table3(rows))

    hdx = [r for r in rows if r.method == "HDX"]
    baselines = [r for r in rows if r.method != "HDX"]
    assert len(hdx) == 2

    # HDX always satisfies the constraint.
    for row in hdx:
        assert row.in_constraint, f"HDX at {row.latency_ms:.1f} ms"

    # At least one baseline run misses the constraint (the paper shows
    # several), demonstrating the problem exists at this scale.
    assert any(not r.in_constraint for r in baselines)

    # Quality not compromised: best HDX error within 1% absolute of the
    # best *in-constraint* baseline error (out-of-constraint solutions
    # are not valid alternatives).
    feasible_baselines = [r for r in baselines if r.in_constraint]
    assert feasible_baselines
    assert min(r.error_percent for r in hdx) <= min(
        r.error_percent for r in feasible_baselines
    ) + 1.0
