"""Bench: ablations of HDX design choices (DESIGN.md Sec. 5).

Not a paper table — these benches validate the *reasons* behind the
paper's design decisions:

1. conditional manipulation (Eq. 4's dot-product test) vs always-on;
2. geometric delta growth vs (effectively) constant delta;
3. the minimum-norm margin delta vs naive projection (delta -> 0);
4. weighted-sum Cost_HW vs EDP (the paper: products unfairly favour
   energy-oriented designs);
5. manipulated generator updates vs plain g_CostHW.
"""

import numpy as np
import pytest

from repro.baselines import dance_config, hdx_config
from repro.core import ConstraintSet, run_many
from repro.experiments.common import format_table, get_estimator, get_space

SEEDS = (0, 1, 2)
TARGET = 16.6


@pytest.fixture(scope="module")
def env():
    return get_space("cifar10"), get_estimator("cifar10")


def satisfaction_rate(results):
    return sum(r.in_constraint for r in results) / len(results)


def test_ablation_conditional_vs_always(env, benchmark, save_artifact):
    """Always-on manipulation still satisfies but costs solution quality."""
    space, est = env
    cs = ConstraintSet.latency(TARGET)

    def run_pair():
        # Both arms share one graph structure, so all six searches run
        # as a single fleet batch (manipulate_always is per-run data).
        results = run_many(space, est,
            [hdx_config(cs, seed=s) for s in SEEDS]
            + [hdx_config(cs, seed=s, manipulate_always=True) for s in SEEDS])
        return results[: len(SEEDS)], results[len(SEEDS):]

    cond, always = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    rows = [
        ["conditional (paper)", f"{satisfaction_rate(cond):.2f}",
         f"{np.mean([r.error_percent for r in cond]):.2f}"],
        ["always-on", f"{satisfaction_rate(always):.2f}",
         f"{np.mean([r.error_percent for r in always]):.2f}"],
    ]
    save_artifact(
        "ablation_conditional.txt",
        format_table(["variant", "in-rate", "avg err (%)"], rows,
                     title="Ablation 1: conditional vs always-on manipulation"),
    )
    assert satisfaction_rate(cond) >= 2 / 3
    # The conditional rule should not be worse on error.
    assert np.mean([r.error_percent for r in cond]) <= np.mean(
        [r.error_percent for r in always]
    ) + 0.3


def test_ablation_delta_growth(env, benchmark, save_artifact):
    """Geometric growth outperforms an (effectively) constant delta."""
    space, est = env
    cs = ConstraintSet.latency(TARGET)

    def run_pair():
        results = run_many(space, est,
            [hdx_config(cs, seed=s, p=1e-2) for s in SEEDS]
            + [hdx_config(cs, seed=s, p=1e-9) for s in SEEDS])
        return results[: len(SEEDS)], results[len(SEEDS):]

    growing, constant = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    rows = [
        ["geometric (paper)", f"{satisfaction_rate(growing):.2f}"],
        ["constant delta", f"{satisfaction_rate(constant):.2f}"],
    ]
    save_artifact(
        "ablation_delta.txt",
        format_table(["variant", "in-rate"], rows, title="Ablation 2: delta schedule"),
    )
    assert satisfaction_rate(growing) >= satisfaction_rate(constant)


def test_ablation_margin_vs_projection(env, benchmark, save_artifact):
    """delta -> 0 degenerates to projection: never actively reduces the
    violation, so satisfaction cannot beat the margin variant."""
    space, est = env
    cs = ConstraintSet.latency(TARGET)

    def run_pair():
        results = run_many(space, est,
            [hdx_config(cs, seed=s) for s in SEEDS]
            + [hdx_config(cs, seed=s, delta0=1e-12, p=1e-9) for s in SEEDS])
        return results[: len(SEEDS)], results[len(SEEDS):]

    margin, projection = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    rows = [
        ["min-norm margin (paper)", f"{satisfaction_rate(margin):.2f}",
         f"{np.mean([r.metrics.latency_ms for r in margin]):.1f}"],
        ["naive projection", f"{satisfaction_rate(projection):.2f}",
         f"{np.mean([r.metrics.latency_ms for r in projection]):.1f}"],
    ]
    save_artifact(
        "ablation_projection.txt",
        format_table(["variant", "in-rate", "avg lat (ms)"], rows,
                     title="Ablation 3: margin vs naive projection"),
    )
    assert satisfaction_rate(margin) >= satisfaction_rate(projection)


def test_ablation_cost_function_shape(env, benchmark, save_artifact):
    """EDP product cost skews designs toward energy compared to the
    balanced weighted sum (paper Sec. 4.4)."""
    space, est = env

    def run_pair():
        # use_edp_cost changes the loss graph, so the fleet splits this
        # into two structural groups internally — still one dispatch.
        results = run_many(space, est,
            [dance_config(lambda_cost=0.003, seed=s) for s in SEEDS]
            + [dance_config(lambda_cost=0.003, seed=s, use_edp_cost=True) for s in SEEDS])
        return results[: len(SEEDS)], results[len(SEEDS):]

    weighted, edp = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    w_energy = np.mean([r.metrics.energy_mj for r in weighted])
    e_energy = np.mean([r.metrics.energy_mj for r in edp])
    w_ratio = np.mean(
        [r.metrics.energy_mj / r.metrics.latency_ms for r in weighted]
    )
    e_ratio = np.mean([r.metrics.energy_mj / r.metrics.latency_ms for r in edp])
    rows = [
        ["weighted sum (paper)", f"{w_energy:.2f}", f"{w_ratio:.3f}"],
        ["EDP product", f"{e_energy:.2f}", f"{e_ratio:.3f}"],
    ]
    save_artifact(
        "ablation_cost_shape.txt",
        format_table(["cost fn", "avg energy (mJ)", "energy/latency"], rows,
                     title="Ablation 4: cost-function shape"),
    )
    # EDP pushes the energy-vs-latency balance toward energy.
    assert e_ratio <= w_ratio * 1.05


def test_ablation_generator_manipulation(env, benchmark, save_artifact):
    """Manipulated generator updates help the accelerator side comply."""
    space, est = env
    cs = ConstraintSet.latency(TARGET)

    def run_pair():
        results = run_many(space, est,
            [hdx_config(cs, seed=s) for s in SEEDS]
            + [hdx_config(cs, seed=s, manipulate_generator=False) for s in SEEDS])
        return results[: len(SEEDS)], results[len(SEEDS):]

    with_manip, without = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    rows = [
        ["manipulated v (paper)", f"{satisfaction_rate(with_manip):.2f}"],
        ["plain g_CostHW", f"{satisfaction_rate(without):.2f}"],
    ]
    save_artifact(
        "ablation_generator.txt",
        format_table(["variant", "in-rate"], rows,
                     title="Ablation 5: generator update rule"),
    )
    assert satisfaction_rate(with_manip) >= satisfaction_rate(without) - 0.34
