"""Bench: Table 2 — anchor-derived constraints.

Paper claims: whenever constraints are copied from an existing (DANCE
anchor) solution — so a satisfying solution provably exists — HDX
finds a valid solution in all 8 cases, with global loss similar to the
anchor's.
"""

from repro.experiments import render_table2, run_table2


def test_table2_anchor_constraints(benchmark, save_artifact):
    rows = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    save_artifact("table2_anchors.txt", render_table2(rows))

    hdx_rows = [r for r in rows if r.constrained != "Anchor"]
    anchors = {r.anchor: r for r in rows if r.constrained == "Anchor"}
    assert len(hdx_rows) == 8
    assert len(anchors) == 2

    # All constrained searches succeed (allow one borderline miss out
    # of 8, mirroring estimator-tail effects).
    n_ok = sum(r.in_constraint for r in hdx_rows)
    assert n_ok >= 7, f"only {n_ok}/8 anchor cases satisfied"

    # Quality: global loss within 15% of the anchor's loss.
    for row in hdx_rows:
        anchor = anchors[row.anchor]
        assert row.loss <= anchor.loss * 1.15, (
            f"{row.anchor}/{row.constrained}: loss {row.loss:.3f} vs "
            f"anchor {anchor.loss:.3f}"
        )

    # The singly-constrained runs actually honour their own metric.
    metric_of = {"Latency": "latency_ms", "Energy": "energy_mj", "Chip Area": "area_mm2"}
    for row in hdx_rows:
        if row.constrained in metric_of and row.in_constraint:
            anchor = anchors[row.anchor]
            bound = getattr(anchor, metric_of[row.constrained])
            assert getattr(row, metric_of[row.constrained]) <= bound * 1.001
