"""Bench: Figure 5 — analysis of searched solutions.

Paper claims: the 60 FPS design uses smaller kernels and a
latency-lean accelerator; the 30 FPS design can afford larger kernels
and an energy-lean (row-stationary, smaller-array or bigger-RF)
accelerator.
"""

from repro.experiments import render_fig5, run_fig5


def test_fig5_solution_analysis(benchmark, save_artifact):
    solutions = benchmark.pedantic(run_fig5, rounds=1, iterations=1)
    save_artifact("fig5_solutions.txt", render_fig5(solutions))

    by_fps = {s.fps: s for s in solutions}
    tight, loose = by_fps[60], by_fps[30]

    # Both satisfy their constraints.
    assert tight.result.in_constraint
    assert loose.result.in_constraint

    # The tight design is the faster one...
    assert tight.result.metrics.latency_ms < loose.result.metrics.latency_ms
    # ...and pays for it in accuracy.
    assert tight.result.error_percent >= loose.result.error_percent - 0.15

    # Network side: the tight design cannot afford more capacity.
    assert tight.result.arch.total_macs() <= loose.result.arch.total_macs()

    # The loose design optimizes energy better (energy-lean direction).
    assert loose.result.metrics.energy_mj >= tight.result.metrics.energy_mj
