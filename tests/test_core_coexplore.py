"""Integration tests for the co-exploration loop (surrogate fidelity).

These run real searches end-to-end with a shared pre-trained
estimator; reduced epoch counts keep them fast while still exercising
the constraint machinery.
"""

import numpy as np
import pytest

from repro.arch import cifar_space
from repro.core import CoExplorer, ConstraintSet, SearchConfig
from repro.estimator import pretrain_estimator
from repro.surrogate import AccuracySurrogate

SPACE = cifar_space()


@pytest.fixture(scope="module")
def estimator():
    # Production-quality pre-training: constraint satisfaction depends
    # on estimator accuracy (the paper quotes >99%), so tests must not
    # run with a deliberately weakened cost model.  The experiments
    # disk cache avoids re-training in every test module.
    from repro.experiments.common import get_estimator

    return get_estimator("cifar10")


def run(estimator, **overrides):
    defaults = dict(epochs=80, seed=0)
    defaults.update(overrides)
    return CoExplorer(SPACE, estimator, SearchConfig(**defaults)).search()


class TestSearchMechanics:
    def test_unfrozen_estimator_rejected(self):
        from repro.estimator import CostEstimator

        est = CostEstimator(SPACE)
        with pytest.raises(ValueError):
            CoExplorer(SPACE, est, SearchConfig())

    def test_full_fidelity_requires_dataset(self, estimator):
        with pytest.raises(ValueError):
            CoExplorer(SPACE, estimator, SearchConfig(fidelity="full"))

    def test_unknown_fidelity_rejected(self, estimator):
        with pytest.raises(ValueError):
            CoExplorer(SPACE, estimator, SearchConfig(fidelity="quantum"))

    def test_history_length_matches_epochs(self, estimator):
        result = run(estimator, epochs=40)
        assert len(result.history) == 40

    def test_result_fields_populated(self, estimator):
        result = run(estimator, epochs=40)
        assert result.arch is not None
        assert result.metrics.latency_ms > 0
        assert result.cost > 0
        assert 3.0 < result.error_percent < 12.0

    def test_deterministic_given_seed(self, estimator):
        a = run(estimator, epochs=40, seed=3)
        b = run(estimator, epochs=40, seed=3)
        assert a.arch == b.arch
        assert a.config == b.config

    def test_seeds_differ(self, estimator):
        archs = {run(estimator, epochs=60, seed=s).arch for s in range(4)}
        assert len(archs) > 1

    def test_ground_truth_metrics_reported(self, estimator):
        """Reported metrics must come from the oracle, not the estimator."""
        from repro.accelerator import evaluate_network

        result = run(estimator, epochs=40)
        truth = evaluate_network(result.arch, result.config)
        assert result.metrics == truth


class TestConstraintBehaviour:
    def test_unconstrained_never_manipulates(self, estimator):
        result = run(estimator, epochs=40, hard_constraints=True)
        assert not any(r.manipulated_alpha for r in result.history)

    def test_loose_constraint_not_binding(self, estimator):
        result = run(estimator, constraints=ConstraintSet.latency(500.0))
        assert result.in_constraint
        # Essentially never violated during search either.
        violated_epochs = sum(r.violated for r in result.history)
        assert violated_epochs <= 2

    def test_tight_constraint_triggers_manipulation(self, estimator):
        result = run(estimator, constraints=ConstraintSet.latency(16.6), epochs=150)
        assert any(r.manipulated_alpha for r in result.history)

    def test_tight_constraint_satisfied(self, estimator):
        result = run(
            estimator,
            constraints=ConstraintSet.latency(16.6),
            epochs=150,
            lambda_cost=0.001,
        )
        assert result.in_constraint, f"landed at {result.metrics.latency_ms:.1f} ms"

    def test_constraint_costs_accuracy(self, estimator):
        free = run(estimator, hard_constraints=False, epochs=150)
        tight = run(estimator, constraints=ConstraintSet.latency(16.6), epochs=150)
        assert tight.metrics.latency_ms < free.metrics.latency_ms
        assert tight.error_percent >= free.error_percent - 0.2

    def test_delta_grows_during_violation(self, estimator):
        result = run(estimator, constraints=ConstraintSet.latency(16.6), epochs=150)
        deltas = [r.delta for r in result.history if r.violated]
        if len(deltas) > 10:
            assert max(deltas) > deltas[0]

    def test_disabled_hard_constraints_ignore_violations(self, estimator):
        result = run(
            estimator,
            constraints=ConstraintSet.latency(16.6),
            hard_constraints=False,
            method_name="DANCE",
            epochs=60,
        )
        assert not any(r.manipulated_alpha for r in result.history)


class TestBaselineSwitches:
    def test_direct_beta_mode(self, estimator):
        result = run(estimator, use_generator=False, epochs=60)
        assert result.config is not None

    def test_soft_constraint_mode(self, estimator):
        result = run(
            estimator,
            hard_constraints=False,
            soft_lambda=0.5,
            constraints=ConstraintSet.latency(16.6),
            epochs=60,
        )
        assert result is not None

    def test_nas_only_mode_ignores_hardware(self, estimator):
        result = run(estimator, include_cost_term=False, hard_constraints=False, epochs=60)
        # Without the cost term the search maximizes capacity only.
        free = run(estimator, hard_constraints=False, lambda_cost=0.005, epochs=60)
        assert result.error_percent <= free.error_percent + 0.3

    def test_lambda_cost_controls_tradeoff(self, estimator):
        low = run(estimator, hard_constraints=False, lambda_cost=0.001, epochs=120, seed=1)
        high = run(estimator, hard_constraints=False, lambda_cost=0.01, epochs=120, seed=1)
        assert high.metrics.latency_ms < low.metrics.latency_ms
        assert high.error_percent > low.error_percent


class TestSurrogate:
    def test_expected_error_in_band(self):
        surrogate = AccuracySurrogate(SPACE, seed=0)
        from repro.arch import NetworkArch

        rng = np.random.default_rng(0)
        errors = [surrogate.error_of(NetworkArch.random(SPACE, rng)) for _ in range(30)]
        assert min(errors) > 3.5
        assert max(errors) < 9.0

    def test_capacity_monotone_in_choice_quality(self):
        surrogate = AccuracySurrogate(SPACE, seed=0)
        from repro.arch import NetworkArch

        weak = NetworkArch.from_indices(SPACE, [0] * 18)  # (3,3) everywhere
        strong = NetworkArch.from_indices(SPACE, [5] * 18)  # (7,6) everywhere
        assert surrogate.error_of(strong) < surrogate.error_of(weak)

    def test_loss_tracks_error(self):
        surrogate = AccuracySurrogate(SPACE, seed=0)
        from repro.arch import NetworkArch

        a = NetworkArch.from_indices(SPACE, [0] * 18)
        b = NetworkArch.from_indices(SPACE, [5] * 18)
        assert (surrogate.loss_of(a) > surrogate.loss_of(b)) == (
            surrogate.error_of(a) > surrogate.error_of(b)
        )

    def test_trained_error_noise_is_seeded(self):
        surrogate = AccuracySurrogate(SPACE, seed=0)
        from repro.arch import NetworkArch

        arch = NetworkArch.from_indices(SPACE, [2] * 18)
        assert surrogate.trained_error(arch, seed=1) == surrogate.trained_error(arch, seed=1)
        assert surrogate.trained_error(arch, seed=1) != surrogate.trained_error(arch, seed=2)

    def test_landscape_jitter_changes_scores(self):
        a = AccuracySurrogate(SPACE, seed=0)
        b = AccuracySurrogate(SPACE, seed=0, landscape_jitter=0.2, jitter_seed=5)
        assert not np.allclose(a._scores, b._scores)

    def test_differentiable_loss(self):
        from repro.autodiff import Tensor
        from repro.arch.encoding import arch_features_from_alpha

        surrogate = AccuracySurrogate(SPACE, seed=0)
        alpha = Tensor(np.zeros((SPACE.num_layers, SPACE.num_choices)), requires_grad=True)
        feats = arch_features_from_alpha(SPACE, alpha)
        surrogate.loss_nas(feats).backward()
        assert alpha.grad is not None and np.any(alpha.grad != 0)
