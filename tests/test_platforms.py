"""Tests for the pluggable hardware-platform layer.

Covers the registry, the per-platform design spaces and vector
encodings, the per-platform scalar<->batched bit-level parity contract,
fleet-vs-scalar search parity on every registered platform, the
(space, platform, seed) estimator cache keys, and platform round-trips
through serialization and the CLI.
"""

import json
import os

import numpy as np
import pytest

from repro.accelerator import (
    DATAFLOWS,
    AcceleratorConfig,
    Dataflow,
    DesignSpace,
    Platform,
    area_mm2,
    as_platform,
    available_platforms,
    evaluate_network,
    exhaustive_search,
    get_platform,
    register_platform,
    unregister_platform,
)
from repro.accelerator.batch import evaluate_network_batch, evaluate_network_space
from repro.accelerator.energy import EnergyTable, default_energy_table
from repro.arch import NetworkArch, cifar_space
from repro.core import CoExplorer, ConstraintSet, SearchConfig, run_many
from repro.core.coexplore import neighbourhood_configs
from repro.estimator import pretrain_estimator

SPACE = cifar_space()
PLATFORM_NAMES = tuple(available_platforms())

#: Per-platform latency bounds that keep the constraint machinery alive
#: in the reduced-epoch parity searches (the platforms' latency scales
#: differ by ~50x, so one bound cannot serve all).
LATENCY_BOUND = {"eyeriss": 16.6, "edge": 100.0, "tpu-like": 4.0}


@pytest.fixture(scope="module")
def small_estimators():
    """One small pre-trained estimator per registered platform.

    Search parity does not depend on estimator quality, only on both
    engines sharing the same frozen weights, so tiny training settings
    keep the suite fast.
    """
    return {
        name: pretrain_estimator(SPACE, n_samples=400, epochs=8, seed=0, platform=name)
        for name in PLATFORM_NAMES
    }


def _tmp_platform(name: str) -> Platform:
    eyeriss = get_platform("eyeriss")
    return Platform(
        name=name,
        pe_rows_range=(2, 3, 4),
        pe_cols_range=(2, 3, 4),
        rf_bytes_options=(16, 32),
        word_bytes=2,
        global_buffer_bytes=16 * 1024,
        clock_mhz=50.0,
        buffer_words_per_cycle=8.0,
        dram_words_per_cycle=2.0,
        ws_depthwise_penalty=0.25,
        dataflow_energy_factor=dict(eyeriss.dataflow_energy_factor),
        energy_table=default_energy_table(),
        pe_base_mm2=0.001,
        rf_mm2_per_byte=4.0e-6,
        global_buffer_mm2=0.2,
        noc_mm2_per_lane=0.001,
    )


class TestRegistry:
    def test_builtins_registered(self):
        assert {"eyeriss", "edge", "tpu-like"} <= set(available_platforms())

    def test_lookup_and_resolution(self):
        eyeriss = get_platform("eyeriss")
        assert as_platform(None) is eyeriss
        assert as_platform("eyeriss") is eyeriss
        assert as_platform(eyeriss) is eyeriss

    def test_unknown_name_raises_with_options(self):
        with pytest.raises(ValueError, match="unknown platform"):
            get_platform("does-not-exist")

    def test_duplicate_registration_raises(self):
        with pytest.raises(ValueError, match="already registered"):
            register_platform(get_platform("eyeriss"))

    def test_register_replace_and_unregister(self):
        plat = _tmp_platform("test-tmp")
        try:
            register_platform(plat)
            assert get_platform("test-tmp") is plat
            replacement = _tmp_platform("test-tmp")
            with pytest.raises(ValueError):
                register_platform(replacement)
            register_platform(replacement, replace=True)
            assert get_platform("test-tmp") is replacement
        finally:
            unregister_platform("test-tmp")
        assert "test-tmp" not in available_platforms()

    def test_non_contiguous_pe_range_rejected(self):
        with pytest.raises(ValueError, match="contiguous"):
            Platform(
                name="bad",
                pe_rows_range=(2, 4, 8),
                pe_cols_range=(2, 3, 4),
                rf_bytes_options=(16, 32),
                word_bytes=2,
                global_buffer_bytes=1024,
                clock_mhz=100.0,
                buffer_words_per_cycle=8.0,
                dram_words_per_cycle=2.0,
                ws_depthwise_penalty=0.25,
                dataflow_energy_factor={df: 1.0 for df in DATAFLOWS},
                energy_table=default_energy_table(),
                pe_base_mm2=0.001,
                rf_mm2_per_byte=4.0e-6,
                global_buffer_mm2=0.2,
                noc_mm2_per_lane=0.001,
            )

    def test_missing_dataflow_factor_rejected(self):
        with pytest.raises(ValueError, match="dataflow_energy_factor"):
            Platform(
                name="bad",
                pe_rows_range=(2, 3, 4),
                pe_cols_range=(2, 3, 4),
                rf_bytes_options=(16, 32),
                word_bytes=2,
                global_buffer_bytes=1024,
                clock_mhz=100.0,
                buffer_words_per_cycle=8.0,
                dram_words_per_cycle=2.0,
                ws_depthwise_penalty=0.25,
                dataflow_energy_factor={Dataflow.WS: 1.0},
                energy_table=default_energy_table(),
                pe_base_mm2=0.001,
                rf_mm2_per_byte=4.0e-6,
                global_buffer_mm2=0.2,
                noc_mm2_per_lane=0.001,
            )


class TestEyerissIsTheSeedTarget:
    """The default platform must be the seed's constants, verbatim."""

    def test_matches_legacy_module_constants(self):
        from repro.accelerator import area, timeloop
        from repro.accelerator.config import (
            GLOBAL_BUFFER_BYTES,
            PE_COLS_RANGE,
            PE_ROWS_RANGE,
            RF_BYTES_OPTIONS,
            WORD_BYTES,
        )

        plat = get_platform("eyeriss")
        assert plat.pe_rows_range == PE_ROWS_RANGE
        assert plat.pe_cols_range == PE_COLS_RANGE
        assert plat.rf_bytes_options == RF_BYTES_OPTIONS
        assert plat.word_bytes == WORD_BYTES
        assert plat.global_buffer_bytes == GLOBAL_BUFFER_BYTES
        assert plat.clock_mhz == timeloop.CLOCK_MHZ
        assert plat.buffer_words_per_cycle == timeloop.BUFFER_WORDS_PER_CYCLE
        assert plat.dram_words_per_cycle == timeloop.DRAM_WORDS_PER_CYCLE
        assert plat.ws_depthwise_penalty == timeloop.WS_DEPTHWISE_PENALTY
        assert dict(plat.dataflow_energy_factor) == timeloop.DATAFLOW_ENERGY_FACTOR
        assert plat.energy_table is default_energy_table()
        assert plat.pe_base_mm2 == area.PE_BASE_MM2
        assert plat.rf_mm2_per_byte == area.RF_MM2_PER_BYTE
        assert plat.global_buffer_mm2 == area.GLOBAL_BUFFER_MM2
        assert plat.noc_mm2_per_lane == area.NOC_MM2_PER_LANE

    def test_default_constructions_are_eyeriss(self):
        assert AcceleratorConfig(16, 16, 64, Dataflow.RS).platform == "eyeriss"
        assert DesignSpace().platform.name == "eyeriss"


@pytest.mark.parametrize("name", PLATFORM_NAMES)
class TestPerPlatformDesignSpace:
    def test_space_size_and_iteration(self, name):
        plat = get_platform(name)
        ds = plat.design_space()
        expected = (
            len(plat.pe_rows_range)
            * len(plat.pe_cols_range)
            * len(plat.rf_bytes_options)
            * len(plat.dataflows)
        )
        assert len(ds) == expected
        assert sum(1 for _ in ds) == expected

    def test_out_of_range_config_rejected(self, name):
        plat = get_platform(name)
        with pytest.raises(ValueError):
            AcceleratorConfig(
                plat.pe_rows_range[-1] + 1,
                plat.pe_cols_range[0],
                plat.rf_bytes_options[0],
                Dataflow.WS,
                platform=name,
            )
        with pytest.raises(ValueError):
            AcceleratorConfig(
                plat.pe_rows_range[0],
                plat.pe_cols_range[0],
                plat.rf_bytes_options[0] + 1,
                Dataflow.WS,
                platform=name,
            )

    def test_vector_roundtrip(self, name):
        plat = get_platform(name)
        rng = np.random.default_rng(3)
        ds = plat.design_space()
        for _ in range(40):
            cfg = ds.sample(rng)
            restored = AcceleratorConfig.from_vector(cfg.to_vector(), platform=name)
            assert restored == cfg
            assert restored.platform == name

    def test_neighbourhood_stays_in_platform_space(self, name):
        plat = get_platform(name)
        rng = np.random.default_rng(5)
        centre = plat.design_space().sample(rng)
        neighbours = list(neighbourhood_configs(centre))
        assert neighbours, "neighbourhood must not be empty"
        for cfg in neighbours:
            assert cfg.platform == name
            assert plat.contains(cfg.pe_rows, cfg.pe_cols, cfg.rf_bytes)

    def test_area_monotone_in_pes_and_rf(self, name):
        plat = get_platform(name)
        rows, cols, rfs = plat.pe_rows_range, plat.pe_cols_range, plat.rf_bytes_options
        small = plat.config(rows[0], cols[0], rfs[0], Dataflow.RS)
        large = plat.config(rows[-1], cols[-1], rfs[0], Dataflow.RS)
        assert area_mm2(large) > area_mm2(small)
        lo = plat.config(rows[0], cols[0], rfs[0], Dataflow.RS)
        hi = plat.config(rows[0], cols[0], rfs[-1], Dataflow.RS)
        assert area_mm2(hi) > area_mm2(lo)


@pytest.mark.parametrize("name", PLATFORM_NAMES)
class TestPerPlatformScalarBatchParity:
    """The scalar<->vectorized mirror contract holds per platform."""

    def test_full_space_matches_scalar(self, name):
        plat = get_platform(name)
        rng = np.random.default_rng(7)
        arch = NetworkArch.random(SPACE, rng)
        ev = plat.evaluate_network_space(arch)
        assert len(ev.configs) == len(plat.design_space())
        for index in rng.choice(len(ev.configs), size=15, replace=False):
            truth = evaluate_network(arch, ev.configs[index])
            assert ev.latency_ms[index] == pytest.approx(truth.latency_ms, rel=1e-12)
            assert ev.energy_mj[index] == pytest.approx(truth.energy_mj, rel=1e-12)
            assert ev.area_mm2[index] == pytest.approx(truth.area_mm2, rel=1e-12)

    def test_subset_matches_scalar_on_repair_neighbourhood(self, name):
        plat = get_platform(name)
        rng = np.random.default_rng(9)
        arch = NetworkArch.random(SPACE, rng)
        centre = plat.design_space().sample(rng)
        neighbours = list(neighbourhood_configs(centre))
        ev = evaluate_network_batch(arch, neighbours)
        for index in range(0, len(neighbours), max(1, len(neighbours) // 6)):
            truth = evaluate_network(arch, neighbours[index])
            assert ev.latency_ms[index] == pytest.approx(truth.latency_ms, rel=1e-12)
            assert ev.energy_mj[index] == pytest.approx(truth.energy_mj, rel=1e-12)
            assert ev.area_mm2[index] == pytest.approx(truth.area_mm2, rel=1e-12)

    def test_exhaustive_search_runs(self, name):
        arch = NetworkArch.from_indices(SPACE, [0] * SPACE.num_layers)
        config, metrics = exhaustive_search(arch, platform=name)
        assert config.platform == name
        assert metrics.latency_ms > 0 and metrics.energy_mj > 0


class TestBatchGuards:
    def test_mixed_platform_batch_rejected(self):
        arch = NetworkArch.from_indices(SPACE, [0] * SPACE.num_layers)
        edge_cfg = get_platform("edge").config(8, 8, 32, Dataflow.RS)
        tpu_cfg = get_platform("tpu-like").config(32, 32, 64, Dataflow.WS)
        with pytest.raises(ValueError, match="mixes platforms"):
            evaluate_network_batch(arch, [edge_cfg, tpu_cfg])

    def test_replaced_platform_invalidates_grid_cache(self):
        arch = NetworkArch.from_indices(SPACE, [0] * SPACE.num_layers)
        try:
            register_platform(_tmp_platform("test-grid"))
            first = evaluate_network_space(arch, platform="test-grid")
            assert len(first.configs) == 3 * 3 * 2 * 3
            wider = _tmp_platform("test-grid")
            wider = Platform(
                **{
                    **{f: getattr(wider, f) for f in wider.__dataclass_fields__},
                    "pe_rows_range": (2, 3, 4, 5, 6),
                }
            )
            register_platform(wider, replace=True)
            second = evaluate_network_space(arch, platform="test-grid")
            assert len(second.configs) == 5 * 3 * 2 * 3
        finally:
            unregister_platform("test-grid")


class TestPlatformSearchParity:
    """Reduced-epoch fleet-vs-scalar parity on every platform."""

    @pytest.mark.parametrize("name", PLATFORM_NAMES)
    def test_fleet_matches_scalar(self, name, small_estimators):
        estimator = small_estimators[name]
        bound = LATENCY_BOUND.get(name, 1e9)
        configs = [
            SearchConfig(
                seed=s,
                epochs=10,
                constraints=ConstraintSet.latency(bound),
                platform=name,
            )
            for s in (0, 1)
        ]
        scalar = [CoExplorer(SPACE, estimator, c).search() for c in configs]
        fleet = run_many(SPACE, estimator, configs)
        for s, f in zip(scalar, fleet):
            assert f.arch == s.arch
            assert f.config == s.config
            assert f.metrics == s.metrics
            assert f.platform == s.platform == name
            assert f.config.platform == name
            for a, b in zip(s.history, f.history):
                assert a.__dict__ == b.__dict__

    def test_cross_platform_fleet_in_one_call(self, small_estimators):
        configs = [
            SearchConfig(seed=0, epochs=8, hard_constraints=False, platform="edge",
                         method_name="DANCE"),
            SearchConfig(seed=0, epochs=8, hard_constraints=False, platform="tpu-like",
                         method_name="DANCE"),
            SearchConfig(seed=1, epochs=8, hard_constraints=False, platform="edge",
                         method_name="DANCE"),
        ]
        results = run_many(SPACE, small_estimators, configs)
        assert [r.platform for r in results] == ["edge", "tpu-like", "edge"]
        for r in results:
            plat = get_platform(r.platform)
            assert plat.contains(r.config.pe_rows, r.config.pe_cols, r.config.rf_bytes)

    def test_nas_then_hw_keeps_platform(self, small_estimators):
        from repro.baselines import run_nas_then_hw

        result = run_nas_then_hw(
            SPACE, small_estimators["edge"], seed=0, epochs=6, platform="edge"
        )
        assert result.platform == "edge"
        assert result.config.platform == "edge"
        plat = get_platform("edge")
        assert plat.contains(
            result.config.pe_rows, result.config.pe_cols, result.config.rf_bytes
        )

    def test_mismatched_estimator_refused(self, small_estimators):
        with pytest.raises(ValueError, match="pre-trained for platform"):
            CoExplorer(
                SPACE, small_estimators["edge"], SearchConfig(platform="tpu-like")
            )

    def test_missing_platform_estimator_refused(self, small_estimators):
        with pytest.raises(ValueError, match="no estimator supplied"):
            run_many(
                SPACE,
                {"edge": small_estimators["edge"]},
                [SearchConfig(seed=0, epochs=2, platform="tpu-like")],
            )

    def test_structure_key_separates_platforms(self):
        from repro.core.fleet import _structure_key

        a = SearchConfig(seed=0, platform="edge")
        b = SearchConfig(seed=1, platform="edge")
        c = SearchConfig(seed=0, platform="tpu-like")
        assert _structure_key(a) == _structure_key(b)
        assert _structure_key(a) != _structure_key(c)


class TestEstimatorCacheKeys:
    """get_estimator must key both caches on (space, platform, seed)."""

    @pytest.fixture()
    def patched_common(self, tmp_path, monkeypatch):
        from repro.experiments import common

        def fake_pretrain(space, seed=0, estimator=None, platform="eyeriss", **kw):
            from repro.estimator import CostEstimator

            estimator = estimator or CostEstimator(
                space, width=128, seed=seed, platform=platform
            )
            estimator.freeze()
            return estimator

        monkeypatch.setattr(common, "CACHE_DIR", str(tmp_path))
        monkeypatch.setattr(common, "pretrain_estimator", fake_pretrain)
        monkeypatch.setattr(common, "_ESTIMATORS", {})
        return common

    def test_in_process_cache_distinguishes_platform_and_seed(self, patched_common):
        common = patched_common
        base = common.get_estimator("cifar10")
        assert common.get_estimator("cifar10") is base
        other_platform = common.get_estimator("cifar10", platform="edge")
        other_seed = common.get_estimator("cifar10", seed=1)
        assert other_platform is not base
        assert other_seed is not base
        assert other_platform.platform == "edge"

    def test_disk_cache_paths_are_distinct(self, patched_common):
        common = patched_common
        common.get_estimator("cifar10")
        common.get_estimator("cifar10", platform="edge")
        common.get_estimator("cifar10", seed=2)
        paths = {
            common._cache_path("cifar10"),
            common._cache_path("cifar10", "edge", 0),
            common._cache_path("cifar10", "eyeriss", 2),
        }
        assert len(paths) == 3
        for path in paths:
            assert os.path.exists(path), path

    def test_cache_dir_is_absolute(self):
        from repro.experiments import common

        assert os.path.isabs(common.CACHE_DIR)


class TestSerializationRoundTrip:
    def _edge_result(self):
        from repro.accelerator import HardwareMetrics
        from repro.core import SearchResult

        plat = get_platform("edge")
        arch = NetworkArch.from_indices(SPACE, [1] * SPACE.num_layers)
        config = plat.config(8, 8, 32, Dataflow.RS)
        metrics = evaluate_network(arch, config)
        return SearchResult(
            arch=arch,
            config=config,
            metrics=metrics,
            error_percent=5.0,
            loss_nas=0.7,
            cost=3.0,
            constraints=ConstraintSet.latency(200.0),
            in_constraint=True,
            method="HDX",
            platform="edge",
        )

    def test_platform_round_trips(self, tmp_path):
        from repro.serialize import load_result, save_result

        path = str(tmp_path / "edge.json")
        result = self._edge_result()
        save_result(result, path)
        with open(path) as handle:
            raw = json.load(handle)
        assert raw["platform"] == "edge"
        assert raw["config"]["platform"] == "edge"
        restored = load_result(path, SPACE)
        assert restored.platform == "edge"
        assert restored.config == result.config
        assert restored.config.platform == "edge"

    def test_legacy_results_default_to_eyeriss(self):
        from repro.serialize import config_from_dict, result_from_dict, result_to_dict

        data = result_to_dict(self._edge_result())
        # Simulate a pre-platform artifact.
        data.pop("platform")
        data["config"].pop("platform")
        data["config"].update(pe_rows=14, pe_cols=12, rf_bytes=64)
        restored = result_from_dict(data, SPACE)
        assert restored.platform == "eyeriss"
        assert restored.config.platform == "eyeriss"
        assert config_from_dict(
            {"pe_rows": 16, "pe_cols": 16, "rf_bytes": 64, "dataflow": "RS"}
        ).platform == "eyeriss"


class TestCliPlatform:
    def test_parser_accepts_platform(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(["search", "--latency", "16.6", "--platform", "edge"])
        assert args.platform == "edge"
        args = parser.parse_args(["evaluate", "--result", "r.json"])
        assert args.platform is None

    def test_parser_rejects_unknown_platform(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["search", "--platform", "nope"])

    def test_hwsearch_on_edge(self, capsys):
        from repro.cli import main

        indices = ",".join(["0"] * SPACE.num_layers)
        code = main(
            ["hwsearch", "--space", "cifar10", "--indices", indices,
             "--platform", "edge"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "edge" in out

    def test_search_and_roundtrip_on_edge(self, tmp_path, capsys, monkeypatch,
                                          small_estimators):
        from repro.cli import main
        from repro.experiments import common
        from repro.serialize import load_result

        # Route the CLI's get_estimator to the small pre-trained fixture
        # so the test does not pay full pre-training.
        monkeypatch.setitem(
            common._ESTIMATORS, ("cifar10", "edge", 0), small_estimators["edge"]
        )
        out = str(tmp_path / "edge.json")
        code = main([
            "search", "--method", "dance", "--platform", "edge",
            "--epochs", "8", "--output", out,
        ])
        stdout = capsys.readouterr().out
        assert code == 0
        assert "[DANCE]" in stdout
        restored = load_result(out, SPACE)
        assert restored.platform == "edge"
        assert restored.config.platform == "edge"
        code = main(["evaluate", "--result", out])
        assert code == 0
        assert "edge" in capsys.readouterr().out
        code = main(["report", "--result", out])
        assert code == 0
        assert "Mapping report" in capsys.readouterr().out
