"""Tests for JSON serialization and the command-line interface."""

import json
import os

import numpy as np
import pytest

from repro.accelerator import AcceleratorConfig, Dataflow, HardwareMetrics
from repro.arch import NetworkArch, cifar_space
from repro.cli import build_parser, main
from repro.core import ConstraintSet, SearchResult
from repro.serialize import (
    arch_from_dict,
    arch_to_dict,
    config_from_dict,
    config_to_dict,
    constraints_from_dict,
    constraints_to_dict,
    load_result,
    result_from_dict,
    result_to_dict,
    save_result,
    space_by_name,
)

SPACE = cifar_space()


def make_result() -> SearchResult:
    arch = NetworkArch.from_indices(SPACE, [2] * SPACE.num_layers)
    return SearchResult(
        arch=arch,
        config=AcceleratorConfig(14, 12, 64, Dataflow.WS),
        metrics=HardwareMetrics(20.0, 8.0, 1.9),
        error_percent=4.8,
        loss_nas=0.7,
        cost=7.0,
        constraints=ConstraintSet.latency(33.3),
        in_constraint=True,
        method="HDX",
    )


class TestSerialization:
    def test_arch_roundtrip(self):
        arch = NetworkArch.from_indices(SPACE, list(range(SPACE.num_layers)))
        restored = arch_from_dict(arch_to_dict(arch), SPACE)
        assert restored == arch

    def test_arch_space_mismatch_raises(self):
        data = {"space": "imagenet", "indices": [0] * 21}
        with pytest.raises(ValueError):
            arch_from_dict(data, SPACE)

    def test_space_by_name(self):
        assert space_by_name("cifar10").name == "cifar10"
        assert space_by_name("imagenet").name == "imagenet"
        with pytest.raises(ValueError):
            space_by_name("mnist")

    def test_config_roundtrip(self):
        cfg = AcceleratorConfig(20, 24, 256, Dataflow.OS)
        assert config_from_dict(config_to_dict(cfg)) == cfg

    def test_constraints_roundtrip(self):
        cs = ConstraintSet.from_dict({"latency": 16.6, "energy": 9.0})
        restored = constraints_from_dict(constraints_to_dict(cs))
        assert constraints_to_dict(restored) == {"latency": 16.6, "energy": 9.0}

    def test_result_roundtrip(self):
        result = make_result()
        restored = result_from_dict(result_to_dict(result), SPACE)
        assert restored.arch == result.arch
        assert restored.config == result.config
        assert restored.metrics == result.metrics
        assert restored.in_constraint == result.in_constraint
        assert restored.method == result.method

    def test_save_load_file(self, tmp_path):
        path = str(tmp_path / "result.json")
        result = make_result()
        save_result(result, path)
        restored = load_result(path, SPACE)
        assert restored.arch == result.arch
        # The file is valid, human-readable JSON.
        with open(path) as handle:
            raw = json.load(handle)
        assert raw["method"] == "HDX"

    def test_result_dict_carries_schema_and_engine(self):
        from repro.runtime.engine import ENGINE_SALT, SCHEMA_VERSION

        data = result_to_dict(make_result())
        assert data["schema_version"] == SCHEMA_VERSION
        assert data["engine"] == ENGINE_SALT

    def test_legacy_dict_loads_as_version_zero(self):
        """Files written before the schema fields existed still load
        (no history, no engine stamp) — only the run store refuses
        them."""
        data = result_to_dict(make_result())
        del data["schema_version"]
        del data["engine"]
        del data["history"]
        restored = result_from_dict(data, SPACE)
        assert restored.method == "HDX"
        assert restored.history == []

    def test_history_roundtrips_exactly(self):
        from repro.core import EpochRecord

        result = make_result()
        result.history = [
            EpochRecord(
                epoch=i,
                loss_nas=0.1 * i + 1e-17,
                cost_hw=7.123456789012345,
                global_loss=0.9,
                predicted_latency_ms=20.5,
                predicted_energy_mj=8.25,
                predicted_area_mm2=1.875,
                delta=1e-2,
                violated=bool(i % 2),
                manipulated_alpha=False,
                manipulated_v=True,
            )
            for i in range(3)
        ]
        restored = result_from_dict(
            json.loads(json.dumps(result_to_dict(result))), SPACE
        )
        assert restored.history == result.history


class TestCli:
    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["search", "--latency", "16.6"])
        assert args.command == "search"
        args = parser.parse_args(["experiment", "--name", "fig4"])
        assert args.name == "fig4"

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_hwsearch_runs(self, capsys):
        indices = ",".join(["0"] * SPACE.num_layers)
        code = main(["hwsearch", "--space", "cifar10", "--indices", indices,
                     "--latency", "40.0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "best config" in out

    def test_evaluate_saved_result(self, tmp_path, capsys):
        path = str(tmp_path / "r.json")
        result = make_result()
        save_result(result, path)
        code = main(["evaluate", "--result", path])
        out = capsys.readouterr().out
        assert "oracle" in out
        assert code in (0, 1)  # depends on ground truth vs stored constraint

    def test_report_saved_result(self, tmp_path, capsys):
        path = str(tmp_path / "r.json")
        save_result(make_result(), path)
        code = main(["report", "--result", path])
        out = capsys.readouterr().out
        assert code == 0
        assert "Mapping report" in out


class TestCliPretrain:
    """The cache-warming subcommand, against an isolated cache dir."""

    def test_pretrain_trains_then_serves_cached(self, tmp_path, capsys, monkeypatch):
        import repro.experiments.common as common

        monkeypatch.setattr(common, "CACHE_DIR", str(tmp_path))
        args = [
            "pretrain", "--platforms", "eyeriss", "--n-samples", "120",
            "--epochs", "2",
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "eyeriss" in first and "trained" in first
        assert "trained=1 cached=0" in first
        # The in-process memo would mask the disk cache; a fresh process
        # is simulated by clearing it.
        common._ESTIMATORS.clear()
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "cached" in second
        assert "trained=0 cached=1 oracle_pairs=0" in second

    def test_pretrain_rejects_unknown_platform(self, capsys):
        assert main(["pretrain", "--platforms", "gpu-9000"]) == 2
        assert "unknown platform" in capsys.readouterr().err

    def test_non_default_budget_gets_its_own_cache_file(self):
        from repro.experiments.common import _cache_path

        canonical = _cache_path("cifar10", "eyeriss", 0)
        smoke = _cache_path("cifar10", "eyeriss", 0, n_samples=120, epochs=2)
        assert canonical != smoke
        assert "n120" in smoke and "e2" in smoke

    def test_explicit_canonical_budget_maps_to_canonical_cache(self):
        """Passing --n-samples 8000 / --epochs 120 explicitly must warm
        the same cache entries as the default invocation."""
        from repro.estimator import DEFAULT_PRETRAIN_EPOCHS, DEFAULT_PRETRAIN_SAMPLES
        from repro.experiments.common import _cache_path

        explicit = _cache_path(
            "cifar10", "eyeriss", 0,
            n_samples=DEFAULT_PRETRAIN_SAMPLES, epochs=DEFAULT_PRETRAIN_EPOCHS,
        )
        assert explicit == _cache_path("cifar10", "eyeriss", 0)


class TestCliSearch:
    """End-to-end CLI searches (use the cached estimator, short runs)."""

    def test_search_dance_writes_json(self, tmp_path, capsys):
        out = str(tmp_path / "dance.json")
        code = main([
            "search", "--method", "dance", "--epochs", "40",
            "--lambda-cost", "0.003", "--output", out,
        ])
        stdout = capsys.readouterr().out
        assert code == 0
        assert "[DANCE]" in stdout
        restored = load_result(out, SPACE)
        assert restored.method == "DANCE"

    def test_search_hdx_requires_constraint(self, capsys):
        code = main(["search", "--method", "hdx", "--epochs", "10"])
        assert code == 2

    def test_search_hdx_with_constraint(self, capsys):
        code = main([
            "search", "--method", "hdx", "--latency", "33.3", "--epochs", "120",
            "--lambda-cost", "0.002",
        ])
        stdout = capsys.readouterr().out
        assert "[HDX]" in stdout
        assert code in (0, 1)
