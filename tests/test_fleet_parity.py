"""Seed-for-seed parity of the batched search fleet vs the scalar engine.

The fleet's contract (DESIGN.md) is not "approximately the same": every
run dispatched through :func:`repro.core.run_many` must reproduce the
scalar :class:`CoExplorer` bit for bit — the full per-epoch telemetry
(losses, predicted metrics, delta schedule, violation/manipulation
flags) and the final architecture, accelerator, and ground-truth
metrics.  Any drift (a re-ordered reduction, a flat GEMM instead of a
stacked one, a skipped RNG draw) compounds over epochs into different
search outcomes, so the comparisons below use exact equality, not
tolerances.
"""

import pytest

from repro.arch import cifar_space
from repro.baselines import (
    GPU_HOURS_PER_SEARCH,
    MetaSearch,
    dance_config,
    finalize_nas_then_hw,
    nas_then_hw_config,
)
from repro.core import CoExplorer, ConstraintSet, SearchConfig, SearchFleet, run_many
from repro.core.fleet import _structure_key

SPACE = cifar_space()

#: Heterogeneous configs covering every structural group the
#: experiments exercise: unconstrained DANCE, hard-constrained HDX
#: (including a second HDX seed so one group really batches), the soft
#: penalty, the direct-beta Auto-NBA path, the cost-term-free NAS phase
#: with a size penalty, and the EDP-cost ablation.
PARITY_CONFIGS = [
    SearchConfig(lambda_cost=0.002, seed=3, epochs=40, hard_constraints=False,
                 method_name="DANCE"),
    SearchConfig(lambda_cost=0.004, seed=7, epochs=40,
                 constraints=ConstraintSet.latency(16.6), method_name="HDX"),
    SearchConfig(lambda_cost=0.004, seed=9, epochs=40,
                 constraints=ConstraintSet.latency(16.6), method_name="HDX"),
    # Same structural group as the HDX runs but with the generator-side
    # manipulation ablated: per-run flags must hold inside one batch.
    SearchConfig(lambda_cost=0.004, seed=15, epochs=40,
                 constraints=ConstraintSet.latency(16.6),
                 manipulate_generator=False, method_name="HDX-nomv"),
    SearchConfig(lambda_cost=0.001, seed=1, epochs=40, hard_constraints=False,
                 soft_lambda=1.0, constraints=ConstraintSet.latency(33.3),
                 method_name="DANCE+Soft"),
    SearchConfig(lambda_cost=0.003, seed=5, epochs=40, hard_constraints=False,
                 use_generator=False, method_name="Auto-NBA"),
    SearchConfig(include_cost_term=False, hard_constraints=False,
                 size_penalty_lambda=2.0, seed=2, epochs=40,
                 constraints=ConstraintSet.latency(40.0), method_name="NAS->HW"),
    SearchConfig(lambda_cost=0.004, seed=11, epochs=40, use_edp_cost=True,
                 constraints=ConstraintSet.latency(16.6), method_name="EDP"),
]


@pytest.fixture(scope="module")
def estimator():
    from repro.experiments.common import get_estimator

    return get_estimator("cifar10")


@pytest.fixture(scope="module")
def paired_results(estimator):
    scalar = [CoExplorer(SPACE, estimator, c).search() for c in PARITY_CONFIGS]
    fleet = run_many(SPACE, estimator, PARITY_CONFIGS)
    return scalar, fleet


class TestSeedForSeedParity:
    def test_final_results_identical(self, paired_results):
        scalar, fleet = paired_results
        for config, s, f in zip(PARITY_CONFIGS, scalar, fleet):
            label = f"{config.method_name} seed={config.seed}"
            assert f.arch == s.arch, label
            assert f.config == s.config, label
            assert f.metrics == s.metrics, label
            assert f.error_percent == s.error_percent, label
            assert f.loss_nas == s.loss_nas, label
            assert f.cost == s.cost, label
            assert f.in_constraint == s.in_constraint, label
            assert f.method == s.method, label

    def test_epoch_histories_identical(self, paired_results):
        scalar, fleet = paired_results
        for config, s, f in zip(PARITY_CONFIGS, scalar, fleet):
            assert len(s.history) == len(f.history) == config.epochs
            for epoch, (a, b) in enumerate(zip(s.history, f.history)):
                assert a.__dict__ == b.__dict__, (
                    f"{config.method_name} seed={config.seed} epoch={epoch}"
                )

    def test_constrained_runs_actually_manipulated(self, paired_results):
        """Guard against vacuous parity: the suite must exercise the
        gradient-manipulation machinery, not just unconstrained runs."""
        _, fleet = paired_results
        hdx = [r for r in fleet if r.method == "HDX"]
        assert any(rec.manipulated_alpha for r in hdx for rec in r.history)


class TestFleetDispatch:
    def test_results_in_input_order(self, estimator):
        configs = [
            dance_config(lambda_cost=0.001 * (i + 1), seed=i, epochs=15)
            for i in range(4)
        ]
        # Interleave a structurally different run in the middle.
        configs.insert(2, nas_then_hw_config(size_penalty_lambda=1.0, seed=9, epochs=15))
        results = run_many(SPACE, estimator, configs)
        assert [r.method for r in results] == [
            "DANCE", "DANCE", "NAS->HW", "DANCE", "DANCE",
        ]

    def test_structure_key_groups_batchable_runs(self):
        a = dance_config(lambda_cost=0.001, seed=0)
        b = dance_config(lambda_cost=0.009, seed=5, alpha_lr=0.1, nas_grad_noise=0.0)
        assert _structure_key(a) == _structure_key(b)
        for different in (
            dance_config(seed=0, epochs=10),
            nas_then_hw_config(seed=0),
            dance_config(seed=0, constraints=ConstraintSet.latency(16.6)),
            SearchConfig(seed=0, constraints=ConstraintSet.latency(16.6)),
        ):
            assert _structure_key(a) != _structure_key(different)

    def test_full_fidelity_falls_back_to_scalar(self, estimator):
        config = SearchConfig(fidelity="full", epochs=1)
        fleet = SearchFleet(SPACE, estimator, [config])
        with pytest.raises(ValueError, match="full fidelity requires a dataset"):
            fleet.search_all()


class TestMetaSearchRounds:
    def test_run_many_matches_sequential_run(self, estimator):
        """Lock-step rounds must replay the per-designer tuning loops."""
        constraints = ConstraintSet.latency(16.6)

        def factory(control, seed):
            return dance_config(
                lambda_cost=control, seed=seed, constraints=constraints, epochs=25
            )

        def search_fn(control, seed):
            return CoExplorer(SPACE, estimator, factory(control, seed)).search()

        def batch_fn(requests):
            return run_many(SPACE, estimator, [factory(c, s) for c, s in requests])

        meta = MetaSearch("DANCE", search_fn, "latency", 16.6, 0.001, max_searches=4)
        sequential = [meta.run(seed=s) for s in range(3)]
        batched = meta.run_many(range(3), batch_fn)
        for s, b in zip(sequential, batched):
            assert b.n_searches == s.n_searches
            assert b.control_values == s.control_values
            assert b.accepted == s.accepted
            assert b.final.arch == s.final.arch
            assert b.final.metrics == s.final.metrics
            assert b.gpu_hours == pytest.approx(
                s.n_searches * GPU_HOURS_PER_SEARCH["DANCE"]
            )

    def test_nas_then_hw_phase_matches_wrapper(self, estimator):
        """finalize_nas_then_hw must equal the one-shot wrapper."""
        from repro.baselines import run_nas_then_hw

        constraints = ConstraintSet.latency(40.0)
        config = nas_then_hw_config(
            size_penalty_lambda=1.5, seed=4, constraints=constraints, epochs=25
        )
        wrapper = run_nas_then_hw(
            SPACE, estimator, size_penalty_lambda=1.5, seed=4,
            constraints=constraints, epochs=25,
        )
        fleet = finalize_nas_then_hw(
            run_many(SPACE, estimator, [config])[0], constraints
        )
        assert fleet.arch == wrapper.arch
        assert fleet.config == wrapper.config
        assert fleet.metrics == wrapper.metrics


class TestBatchedHelpers:
    """The array-of-runs building blocks match their scalar twins
    bitwise — the per-layer guarantees the engine parity composes from."""

    def test_batched_encodings_match_scalar(self):
        import numpy as np

        from repro.arch.encoding import (
            arch_features_from_alpha,
            arch_features_from_alpha_batch,
            arch_features_from_indices,
            arch_features_from_indices_batch,
            extended_features_from_indices,
            extended_features_from_indices_batch,
            summary_from_probs,
            summary_from_probs_batch,
        )
        from repro.autodiff import Tensor

        rng = np.random.default_rng(0)
        n = 4
        alphas = rng.normal(0.0, 0.5, size=(n, SPACE.num_layers, SPACE.num_choices))
        batch = arch_features_from_alpha_batch(SPACE, alphas)
        summaries = summary_from_probs_batch(SPACE, batch)
        indices = rng.integers(0, 6, size=(n, SPACE.num_layers))
        one_hot = arch_features_from_indices_batch(SPACE, indices)
        extended = extended_features_from_indices_batch(SPACE, indices)
        for i in range(n):
            scalar_feats = arch_features_from_alpha(SPACE, Tensor(alphas[i])).data
            assert np.array_equal(batch[i], scalar_feats)
            assert np.array_equal(
                summaries[i], summary_from_probs(SPACE, batch[i]).data
            )
            assert np.array_equal(
                one_hot[i], arch_features_from_indices(SPACE, indices[i])
            )
            assert np.array_equal(
                extended[i], extended_features_from_indices(SPACE, indices[i])
            )

    def test_batched_violated_matches_scalar(self):
        import numpy as np

        from repro.core.constraints import batched_violated

        rng = np.random.default_rng(1)
        n = 5
        metrics = rng.uniform(1.0, 40.0, size=(n, 3))
        names = ["latency", "energy"]
        bounds = np.stack(
            [rng.uniform(5.0, 45.0, size=n), rng.uniform(5.0, 45.0, size=n)]
        )
        flags = batched_violated(metrics, names, bounds)
        for i in range(n):
            scalar_set = ConstraintSet.from_dict(
                {name: float(bounds[k, i]) for k, name in enumerate(names)}
            )
            assert flags[i] == scalar_set.violated(metrics[i])
        assert flags.any() and not flags.all()  # the fixture covers both sides

    def test_manipulate_gradient_batch_matches_scalar(self):
        import numpy as np

        from repro.core.gradmanip import manipulate_gradient, manipulate_gradient_batch

        rng = np.random.default_rng(2)
        n, dim = 6, 40
        g_loss = rng.normal(size=(n, dim))
        g_const = rng.normal(size=(n, dim))
        violated = np.array([True, True, False, True, True, False])
        delta = rng.uniform(1e-4, 1e-1, size=n)
        max_norm = np.full(n, 0.5)
        force = np.array([False, True, False, False, True, True])
        enabled = np.array([True, True, True, False, True, True])
        out, applied = manipulate_gradient_batch(
            g_loss, g_const, violated, delta, max_norm=max_norm, force=force,
            enabled=enabled,
        )
        for i in range(n):
            if not enabled[i]:
                ref, ref_applied = g_loss[i], False
            else:
                ref, ref_applied = manipulate_gradient(
                    g_loss[i], g_const[i], bool(violated[i]), float(delta[i]),
                    max_norm=float(max_norm[i]), force=bool(force[i]),
                )
            assert np.array_equal(out[i], ref)
            assert applied[i] == ref_applied

    def test_delta_policy_array_matches_scalar(self):
        import numpy as np

        from repro.core.delta import DeltaPolicy, DeltaPolicyArray

        delta0 = np.array([1e-2, 1e-3, 5e-2])
        p = np.array([1e-2, 2e-2, 1e-1])
        array_policy = DeltaPolicyArray(delta0, p)
        scalar_policies = [DeltaPolicy(d, q) for d, q in zip(delta0, p)]
        pattern = [
            np.array([True, False, True]),
            np.array([True, True, False]),
            np.array([False, True, True]),
            np.array([True, True, True]),
        ]
        for violated in pattern:
            array_policy.update(violated)
            for policy, flag in zip(scalar_policies, violated):
                policy.update(bool(flag))
            assert np.array_equal(
                array_policy.delta, np.array([pol.delta for pol in scalar_policies])
            )
