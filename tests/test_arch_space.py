"""Tests for the search space, discrete networks, and encodings."""

import numpy as np
import pytest

from repro.arch import (
    CANDIDATES,
    NetworkArch,
    SKIP,
    arch_feature_dim,
    arch_features_from_alpha,
    arch_features_from_indices,
    cifar_space,
    imagenet_space,
)
from repro.autodiff import Tensor

RNG = np.random.default_rng(4)


class TestSearchSpace:
    def test_cifar_has_18_layers(self):
        assert cifar_space().num_layers == 18

    def test_imagenet_has_21_layers(self):
        assert imagenet_space().num_layers == 21

    def test_candidate_set_matches_paper(self):
        kernels = {c.kernel for c in CANDIDATES}
        expands = {c.expand for c in CANDIDATES}
        assert kernels == {3, 5, 7}
        assert expands == {3, 6}
        assert len(CANDIDATES) == 6

    def test_skip_only_on_identity_compatible_layers(self):
        space = cifar_space()
        for spec in space.layers:
            if spec.allow_skip:
                assert spec.stride == 1
                assert spec.in_channels == spec.out_channels

    def test_stride_reduces_resolution(self):
        space = cifar_space()
        # 3 stride-2 stages: 32 -> 16 -> 8 -> 4.
        assert space.final_size == 4

    def test_total_architectures_is_large(self):
        # The joint network space should be astronomically large, as in
        # the paper (~1e14 networks x ~2e3 accelerators).
        assert cifar_space().total_architectures() > 1e13

    def test_choices_for_layer(self):
        space = cifar_space()
        c0 = space.choices_for(0)
        assert len(c0) in (6, 7)


class TestNetworkArch:
    def test_from_indices_roundtrip(self):
        space = cifar_space()
        indices = [i % 6 for i in range(space.num_layers)]
        arch = NetworkArch.from_indices(space, indices)
        assert arch.to_indices() == indices

    def test_random_is_valid(self):
        space = cifar_space()
        for _ in range(20):
            arch = NetworkArch.random(space, RNG)
            assert len(arch.choices) == space.num_layers

    def test_wrong_length_raises(self):
        space = cifar_space()
        with pytest.raises(ValueError):
            NetworkArch(space, [CANDIDATES[0]] * 3)

    def test_invalid_skip_raises(self):
        space = cifar_space()
        # Find a layer where skip is forbidden (stride 2 or channel change).
        bad_layer = next(
            i for i, spec in enumerate(space.layers) if not spec.allow_skip
        )
        choices = [CANDIDATES[0]] * space.num_layers
        choices[bad_layer] = SKIP
        with pytest.raises(ValueError):
            NetworkArch(space, choices)

    def test_conv_expansion_includes_stem(self):
        space = cifar_space()
        arch = NetworkArch.from_indices(space, [0] * space.num_layers)
        convs = arch.conv_layers()
        stem = convs[0]
        assert stem.kernel == 3 and stem.in_channels == 3

    def test_conv_expansion_three_per_block(self):
        space = cifar_space()
        arch = NetworkArch.from_indices(space, [0] * space.num_layers)
        # stem + 3 convs per MBConv block (expand, depthwise, project).
        assert len(arch.conv_layers()) == 1 + 3 * space.num_layers

    def test_skip_blocks_add_no_convs(self):
        space = cifar_space()
        indices = [0] * space.num_layers
        skip_layer = next(i for i, s in enumerate(space.layers) if s.allow_skip)
        with_block = NetworkArch.from_indices(space, indices)
        indices[skip_layer] = len(space.layers[skip_layer].candidates()) - 1  # skip slot
        with_skip = NetworkArch.from_indices(space, indices)
        assert len(with_skip.conv_layers()) == len(with_block.conv_layers()) - 3
        assert with_skip.depth() == with_block.depth() - 1

    def test_macs_increase_with_kernel(self):
        space = cifar_space()
        small = NetworkArch.from_indices(space, [0] * 18)  # (3,3)
        big = NetworkArch.from_indices(space, [4] * 18)  # (7,3)
        assert big.total_macs() > small.total_macs()

    def test_macs_increase_with_expand(self):
        space = cifar_space()
        e3 = NetworkArch.from_indices(space, [0] * 18)  # (3,3)
        e6 = NetworkArch.from_indices(space, [1] * 18)  # (3,6)
        assert e6.total_macs() > e3.total_macs()

    def test_depthwise_layer_properties(self):
        space = cifar_space()
        arch = NetworkArch.from_indices(space, [0] * 18)
        dw = arch.conv_layers()[2]  # stem, expand, depthwise
        assert dw.groups == dw.in_channels == dw.out_channels
        # Depthwise MACs are out * k * k * size^2.
        assert dw.macs == dw.out_channels * 9 * dw.out_size**2

    def test_equality_and_hash(self):
        space = cifar_space()
        a = NetworkArch.from_indices(space, [0] * 18)
        b = NetworkArch.from_indices(space, [0] * 18)
        c = NetworkArch.from_indices(space, [1] * 18)
        assert a == b and hash(a) == hash(b)
        assert a != c


class TestEncoding:
    def test_feature_dim(self):
        space = cifar_space()
        assert arch_feature_dim(space) == 18 * 7

    def test_one_hot_encoding(self):
        space = cifar_space()
        feats = arch_features_from_indices(space, [0] * 18)
        assert feats.shape == (18 * 7,)
        assert feats.sum() == 18
        assert set(np.unique(feats)) == {0.0, 1.0}

    def test_soft_encoding_rows_sum_to_one(self):
        space = cifar_space()
        alpha = Tensor(RNG.standard_normal((18, 7)), requires_grad=True)
        feats = arch_features_from_alpha(space, alpha)
        rows = feats.data.reshape(18, 7)
        np.testing.assert_allclose(rows.sum(axis=1), np.ones(18), atol=1e-9)

    def test_soft_encoding_masks_invalid_slots(self):
        space = cifar_space()
        alpha = Tensor(np.zeros((18, 7)), requires_grad=True)
        rows = arch_features_from_alpha(space, alpha).data.reshape(18, 7)
        for i, spec in enumerate(space.layers):
            n_valid = len(spec.candidates())
            assert np.all(rows[i, n_valid:] < 1e-12)

    def test_soft_encoding_differentiable(self):
        space = cifar_space()
        alpha = Tensor(np.zeros((18, 7)), requires_grad=True)
        arch_features_from_alpha(space, alpha).sum().backward()
        assert alpha.grad is not None

    def test_soft_matches_hard_at_extreme_alpha(self):
        space = cifar_space()
        indices = [1] * 18
        alpha_data = np.zeros((18, 7))
        for i, idx in enumerate(indices):
            alpha_data[i, idx] = 50.0
        soft = arch_features_from_alpha(space, Tensor(alpha_data)).data
        hard = arch_features_from_indices(space, indices)
        np.testing.assert_allclose(soft, hard, atol=1e-9)

    def test_alpha_shape_mismatch_raises(self):
        space = cifar_space()
        with pytest.raises(ValueError):
            arch_features_from_alpha(space, Tensor(np.zeros((3, 7))))
