"""Tests for the DARTS-style mixed-operation supernet."""

import numpy as np

from repro import nn
from repro.arch.darts import DartsSuperNet
from repro.arch.space import SearchSpace
from repro.autodiff import Tensor


def tiny_space():
    return SearchSpace(
        name="tiny-darts",
        input_size=32,
        train_input_size=8,
        num_classes=4,
        stem_channels=16,
        train_stem_channels=4,
        stage_plan=[(16, 4, 2, 1), (32, 6, 1, 2)],
    )


class TestDartsSuperNet:
    def test_forward_shape(self):
        space = tiny_space()
        net = DartsSuperNet(space)
        x = Tensor(np.random.default_rng(0).standard_normal((2, 3, 8, 8)))
        assert net(x).shape == (2, 4)

    def test_all_candidates_receive_gradients(self):
        """Unlike path sampling, DARTS trains every candidate each step."""
        space = tiny_space()
        net = DartsSuperNet(space)
        x = Tensor(np.random.default_rng(1).standard_normal((2, 3, 8, 8)))
        nn.cross_entropy(net(x), np.zeros(2, dtype=int)).backward()
        for candidates in net.layer_candidates:
            for block in candidates:
                convs = [m for m in block.modules() if isinstance(m, nn.Conv2d)]
                if convs:  # skip Identity candidates
                    assert convs[0].weight.grad is not None

    def test_alpha_receives_exact_gradient(self):
        space = tiny_space()
        net = DartsSuperNet(space)
        x = Tensor(np.random.default_rng(2).standard_normal((2, 3, 8, 8)))
        nn.cross_entropy(net(x), np.zeros(2, dtype=int)).backward()
        assert net.alpha.grad is not None
        assert np.any(net.alpha.grad != 0)

    def test_extreme_alpha_matches_single_candidate(self):
        """With one-hot alpha the mixture equals that candidate's path."""
        space = tiny_space()
        net = DartsSuperNet(space, seed=0)
        net.alpha.data[:, 0] = 60.0  # candidate 0 everywhere
        x = Tensor(np.random.default_rng(3).standard_normal((1, 3, 8, 8)))
        mixed = net(x).data

        out = net.stem(x)
        for candidates in net.layer_candidates:
            out = candidates[0](out)
        direct = net.head(out).data
        np.testing.assert_allclose(mixed, direct, atol=1e-6)

    def test_dominant_arch(self):
        space = tiny_space()
        net = DartsSuperNet(space)
        net.alpha.data[:, 2] = 5.0
        arch = net.dominant_arch()
        assert all(i == 2 for i in arch.to_indices())

    def test_parameter_partition(self):
        net = DartsSuperNet(tiny_space())
        assert net.alpha not in net.weight_parameters()
        assert net.arch_parameters() == [net.alpha]

    def test_arch_features_shape(self):
        space = tiny_space()
        net = DartsSuperNet(space)
        assert net.arch_features().shape == (space.num_layers * space.num_choices,)
