"""Gradient checks for convolution, pooling, and dropout."""

import numpy as np
import pytest

from repro.autodiff import Tensor, gradient_check, ops

RNG = np.random.default_rng(1)


def make(shape, scale=1.0):
    return Tensor(RNG.standard_normal(shape) * scale, requires_grad=True)


class TestIm2Col:
    def test_roundtrip_shapes(self):
        x = RNG.standard_normal((2, 3, 8, 8))
        cols, oh, ow = ops.im2col(x, kernel=3, stride=1, padding=1)
        assert cols.shape == (2, 3 * 9, 64)
        assert (oh, ow) == (8, 8)

    def test_stride_two(self):
        x = RNG.standard_normal((1, 2, 8, 8))
        cols, oh, ow = ops.im2col(x, kernel=3, stride=2, padding=1)
        assert (oh, ow) == (4, 4)

    def test_col2im_is_adjoint(self):
        """<im2col(x), y> == <x, col2im(y)> — the defining adjoint property."""
        x = RNG.standard_normal((2, 3, 6, 6))
        cols, oh, ow = ops.im2col(x, 3, 1, 1)
        y = RNG.standard_normal(cols.shape)
        lhs = float((cols * y).sum())
        rhs = float((x * ops.col2im(y, x.shape, 3, 1, 1)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10)


class TestConv2d:
    def test_matches_direct_convolution(self):
        x = RNG.standard_normal((1, 2, 5, 5))
        w = RNG.standard_normal((3, 2, 3, 3))
        out = ops.conv2d(Tensor(x), Tensor(w), stride=1, padding=0).data
        # Direct nested-loop reference.
        ref = np.zeros((1, 3, 3, 3))
        for co in range(3):
            for i in range(3):
                for j in range(3):
                    ref[0, co, i, j] = (x[0, :, i : i + 3, j : j + 3] * w[co]).sum()
        np.testing.assert_allclose(out, ref, atol=1e-10)

    def test_grad_input_and_weight(self):
        x, w = make((2, 3, 5, 5)), make((4, 3, 3, 3))
        gradient_check(lambda x, w: (ops.conv2d(x, w, padding=1) ** 2).sum(), [x, w])

    def test_grad_with_bias(self):
        x, w, b = make((1, 2, 4, 4)), make((3, 2, 3, 3)), make((3,))
        gradient_check(
            lambda x, w, b: (ops.conv2d(x, w, b, padding=1) ** 2).sum(), [x, w, b]
        )

    def test_grad_stride_two(self):
        x, w = make((1, 2, 6, 6)), make((3, 2, 3, 3))
        gradient_check(
            lambda x, w: (ops.conv2d(x, w, stride=2, padding=1) ** 2).sum(), [x, w]
        )

    def test_depthwise_groups(self):
        x, w = make((1, 4, 5, 5)), make((4, 1, 3, 3))
        gradient_check(
            lambda x, w: (ops.conv2d(x, w, padding=1, groups=4) ** 2).sum(), [x, w]
        )

    def test_grouped_conv_matches_split(self):
        x = RNG.standard_normal((1, 4, 5, 5))
        w = RNG.standard_normal((6, 2, 3, 3))
        grouped = ops.conv2d(Tensor(x), Tensor(w), padding=1, groups=2).data
        lo = ops.conv2d(Tensor(x[:, :2]), Tensor(w[:3]), padding=1).data
        hi = ops.conv2d(Tensor(x[:, 2:]), Tensor(w[3:]), padding=1).data
        np.testing.assert_allclose(grouped, np.concatenate([lo, hi], axis=1), atol=1e-10)

    def test_pointwise_1x1(self):
        x, w = make((2, 3, 4, 4)), make((5, 3, 1, 1))
        gradient_check(lambda x, w: (ops.conv2d(x, w) ** 2).sum(), [x, w])

    def test_channel_mismatch_raises(self):
        x, w = make((1, 3, 5, 5)), make((4, 2, 3, 3))
        with pytest.raises(ValueError):
            ops.conv2d(x, w)

    def test_output_shape(self):
        x, w = make((2, 3, 32, 32)), make((8, 3, 5, 5))
        out = ops.conv2d(x, w, stride=2, padding=2)
        assert out.shape == (2, 8, 16, 16)


class TestPooling:
    def test_avg_pool_values(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4))
        out = ops.avg_pool2d(x, 2)
        np.testing.assert_allclose(out.data[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avg_pool_grad(self):
        x = make((1, 2, 4, 4))
        gradient_check(lambda x: (ops.avg_pool2d(x, 2) ** 2).sum(), [x])

    def test_max_pool_values(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4))
        out = ops.max_pool2d(x, 2)
        np.testing.assert_allclose(out.data[0, 0], [[5.0, 7.0], [13.0, 15.0]])

    def test_max_pool_grad(self):
        x = make((1, 2, 6, 6))
        gradient_check(lambda x: (ops.max_pool2d(x, 2) ** 2).sum(), [x])

    def test_global_avg_pool_via_mean(self):
        x = make((2, 3, 4, 4))
        out = x.mean(axis=(2, 3))
        assert out.shape == (2, 3)


class TestDropout:
    def test_eval_mode_is_identity(self):
        x = make((4, 4))
        out = ops.dropout(x, 0.5, np.random.default_rng(0), training=False)
        np.testing.assert_array_equal(out.data, x.data)

    def test_zero_rate_is_identity(self):
        x = make((4, 4))
        out = ops.dropout(x, 0.0, np.random.default_rng(0), training=True)
        np.testing.assert_array_equal(out.data, x.data)

    def test_scaling_preserves_expectation(self):
        x = Tensor(np.ones((200, 200)))
        out = ops.dropout(x, 0.3, np.random.default_rng(0), training=True)
        assert out.data.mean() == pytest.approx(1.0, abs=0.02)

    def test_grad_flows_through_mask(self):
        x = make((5, 5))
        rng_state = np.random.default_rng(7)
        mask_out = ops.dropout(x, 0.4, rng_state, training=True)
        mask_out.sum().backward()
        # Gradient must be zero exactly where activations were dropped.
        dropped = mask_out.data == 0
        assert np.all(x.grad[dropped] == 0)
