"""Tests for the Tensor convenience API and edge cases."""

import numpy as np
import pytest

from repro.autodiff import Tensor, as_tensor, no_grad, ops


class TestConstruction:
    def test_from_list(self):
        t = Tensor([1.0, 2.0])
        assert t.shape == (2,)
        assert t.data.dtype == np.float64

    def test_from_scalar(self):
        t = Tensor(3.0)
        assert t.shape == ()
        assert t.item() == 3.0

    def test_from_tensor_copies_reference(self):
        a = Tensor([1.0, 2.0])
        b = Tensor(a)
        np.testing.assert_array_equal(a.data, b.data)

    def test_as_tensor_passthrough(self):
        a = Tensor([1.0])
        assert as_tensor(a) is a

    def test_as_tensor_coerces(self):
        t = as_tensor([1, 2, 3])
        assert isinstance(t, Tensor)


class TestProperties:
    def test_shape_ndim_size(self):
        t = Tensor(np.zeros((2, 3, 4)))
        assert t.shape == (2, 3, 4)
        assert t.ndim == 3
        assert t.size == 24

    def test_len(self):
        assert len(Tensor(np.zeros((5, 2)))) == 5

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))
        assert "requires_grad" not in repr(Tensor([1.0]))

    def test_tolist(self):
        assert Tensor([[1.0, 2.0]]).tolist() == [[1.0, 2.0]]

    def test_numpy_shares_memory(self):
        t = Tensor([1.0, 2.0])
        t.numpy()[0] = 9.0
        assert t.data[0] == 9.0

    def test_copy_is_independent(self):
        t = Tensor([1.0], requires_grad=True)
        c = t.copy()
        c.data[0] = 5.0
        assert t.data[0] == 1.0
        assert c.requires_grad

    def test_item_requires_scalar(self):
        with pytest.raises(ValueError):
            Tensor([1.0, 2.0]).item()


class TestComparisons:
    def test_comparison_returns_bool_array(self):
        a = Tensor([1.0, 3.0])
        mask = a > 2.0
        assert mask.dtype == bool
        np.testing.assert_array_equal(mask, [False, True])

    def test_tensor_tensor_comparison(self):
        a, b = Tensor([1.0, 3.0]), Tensor([2.0, 2.0])
        np.testing.assert_array_equal(a < b, [True, False])
        np.testing.assert_array_equal(a >= b, [False, True])
        np.testing.assert_array_equal(a <= b, [True, False])


class TestGradFlags:
    def test_default_no_grad(self):
        assert not Tensor([1.0]).requires_grad

    def test_op_on_non_grad_inputs_has_no_grad(self):
        out = Tensor([1.0]) + Tensor([2.0])
        assert not out.requires_grad

    def test_grad_propagates_through_mixed_inputs(self):
        a = Tensor([1.0], requires_grad=True)
        b = Tensor([2.0])
        out = a * b
        assert out.requires_grad
        out.sum().backward()
        assert a.grad is not None
        assert b.grad is None

    def test_no_grad_inside_module_statistics(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            detached = a * 2.0
        assert not detached.requires_grad

    def test_nested_no_grad(self):
        with no_grad():
            with no_grad():
                pass
            inner = Tensor([1.0], requires_grad=True) * 1.0
        assert not inner.requires_grad


class TestNumericalEdges:
    def test_log_softmax_extreme_logits(self):
        t = Tensor([[1e8, -1e8]], requires_grad=True)
        out = ops.log_softmax(t)
        assert np.all(np.isfinite(out.data))

    def test_division_gradient_near_small_denominator(self):
        a = Tensor([1.0], requires_grad=True)
        b = Tensor([1e-3], requires_grad=True)
        (a / b).sum().backward()
        assert np.isfinite(b.grad[0])

    def test_flatten_batch(self):
        t = Tensor(np.zeros((4, 2, 3)))
        assert t.flatten_batch().shape == (4, 6)

    def test_scalar_broadcast_ops(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        out = 1.0 + 2.0 * t - 0.5
        out = out / 2.0
        (out**2).sum().backward()
        assert t.grad is not None
