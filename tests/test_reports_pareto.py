"""Tests for mapping reports and Pareto utilities."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.accelerator import AcceleratorConfig, Dataflow, evaluate_network
from repro.accelerator.pareto import dominates, hypervolume_2d, pareto_front
from repro.accelerator.report import report_layer, report_network
from repro.arch import NetworkArch, cifar_space
from repro.arch.network import ConvLayerDesc

SPACE = cifar_space()
CONFIG = AcceleratorConfig(16, 16, 128, Dataflow.RS)
ARCH = NetworkArch.from_indices(SPACE, [1] * SPACE.num_layers)


class TestLayerReport:
    def test_bottleneck_is_one_of_three(self):
        rep = report_layer(ConvLayerDesc(64, 64, 3, 1, 16), CONFIG)
        assert rep.bottleneck in ("compute", "buffer", "dram")

    def test_energy_breakdown_sums_to_total(self):
        rep = report_layer(ConvLayerDesc(64, 64, 3, 1, 16), CONFIG)
        assert sum(rep.energy_breakdown.values()) == pytest.approx(rep.energy_mj)

    def test_depthwise_flag(self):
        rep = report_layer(ConvLayerDesc(64, 64, 3, 1, 16, groups=64), CONFIG)
        assert rep.is_depthwise

    def test_breakdown_components(self):
        rep = report_layer(ConvLayerDesc(32, 32, 5, 1, 8), CONFIG)
        assert set(rep.energy_breakdown) == {"mac", "rf", "buffer", "dram", "noc"}
        assert all(v >= 0 for v in rep.energy_breakdown.values())


class TestNetworkReport:
    def test_totals_match_evaluate_network(self):
        report = report_network(ARCH, CONFIG)
        truth = evaluate_network(ARCH, CONFIG)
        assert report.total_latency_ms == pytest.approx(truth.latency_ms)
        assert report.total_energy_mj == pytest.approx(truth.energy_mj, rel=1e-9)

    def test_layer_count(self):
        report = report_network(ARCH, CONFIG)
        assert len(report.layers) == len(ARCH.conv_layers())

    def test_bottleneck_shares_sum_to_one(self):
        report = report_network(ARCH, CONFIG)
        assert sum(report.bottleneck_share().values()) == pytest.approx(1.0)

    def test_mean_utilization_bounded(self):
        report = report_network(ARCH, CONFIG)
        assert 0 < report.mean_utilization <= 1.0

    def test_dominant_energy_component(self):
        report = report_network(ARCH, CONFIG)
        assert report.dominant_energy_component() in ("mac", "rf", "buffer", "dram", "noc")

    def test_render_contains_layers(self):
        text = report_network(ARCH, CONFIG).render()
        assert "Mapping report" in text
        assert "bottlenecks" in text
        assert text.count("\n") > len(ARCH.conv_layers())


class TestParetoFront:
    def test_simple_front(self):
        points = [(1, 5), (2, 2), (5, 1), (3, 3), (6, 6)]
        front = pareto_front(points, [lambda p: p[0], lambda p: p[1]])
        assert set(front) == {(1, 5), (2, 2), (5, 1)}

    def test_single_item(self):
        assert pareto_front([(1, 1)], [lambda p: p[0], lambda p: p[1]]) == [(1, 1)]

    def test_empty(self):
        assert pareto_front([], [lambda p: p[0]]) == []

    def test_duplicates_kept(self):
        points = [(1, 1), (1, 1)]
        front = pareto_front(points, [lambda p: p[0], lambda p: p[1]])
        assert len(front) == 2  # neither strictly dominates the other

    def test_dominates(self):
        assert dominates((1, 1), (2, 2))
        assert not dominates((1, 3), (2, 2))
        assert not dominates((2, 2), (2, 2))

    def test_dominates_length_mismatch(self):
        with pytest.raises(ValueError):
            dominates((1,), (1, 2))

    @given(
        st.lists(
            st.tuples(st.floats(0, 10), st.floats(0, 10)), min_size=1, max_size=30
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_front_members_not_dominated(self, points):
        front = pareto_front(points, [lambda p: p[0], lambda p: p[1]])
        assert front  # at least one survivor
        for f in front:
            assert not any(dominates(o, f) for o in points)


class TestHypervolume:
    def test_single_point(self):
        assert hypervolume_2d([(1.0, 1.0)], (2.0, 2.0)) == pytest.approx(1.0)

    def test_two_point_union(self):
        assert hypervolume_2d([(0, 2), (2, 0)], (3, 3)) == pytest.approx(5.0)

    def test_point_outside_reference_ignored(self):
        assert hypervolume_2d([(5.0, 5.0)], (2.0, 2.0)) == 0.0

    def test_dominated_point_adds_nothing(self):
        lone = hypervolume_2d([(1, 1)], (3, 3))
        with_dominated = hypervolume_2d([(1, 1), (2, 2)], (3, 3))
        assert with_dominated == pytest.approx(lone)

    def test_better_front_bigger_volume(self):
        weak = hypervolume_2d([(2, 2)], (4, 4))
        strong = hypervolume_2d([(1, 1)], (4, 4))
        assert strong > weak
