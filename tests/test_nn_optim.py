"""Tests for losses, optimizers, and LR schedules."""

import math

import numpy as np
import pytest

from repro import nn
from repro.autodiff import Tensor

RNG = np.random.default_rng(3)


class TestLosses:
    def test_cross_entropy_uniform_logits(self):
        logits = Tensor(np.zeros((4, 10)), requires_grad=True)
        loss = nn.cross_entropy(logits, np.zeros(4, dtype=int))
        assert loss.item() == pytest.approx(math.log(10.0))

    def test_cross_entropy_perfect_prediction(self):
        logits = np.full((3, 5), -100.0)
        logits[np.arange(3), [1, 2, 3]] = 100.0
        loss = nn.cross_entropy(Tensor(logits, requires_grad=True), [1, 2, 3])
        assert loss.item() == pytest.approx(0.0, abs=1e-8)

    def test_cross_entropy_gradient_shape(self):
        logits = Tensor(RNG.standard_normal((6, 4)), requires_grad=True)
        nn.cross_entropy(logits, RNG.integers(0, 4, 6)).backward()
        assert logits.grad.shape == (6, 4)
        # Rows of softmax-minus-onehot divided by N sum to ~0.
        assert np.allclose(logits.grad.sum(axis=1), 0.0, atol=1e-10)

    def test_mse(self):
        pred = Tensor([1.0, 2.0], requires_grad=True)
        loss = nn.mse_loss(pred, [0.0, 0.0])
        assert loss.item() == pytest.approx(2.5)

    def test_l1(self):
        pred = Tensor([1.0, -3.0], requires_grad=True)
        assert nn.l1_loss(pred, [0.0, 0.0]).item() == pytest.approx(2.0)

    def test_accuracy(self):
        logits = Tensor([[2.0, 1.0], [0.0, 3.0], [5.0, 1.0]])
        assert nn.accuracy(logits, [0, 1, 1]) == pytest.approx(2.0 / 3.0)


def quadratic_param():
    return Tensor(np.array([5.0, -3.0]), requires_grad=True)


class TestSGD:
    def test_plain_sgd_descends_quadratic(self):
        p = quadratic_param()
        opt = nn.SGD([p], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            (p * p).sum().backward()
            opt.step()
        assert np.allclose(p.data, 0.0, atol=1e-4)

    def test_momentum_faster_than_plain_on_ill_conditioned(self):
        scales = np.array([1.0, 100.0])

        def run(momentum):
            p = Tensor(np.array([1.0, 1.0]), requires_grad=True)
            opt = nn.SGD([p], lr=0.009, momentum=momentum)
            for _ in range(60):
                opt.zero_grad()
                ((p * p) * scales).sum().backward()
                opt.step()
            return float(np.abs(p.data[0]))

        assert run(0.9) < run(0.0)

    def test_nesterov_requires_momentum(self):
        p = quadratic_param()
        with pytest.raises(ValueError):
            nn.SGD([p], lr=0.1, nesterov=True)

    def test_weight_decay_shrinks_params(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        opt = nn.SGD([p], lr=0.1, weight_decay=0.5)
        opt.zero_grad()
        (p * 0.0).sum().backward()  # zero loss gradient
        opt.step()
        assert p.data[0] < 1.0

    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            nn.SGD([], lr=0.1)

    def test_set_gradients_roundtrip(self):
        p = quadratic_param()
        opt = nn.SGD([p], lr=0.1)
        (p * p).sum().backward()
        grads = opt.gradients()
        opt.set_gradients([g * 2 for g in grads])
        np.testing.assert_allclose(p.grad, 2 * grads[0])


class TestAdam:
    def test_adam_descends_quadratic(self):
        p = quadratic_param()
        opt = nn.Adam([p], lr=0.2)
        for _ in range(200):
            opt.zero_grad()
            (p * p).sum().backward()
            opt.step()
        assert np.allclose(p.data, 0.0, atol=1e-3)

    def test_adam_first_step_magnitude(self):
        # With bias correction the first update is about lr in magnitude.
        p = Tensor(np.array([10.0]), requires_grad=True)
        opt = nn.Adam([p], lr=0.1)
        (p * 1.0).sum().backward()
        opt.step()
        assert abs(10.0 - p.data[0]) == pytest.approx(0.1, rel=1e-4)

    def test_skips_params_without_grad(self):
        a = Tensor(np.array([1.0]), requires_grad=True)
        b = Tensor(np.array([1.0]), requires_grad=True)
        opt = nn.Adam([a, b], lr=0.1)
        (a * a).sum().backward()
        opt.step()
        assert b.data[0] == 1.0


class TestSchedulers:
    def test_cosine_endpoints(self):
        p = quadratic_param()
        opt = nn.SGD([p], lr=1.0)
        sched = nn.CosineAnnealingLR(opt, t_max=10)
        assert opt.lr == 1.0
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(0.0, abs=1e-12)

    def test_cosine_midpoint(self):
        opt = nn.SGD([quadratic_param()], lr=1.0)
        sched = nn.CosineAnnealingLR(opt, t_max=10)
        for _ in range(5):
            sched.step()
        assert opt.lr == pytest.approx(0.5)

    def test_cosine_min_lr(self):
        opt = nn.SGD([quadratic_param()], lr=1.0)
        sched = nn.CosineAnnealingLR(opt, t_max=4, min_lr=0.1)
        for _ in range(8):
            sched.step()
        assert opt.lr == pytest.approx(0.1)

    def test_step_lr(self):
        opt = nn.SGD([quadratic_param()], lr=1.0)
        sched = nn.StepLR(opt, step_size=2, gamma=0.1)
        sched.step()
        assert opt.lr == pytest.approx(1.0)
        sched.step()
        assert opt.lr == pytest.approx(0.1)

    def test_invalid_t_max(self):
        opt = nn.SGD([quadratic_param()], lr=1.0)
        with pytest.raises(ValueError):
            nn.CosineAnnealingLR(opt, t_max=0)


class TestEndToEndTraining:
    def test_mlp_learns_xor(self):
        x = np.array([[0.0, 0.0], [0.0, 1.0], [1.0, 0.0], [1.0, 1.0]])
        y = np.array([0, 1, 1, 0])
        rng = np.random.default_rng(0)
        model = nn.Sequential(
            nn.Linear(2, 16, rng=rng), nn.Tanh(), nn.Linear(16, 2, rng=rng)
        )
        opt = nn.Adam(model.parameters(), lr=0.05)
        for _ in range(300):
            opt.zero_grad()
            loss = nn.cross_entropy(model(Tensor(x)), y)
            loss.backward()
            opt.step()
        assert nn.accuracy(model(Tensor(x)), y) == 1.0

    def test_tiny_convnet_overfits_batch(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((8, 2, 8, 8))
        y = rng.integers(0, 3, 8)
        model = nn.Sequential(
            nn.Conv2d(2, 6, 3, padding=1, rng=rng),
            nn.ReLU(),
            nn.GlobalAvgPool2d(),
            nn.Linear(6, 3, rng=rng),
        )
        opt = nn.Adam(model.parameters(), lr=0.05)
        for _ in range(150):
            opt.zero_grad()
            nn.cross_entropy(model(Tensor(x)), y).backward()
            opt.step()
        assert nn.accuracy(model(Tensor(x)), y) >= 0.9
