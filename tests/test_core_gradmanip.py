"""Tests for gradient manipulation (Eqs. 4/7/8), delta policy, constraints."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.accelerator import HardwareMetrics
from repro.autodiff import Tensor
from repro.core import (
    Constraint,
    ConstraintSet,
    DeltaPolicy,
    flatten_gradients,
    manipulate_gradient,
    minimum_norm_correction,
    unflatten_gradient,
)

RNG = np.random.default_rng(7)


class TestMinimumNormCorrection:
    def test_guarantee_equality(self):
        """(m* + g_loss) . g_const == delta exactly (Eq. 7 derivation)."""
        g_loss = RNG.standard_normal(20)
        g_const = RNG.standard_normal(20)
        delta = 0.3
        m = minimum_norm_correction(g_loss, g_const, delta)
        assert (m + g_loss) @ g_const == pytest.approx(delta, rel=1e-9)

    def test_correction_parallel_to_constraint_gradient(self):
        g_loss = RNG.standard_normal(10)
        g_const = RNG.standard_normal(10)
        m = minimum_norm_correction(g_loss, g_const, 0.1)
        cos = m @ g_const / (np.linalg.norm(m) * np.linalg.norm(g_const))
        assert abs(abs(cos) - 1.0) < 1e-9

    def test_minimum_norm_property(self):
        """In the manipulation case (g_loss . g_const < 0), m* has the
        smallest norm among all m with (m+g).gc >= delta."""
        g_loss = RNG.standard_normal(8)
        g_const = RNG.standard_normal(8)
        if g_loss @ g_const >= 0:
            g_loss = -g_loss  # force the disagreeing case
        delta = 0.2
        m_star = minimum_norm_correction(g_loss, g_const, delta)
        for _ in range(50):
            other = m_star + RNG.standard_normal(8) * 0.1
            if (other + g_loss) @ g_const >= delta - 1e-12:
                assert np.linalg.norm(other) >= np.linalg.norm(m_star) - 1e-9

    def test_zero_constraint_gradient_gives_zero(self):
        g_loss = RNG.standard_normal(5)
        m = minimum_norm_correction(g_loss, np.zeros(5), 0.5)
        np.testing.assert_array_equal(m, np.zeros(5))

    def test_norm_cap(self):
        g_loss = RNG.standard_normal(5) * 10
        g_const = RNG.standard_normal(5) * 1e-4  # tiny -> exact m explodes
        m = minimum_norm_correction(g_loss, g_const, 0.5, max_norm=1.0)
        assert np.linalg.norm(m) <= 1.0 + 1e-9

    def test_cap_preserves_direction(self):
        g_loss = -RNG.standard_normal(5)
        g_const = RNG.standard_normal(5)
        uncapped = minimum_norm_correction(g_loss, g_const, 10.0)
        capped = minimum_norm_correction(g_loss, g_const, 10.0, max_norm=0.1)
        cos = capped @ uncapped / (np.linalg.norm(capped) * np.linalg.norm(uncapped))
        assert cos == pytest.approx(1.0, abs=1e-9)


class TestManipulateGradient:
    def test_satisfied_constraint_is_identity(self):
        g_loss = RNG.standard_normal(6)
        g_const = RNG.standard_normal(6)
        out, applied = manipulate_gradient(g_loss, g_const, violated=False, delta=0.1)
        np.testing.assert_array_equal(out, g_loss)
        assert not applied

    def test_agreeing_gradients_unchanged(self):
        g_const = RNG.standard_normal(6)
        g_loss = g_const * 2.0  # perfectly aligned
        out, applied = manipulate_gradient(g_loss, g_const, violated=True, delta=0.1)
        np.testing.assert_array_equal(out, g_loss)
        assert not applied

    def test_disagreeing_gradients_manipulated(self):
        g_const = RNG.standard_normal(6)
        g_loss = -g_const  # opposed
        out, applied = manipulate_gradient(g_loss, g_const, violated=True, delta=0.1)
        assert applied
        assert out @ g_const == pytest.approx(0.1, rel=1e-9)

    def test_orthogonal_gradients_not_manipulated(self):
        g_const = np.array([1.0, 0.0])
        g_loss = np.array([0.0, 1.0])  # dot == 0 counts as agreement
        _, applied = manipulate_gradient(g_loss, g_const, violated=True, delta=0.1)
        assert not applied

    @given(
        dim=st.integers(2, 30),
        delta=st.floats(0.0, 1.0),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=80, deadline=None)
    def test_descent_guarantee_property(self, dim, delta, seed):
        """After manipulation, a gradient step never increases the
        constraint loss to first order: g . g_const >= 0 always."""
        rng = np.random.default_rng(seed)
        g_loss = rng.standard_normal(dim)
        g_const = rng.standard_normal(dim)
        out, _ = manipulate_gradient(g_loss, g_const, violated=True, delta=delta)
        assert out @ g_const >= -1e-9


class TestFlattenUnflatten:
    def test_roundtrip(self):
        params = [RNG.standard_normal((3, 4)), RNG.standard_normal(5)]
        grads = [RNG.standard_normal((3, 4)), RNG.standard_normal(5)]
        flat = flatten_gradients(grads, params)
        restored = unflatten_gradient(flat, params)
        for a, b in zip(grads, restored):
            np.testing.assert_array_equal(a, b)

    def test_none_gradients_become_zero(self):
        params = [RNG.standard_normal(4)]
        flat = flatten_gradients([None], params)
        np.testing.assert_array_equal(flat, np.zeros(4))

    def test_size_mismatch_raises(self):
        with pytest.raises(ValueError):
            unflatten_gradient(np.zeros(3), [np.zeros(4)])

    def test_empty(self):
        assert flatten_gradients([], []).size == 0


class TestDeltaPolicy:
    def test_grows_while_violated(self):
        policy = DeltaPolicy(delta0=1.0, p=0.5)
        policy.update(True)
        assert policy.delta == pytest.approx(1.5)
        policy.update(True)
        assert policy.delta == pytest.approx(2.25)

    def test_resets_on_satisfaction(self):
        policy = DeltaPolicy(delta0=1.0, p=0.5)
        policy.update(True)
        policy.update(True)
        policy.update(False)
        assert policy.delta == 1.0

    def test_geometric_growth_rate(self):
        policy = DeltaPolicy(delta0=1e-4, p=1e-2)
        for _ in range(100):
            policy.update(True)
        assert policy.delta == pytest.approx(1e-4 * 1.01**100, rel=1e-9)

    def test_invalid_params_raise(self):
        with pytest.raises(ValueError):
            DeltaPolicy(delta0=0.0)
        with pytest.raises(ValueError):
            DeltaPolicy(delta0=1.0, p=0.0)

    def test_reset(self):
        policy = DeltaPolicy(delta0=2.0, p=0.1)
        policy.update(True)
        policy.reset()
        assert policy.delta == 2.0


class TestConstraints:
    def test_constraint_validation(self):
        with pytest.raises(ValueError):
            Constraint("power", 10.0)
        with pytest.raises(ValueError):
            Constraint("latency", -1.0)

    def test_violation_value(self):
        c = Constraint("latency", 33.3)
        assert c.violation(40.0) == pytest.approx(6.7)
        assert c.violation(30.0) == 0.0

    def test_satisfied_by(self):
        c = Constraint("energy", 10.0)
        assert c.satisfied_by(HardwareMetrics(50.0, 9.0, 2.0))
        assert not c.satisfied_by(HardwareMetrics(50.0, 11.0, 2.0))

    def test_set_from_dict(self):
        cs = ConstraintSet.from_dict({"latency": 16.6, "area": 2.0})
        assert len(cs) == 2

    def test_latency_factory(self):
        cs = ConstraintSet.latency(33.3)
        assert len(cs) == 1
        assert cs.constraints[0].metric == "latency"

    def test_empty_set_is_falsy(self):
        assert not ConstraintSet()
        assert ConstraintSet.latency(1.0)

    def test_violated_ordering(self):
        cs = ConstraintSet.from_dict({"energy": 10.0})
        # values tuple is (latency, energy, area)
        assert cs.violated((100.0, 11.0, 3.0))
        assert not cs.violated((100.0, 9.0, 3.0))

    def test_all_satisfied(self):
        cs = ConstraintSet.from_dict({"latency": 20.0, "energy": 10.0})
        assert cs.all_satisfied(HardwareMetrics(19.0, 9.0, 2.0))
        assert not cs.all_satisfied(HardwareMetrics(21.0, 9.0, 2.0))

    def test_constraint_loss_zero_when_satisfied(self):
        cs = ConstraintSet.latency(100.0)
        metrics = Tensor(np.array([50.0, 10.0, 2.0]), requires_grad=True)
        loss = cs.constraint_loss(metrics)
        assert loss.item() == 0.0

    def test_constraint_loss_positive_and_differentiable(self):
        cs = ConstraintSet.latency(30.0)
        metrics = Tensor(np.array([40.0, 10.0, 2.0]), requires_grad=True)
        loss = cs.constraint_loss(metrics)
        assert loss.item() > 0
        loss.backward()
        assert metrics.grad is not None
        assert metrics.grad[0] > 0  # pushing latency down
        assert metrics.grad[1] == 0  # energy unconstrained

    def test_multi_constraint_loss_sums(self):
        cs = ConstraintSet.from_dict({"latency": 30.0, "energy": 5.0})
        metrics = Tensor(np.array([40.0, 10.0, 2.0]), requires_grad=True)
        loss = cs.constraint_loss(metrics)
        loss.backward()
        assert metrics.grad[0] > 0 and metrics.grad[1] > 0

    def test_empty_constraint_loss_is_zero_scalar(self):
        cs = ConstraintSet()
        metrics = Tensor(np.array([40.0, 10.0, 2.0]), requires_grad=True)
        assert cs.constraint_loss(metrics).item() == 0.0

    def test_str(self):
        assert "latency" in str(ConstraintSet.latency(16.6))
        assert str(ConstraintSet()) == "unconstrained"
