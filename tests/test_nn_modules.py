"""Tests for the module system, layers, and residual MLPs."""

import numpy as np
import pytest

from repro import nn
from repro.autodiff import Tensor, gradient_check

RNG = np.random.default_rng(2)


class TestModuleSystem:
    def test_parameter_registration(self):
        layer = nn.Linear(4, 3)
        names = dict(layer.named_parameters())
        assert set(names) == {"weight", "bias"}

    def test_nested_registration(self):
        model = nn.Sequential(nn.Linear(4, 8), nn.ReLU(), nn.Linear(8, 2))
        names = [n for n, _ in model.named_parameters()]
        assert "layer0.weight" in names and "layer2.bias" in names
        assert len(model.parameters()) == 4

    def test_num_parameters(self):
        layer = nn.Linear(4, 3)
        assert layer.num_parameters() == 4 * 3 + 3

    def test_zero_grad(self):
        layer = nn.Linear(4, 3)
        out = layer(Tensor(RNG.standard_normal((2, 4))))
        out.sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_train_eval_propagates(self):
        model = nn.Sequential(nn.Linear(4, 4), nn.Dropout(0.5))
        model.eval()
        assert not model.layers[1].training
        model.train()
        assert model.layers[1].training

    def test_state_dict_roundtrip(self):
        model = nn.Sequential(nn.Linear(4, 8), nn.BatchNorm1d(8), nn.Linear(8, 2))
        # Push data through to change BN statistics.
        model(Tensor(RNG.standard_normal((16, 4))))
        state = model.state_dict()
        clone = nn.Sequential(nn.Linear(4, 8), nn.BatchNorm1d(8), nn.Linear(8, 2))
        clone.load_state_dict(state)
        for (_, a), (_, b) in zip(model.named_parameters(), clone.named_parameters()):
            np.testing.assert_array_equal(a.data, b.data)
        np.testing.assert_array_equal(
            model.layers[1].running_mean, clone.layers[1].running_mean
        )

    def test_load_state_dict_shape_mismatch_raises(self):
        model = nn.Linear(4, 3)
        bad = {"weight": np.zeros((2, 2)), "bias": np.zeros(3)}
        with pytest.raises(ValueError):
            model.load_state_dict(bad)

    def test_load_state_dict_missing_key_raises(self):
        model = nn.Linear(4, 3)
        with pytest.raises(KeyError):
            model.load_state_dict({"weight": np.zeros((3, 4))})


class TestLinear:
    def test_output_shape(self):
        layer = nn.Linear(6, 3)
        assert layer(Tensor(RNG.standard_normal((5, 6)))).shape == (5, 3)

    def test_no_bias(self):
        layer = nn.Linear(6, 3, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_gradients(self):
        layer = nn.Linear(3, 2)
        x = Tensor(RNG.standard_normal((4, 3)), requires_grad=True)
        gradient_check(
            lambda x, w, b: ((x @ w.T + b) ** 2).sum(), [x, layer.weight, layer.bias]
        )


class TestConv2dModule:
    def test_output_shape(self):
        conv = nn.Conv2d(3, 8, kernel_size=3, stride=2, padding=1)
        out = conv(Tensor(RNG.standard_normal((2, 3, 8, 8))))
        assert out.shape == (2, 8, 4, 4)

    def test_depthwise(self):
        conv = nn.Conv2d(4, 4, kernel_size=3, padding=1, groups=4)
        assert conv.weight.shape == (4, 1, 3, 3)
        out = conv(Tensor(RNG.standard_normal((1, 4, 6, 6))))
        assert out.shape == (1, 4, 6, 6)


class TestBatchNorm:
    def test_normalizes_batch(self):
        bn = nn.BatchNorm1d(5)
        x = Tensor(RNG.standard_normal((64, 5)) * 3.0 + 2.0)
        out = bn(x)
        assert np.allclose(out.data.mean(axis=0), 0.0, atol=1e-8)
        assert np.allclose(out.data.std(axis=0), 1.0, atol=1e-2)

    def test_running_stats_updated(self):
        bn = nn.BatchNorm1d(3)
        x = Tensor(np.ones((8, 3)) * 4.0)
        bn(x)
        assert np.all(bn.running_mean > 0)

    def test_eval_uses_running_stats(self):
        bn = nn.BatchNorm1d(3)
        for _ in range(200):
            bn(Tensor(RNG.standard_normal((32, 3)) + 5.0))
        bn.eval()
        out = bn(Tensor(np.full((4, 3), 5.0)))
        assert np.allclose(out.data, 0.0, atol=0.3)

    def test_bn2d_shape(self):
        bn = nn.BatchNorm2d(6)
        out = bn(Tensor(RNG.standard_normal((2, 6, 4, 4))))
        assert out.shape == (2, 6, 4, 4)

    def test_bn2d_normalizes_per_channel(self):
        bn = nn.BatchNorm2d(3)
        x = Tensor(RNG.standard_normal((8, 3, 5, 5)) * 2.0 - 1.0)
        out = bn(x)
        assert np.allclose(out.data.mean(axis=(0, 2, 3)), 0.0, atol=1e-8)

    def test_gradient_flows(self):
        bn = nn.BatchNorm1d(4)
        x = Tensor(RNG.standard_normal((8, 4)), requires_grad=True)
        bn(x).sum().backward()
        assert x.grad is not None
        assert bn.gamma.grad is not None


class TestResidualMLP:
    def test_five_layer_structure(self):
        mlp = nn.ResidualMLP(10, 3, width=32, n_layers=5)
        # in_proj + 1 residual block (2 layers) + extra + out_proj = 5 linears.
        linear_count = builtins_count_linears(mlp)
        assert linear_count == 5

    def test_output_shape(self):
        mlp = nn.ResidualMLP(10, 3, width=16)
        assert mlp(Tensor(RNG.standard_normal((7, 10)))).shape == (7, 3)

    def test_too_few_layers_raises(self):
        with pytest.raises(ValueError):
            nn.ResidualMLP(4, 2, n_layers=2)

    def test_gradients_reach_input_projection(self):
        mlp = nn.ResidualMLP(6, 2, width=8)
        out = mlp(Tensor(RNG.standard_normal((3, 6))))
        (out**2).sum().backward()
        assert mlp.in_proj.weight.grad is not None
        assert np.any(mlp.in_proj.weight.grad != 0)

    def test_block_residual_identity_property(self):
        block = nn.ResidualMLPBlock(8)
        # Zero both layers: output must be relu(x).
        block.fc1.weight.data[...] = 0
        block.fc2.weight.data[...] = 0
        x = Tensor(RNG.standard_normal((4, 8)))
        np.testing.assert_allclose(block(x).data, np.maximum(x.data, 0))


def builtins_count_linears(module: nn.Module) -> int:
    return sum(1 for m in module.modules() if isinstance(m, nn.Linear))


class TestActivationsAndPooling:
    def test_relu6_clamps(self):
        act = nn.ReLU6()
        out = act(Tensor([-3.0, 3.0, 9.0]))
        np.testing.assert_allclose(out.data, [0.0, 3.0, 6.0])

    def test_global_avg_pool(self):
        pool = nn.GlobalAvgPool2d()
        x = Tensor(np.ones((2, 3, 4, 4)) * 2.0)
        np.testing.assert_allclose(pool(x).data, np.full((2, 3), 2.0))

    def test_flatten(self):
        flat = nn.Flatten()
        assert flat(Tensor(np.zeros((2, 3, 4)))).shape == (2, 12)

    def test_identity(self):
        ident = nn.Identity()
        x = Tensor(RNG.standard_normal((3, 3)))
        np.testing.assert_array_equal(ident(x).data, x.data)


class TestResidualMLPKernel:
    """The raw-array kernel must be bitwise the autodiff ResidualMLP.

    The search fleet's parity contract rests on this equivalence
    (DESIGN.md): forward values, input gradients, and per-run weight
    gradients all compare with exact equality.
    """

    def _scalar_reference(self, mlps, xs):
        outs, d_xs, d_ws = [], [], []
        for mlp, x in zip(mlps, xs):
            tensor = Tensor(x.copy(), requires_grad=True)
            out = mlp(tensor)
            out.sum().backward()
            outs.append(out.data.copy())
            d_xs.append(tensor.grad.copy())
            d_ws.append([p.grad.copy() for p in mlp.parameters()])
            mlp.zero_grad()
        return outs, d_xs, d_ws

    def test_stacked_kernel_matches_per_run_mlps(self):
        n, features, width = 5, 11, 16
        mlps = [
            nn.ResidualMLP(features, 4, width=width, n_layers=5,
                           rng=np.random.default_rng(100 + i))
            for i in range(n)
        ]
        xs = [RNG.standard_normal((1, features)) for _ in range(n)]
        outs, d_xs, d_ws = self._scalar_reference(mlps, xs)

        kernel = nn.ResidualMLPKernel(mlps=mlps)
        x = np.stack(xs)  # (N, 1, F)
        out, cache = kernel.forward(x)
        d_x, grads = kernel.backward(
            cache, np.ones_like(out), need_input=True, need_weights=True
        )
        for i in range(n):
            assert np.array_equal(out[i], outs[i])
            assert np.array_equal(d_x[i], d_xs[i])
            for grad, ref in zip(grads, d_ws[i]):
                assert np.array_equal(grad[i].reshape(ref.shape), ref)

    def test_shared_kernel_matches_mlp_rows(self):
        mlp = nn.ResidualMLP(9, 3, width=12, n_layers=5, rng=np.random.default_rng(7))
        xs = [RNG.standard_normal((1, 9)) for _ in range(4)]
        outs, d_xs, _ = self._scalar_reference([mlp] * 4, xs)
        kernel = nn.ResidualMLPKernel(mlp=mlp)
        out, cache = kernel.forward(np.stack(xs))
        d_x, _ = kernel.backward(cache, np.ones_like(out))
        for i in range(4):
            assert np.array_equal(out[i], outs[i])
            assert np.array_equal(d_x[i], d_xs[i])

    def test_shared_kernel_refuses_weight_grads(self):
        mlp = nn.ResidualMLP(6, 2, width=8, n_layers=3, rng=np.random.default_rng(1))
        kernel = nn.ResidualMLPKernel(mlp=mlp)
        out, cache = kernel.forward(RNG.standard_normal((2, 1, 6)))
        with pytest.raises(ValueError):
            kernel.backward(cache, np.ones_like(out), need_weights=True)

    def test_requires_exactly_one_layout(self):
        mlp = nn.ResidualMLP(4, 2, width=8, n_layers=3)
        with pytest.raises(ValueError):
            nn.ResidualMLPKernel()
        with pytest.raises(ValueError):
            nn.ResidualMLPKernel(mlps=[mlp], mlp=mlp)
