"""Tests for baseline methods and the Sec. 5.2 meta-search."""

import numpy as np
import pytest

from repro.arch import cifar_space
from repro.baselines import (
    GPU_HOURS_PER_SEARCH,
    MetaSearch,
    run_autonba,
    run_dance,
    run_dance_soft,
    run_hdx,
    run_nas_then_hw,
)
from repro.core import ConstraintSet, SearchResult
from repro.estimator import pretrain_estimator

SPACE = cifar_space()


@pytest.fixture(scope="module")
def estimator():
    from repro.experiments.common import get_estimator

    return get_estimator("cifar10")


class TestMethodWrappers:
    def test_dance_does_not_manipulate(self, estimator):
        r = run_dance(SPACE, estimator, seed=0, epochs=60)
        assert r.method == "DANCE"
        assert not any(rec.manipulated_alpha for rec in r.history)

    def test_hdx_manipulates_under_tight_constraint(self, estimator):
        r = run_hdx(SPACE, estimator, ConstraintSet.latency(16.6), seed=0)
        assert r.method == "HDX"
        assert any(rec.manipulated_alpha for rec in r.history)

    def test_hdx_satisfies_constraint(self, estimator):
        r = run_hdx(SPACE, estimator, ConstraintSet.latency(16.6), seed=1)
        assert r.in_constraint

    def test_autonba_uses_direct_beta(self, estimator):
        from repro.core.coexplore import CoExplorer, SearchConfig, _DirectBeta

        config = SearchConfig(use_generator=False, hard_constraints=False)
        explorer = CoExplorer(SPACE, estimator, config)
        assert isinstance(explorer.generator, _DirectBeta)
        r = run_autonba(SPACE, estimator, seed=0, epochs=60)
        assert r.method == "Auto-NBA"

    def test_dance_soft_accepts_soft_lambda(self, estimator):
        r = run_dance_soft(
            SPACE, estimator, ConstraintSet.latency(16.6), soft_lambda=1.0, epochs=60
        )
        assert r.method == "DANCE+Soft"

    def test_soft_constraint_pushes_latency_down(self, estimator):
        plain = run_dance(SPACE, estimator, lambda_cost=0.001, seed=2, epochs=120)
        soft = run_dance_soft(
            SPACE,
            estimator,
            ConstraintSet.latency(16.6),
            soft_lambda=2.0,
            lambda_cost=0.001,
            seed=2,
            epochs=120,
        )
        assert soft.metrics.latency_ms < plain.metrics.latency_ms

    def test_nas_then_hw_uses_exhaustive_hw_search(self, estimator):
        """The NAS->HW config must be cost-optimal for its architecture."""
        from repro.accelerator import cost_hw, exhaustive_search

        r = run_nas_then_hw(SPACE, estimator, seed=0, epochs=60)
        best_cfg, best_metrics = exhaustive_search(r.arch, objective=cost_hw)
        assert r.cost == pytest.approx(cost_hw(best_metrics), rel=1e-9)

    def test_nas_then_hw_constraint_filter(self, estimator):
        r = run_nas_then_hw(
            SPACE,
            estimator,
            size_penalty_lambda=2.0,
            seed=0,
            epochs=60,
            constraints=ConstraintSet.latency(40.0),
        )
        assert r.metrics.latency_ms <= 40.0

    def test_size_penalty_shrinks_network(self, estimator):
        small = run_nas_then_hw(SPACE, estimator, size_penalty_lambda=5.0, seed=3, epochs=120)
        big = run_nas_then_hw(SPACE, estimator, size_penalty_lambda=0.0, seed=3, epochs=120)
        assert small.arch.total_macs() < big.arch.total_macs()

    def test_gpu_hours_table_complete(self):
        for method in ("NAS->HW", "Auto-NBA", "DANCE", "DANCE+Soft", "HDX"):
            assert method in GPU_HOURS_PER_SEARCH


class TestMetaSearch:
    @staticmethod
    def make_fake_search(threshold: float = 0.01, base: float = 40.0):
        """A deterministic fake: metric halves per control doubling."""

        def fn(control, seed):
            value = base * (threshold / control) ** 0.5
            from repro.accelerator import HardwareMetrics
            from repro.arch import NetworkArch

            arch = NetworkArch.from_indices(SPACE, [0] * SPACE.num_layers)
            from repro.accelerator import AcceleratorConfig, Dataflow

            cfg = AcceleratorConfig(12, 8, 64, Dataflow.RS)
            return SearchResult(
                arch=arch,
                config=cfg,
                metrics=HardwareMetrics(value, 10.0, 2.0),
                error_percent=5.0,
                loss_nas=0.6,
                cost=10.0,
                constraints=ConstraintSet(),
                in_constraint=True,
            )

        return fn

    def test_accepts_in_band_immediately(self):
        fn = self.make_fake_search()
        # control s.t. first try lands inside [0.5T, T].
        ms = MetaSearch("DANCE", fn, "latency", target=41.0, initial_control=0.01)
        r = ms.run()
        assert r.n_searches == 1 and r.accepted

    def test_doubles_until_feasible(self):
        fn = self.make_fake_search()
        ms = MetaSearch("DANCE", fn, "latency", target=20.0, initial_control=0.01)
        r = ms.run()
        assert r.accepted
        assert r.n_searches > 1
        assert r.control_values[1] == pytest.approx(0.02)

    def test_shrinks_after_overshoot(self):
        fn = self.make_fake_search()
        # Start way too strong: first solution far below 50% of target.
        ms = MetaSearch("DANCE", fn, "latency", target=35.0, initial_control=100.0)
        r = ms.run()
        assert r.accepted
        assert r.control_values[1] < 100.0

    def test_gpu_hours_accounting(self):
        fn = self.make_fake_search()
        ms = MetaSearch("DANCE", fn, "latency", target=20.0, initial_control=0.01)
        r = ms.run()
        assert r.gpu_hours == pytest.approx(r.n_searches * GPU_HOURS_PER_SEARCH["DANCE"])

    def test_max_searches_cap(self):
        def never_feasible(control, seed):
            return self.make_fake_search()(1e-12, seed)  # always ~huge latency

        ms = MetaSearch("DANCE", never_feasible, "latency", 1.0, 0.01, max_searches=4)
        r = ms.run()
        assert r.n_searches == 4
        assert not r.accepted

    def test_invalid_args(self):
        fn = self.make_fake_search()
        with pytest.raises(ValueError):
            MetaSearch("DANCE", fn, "latency", target=-1.0, initial_control=0.1)
        with pytest.raises(ValueError):
            MetaSearch("DANCE", fn, "latency", target=10.0, initial_control=0.0)

    def test_real_dance_meta_search_converges(self, estimator):
        cs = ConstraintSet.latency(16.6)

        def fn(control, seed):
            return run_dance(
                SPACE, estimator, lambda_cost=control, seed=seed, constraints=cs, epochs=100
            )

        ms = MetaSearch("DANCE", fn, "latency", target=16.6, initial_control=0.001)
        r = ms.run(seed=0)
        assert r.accepted
        assert 1 < r.n_searches <= 12
