"""Tests for the analytical mapping model and network-level evaluation.

These check the qualitative hardware laws the co-exploration relies
on: parallelism lowers latency, RF capacity lowers energy, dataflows
rank the way the architecture literature says they do.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.accelerator import (
    AcceleratorConfig,
    Dataflow,
    HardwareMetrics,
    cost_hw,
    evaluate_layer,
    evaluate_network,
    exhaustive_search,
    map_layer,
)
from repro.accelerator.config import RF_BYTES_OPTIONS
from repro.accelerator.cost import REFERENCE_SCALES, edap, edp
from repro.arch import NetworkArch, cifar_space
from repro.arch.network import ConvLayerDesc

SPACE = cifar_space()


def conv(c_in=64, c_out=64, k=3, stride=1, size=16, groups=1):
    return ConvLayerDesc(c_in, c_out, k, stride, size, groups)


def config(rows=16, cols=16, rf=128, df=Dataflow.WS):
    return AcceleratorConfig(rows, cols, rf, df)


class TestMappingBasics:
    def test_utilization_bounded(self):
        m = map_layer(conv(), config())
        assert 0 < m.utilization <= 1.0

    def test_all_quantities_positive(self):
        m = map_layer(conv(), config())
        assert m.compute_cycles > 0
        assert m.rf_accesses > 0
        assert m.buffer_accesses > 0
        assert m.dram_accesses > 0
        assert m.latency_cycles > 0

    def test_latency_at_least_compute(self):
        m = map_layer(conv(), config())
        assert m.latency_cycles >= m.compute_cycles

    def test_rf_accesses_scale_with_macs(self):
        layer = conv()
        m = map_layer(layer, config())
        assert m.rf_accesses == pytest.approx(3.0 * layer.macs)

    def test_buffer_accesses_at_least_volumes(self):
        layer = conv()
        m = map_layer(layer, config())
        min_traffic = layer.weight_count + layer.input_count + layer.output_count
        assert m.buffer_accesses >= min_traffic


class TestHardwareLaws:
    def test_more_pes_lower_compute_latency(self):
        layer = conv(c_in=256, c_out=256, size=32)
        small = map_layer(layer, config(rows=12, cols=8))
        large = map_layer(layer, config(rows=20, cols=24))
        assert large.compute_cycles < small.compute_cycles

    def test_bigger_kernel_more_latency(self):
        lat3, _ = evaluate_layer(conv(k=3), config())
        lat7, _ = evaluate_layer(conv(k=7), config())
        assert lat7 > lat3

    def test_ws_depthwise_collapse(self):
        """The MobileNet-on-TPU effect: depthwise starves a WS array."""
        dw = conv(c_in=128, c_out=128, groups=128)
        dense = conv(c_in=128, c_out=128)
        util_dw = map_layer(dw, config(df=Dataflow.WS)).utilization
        util_dense = map_layer(dense, config(df=Dataflow.WS)).utilization
        assert util_dw < 0.5 * util_dense

    def test_rs_handles_depthwise_better_than_ws(self):
        dw = conv(c_in=128, c_out=128, groups=128)
        ws = map_layer(dw, config(df=Dataflow.WS)).utilization
        rs = map_layer(dw, config(df=Dataflow.RS)).utilization
        assert rs > ws

    def test_bigger_rf_not_more_buffer_traffic(self):
        layer = conv(k=5)
        hi = map_layer(layer, config(rf=256))
        lo = map_layer(layer, config(rf=16))
        assert hi.buffer_accesses <= lo.buffer_accesses


class TestDataflowOrdering:
    """Network-level orderings on a mixed MBConv workload."""

    ARCH = NetworkArch.from_indices(SPACE, [3] * SPACE.num_layers)

    def metrics(self, df):
        return evaluate_network(self.ARCH, config(df=df))

    def test_ws_fastest_on_channel_heavy_network(self):
        lat = {df: self.metrics(df).latency_ms for df in Dataflow}
        assert lat[Dataflow.WS] == min(lat.values())

    def test_rs_most_energy_efficient(self):
        energy = {df: self.metrics(df).energy_mj for df in Dataflow}
        assert energy[Dataflow.RS] == min(energy.values())

    def test_ws_least_energy_efficient(self):
        energy = {df: self.metrics(df).energy_mj for df in Dataflow}
        assert energy[Dataflow.WS] == max(energy.values())


class TestEvaluateNetwork:
    def test_metrics_positive_and_finite(self):
        arch = NetworkArch.random(SPACE, np.random.default_rng(0))
        m = evaluate_network(arch, config())
        for value in m.as_tuple():
            assert np.isfinite(value) and value > 0

    def test_latency_in_plausible_range(self):
        # CIFAR-scale nets should land in the tens-of-ms regime the
        # paper's constraints (16.6/33.3 ms) are defined over.
        arch = NetworkArch.from_indices(SPACE, [1] * SPACE.num_layers)
        m = evaluate_network(arch, config())
        assert 1.0 < m.latency_ms < 200.0

    def test_deterministic(self):
        arch = NetworkArch.random(SPACE, np.random.default_rng(1))
        a = evaluate_network(arch, config())
        b = evaluate_network(arch, config())
        assert a == b

    def test_bigger_network_costs_more(self):
        small = NetworkArch.from_indices(SPACE, [0] * SPACE.num_layers)
        big = NetworkArch.from_indices(SPACE, [5] * SPACE.num_layers)
        cfg = config()
        assert (
            evaluate_network(big, cfg).latency_ms
            > evaluate_network(small, cfg).latency_ms
        )
        assert (
            evaluate_network(big, cfg).energy_mj
            > evaluate_network(small, cfg).energy_mj
        )

    def test_metric_lookup(self):
        m = HardwareMetrics(1.0, 2.0, 3.0)
        assert m.metric("latency") == 1.0
        assert m.metric("energy") == 2.0
        assert m.metric("area") == 3.0
        with pytest.raises(KeyError):
            m.metric("power")


class TestCostFunction:
    def test_cost_hw_is_weighted_sum(self):
        m = HardwareMetrics(
            REFERENCE_SCALES["latency_ms"],
            REFERENCE_SCALES["energy_mj"],
            REFERENCE_SCALES["area_mm2"],
        )
        # At the reference point the cost equals the sum of weights.
        assert cost_hw(m) == pytest.approx(6.2 + 2.9 + 1.0)

    def test_custom_weights(self):
        m = HardwareMetrics(49.2, 10.2, 0.98)
        only_latency = cost_hw(m, {"latency": 1.0, "energy": 0.0, "area": 0.0})
        assert only_latency == pytest.approx(1.0)

    def test_edp_and_edap(self):
        m = HardwareMetrics(2.0, 3.0, 4.0)
        assert edp(m) == 6.0
        assert edap(m) == 24.0

    def test_cost_monotone_in_each_metric(self):
        base = HardwareMetrics(20.0, 10.0, 2.0)
        assert cost_hw(HardwareMetrics(25.0, 10.0, 2.0)) > cost_hw(base)
        assert cost_hw(HardwareMetrics(20.0, 12.0, 2.0)) > cost_hw(base)
        assert cost_hw(HardwareMetrics(20.0, 10.0, 2.5)) > cost_hw(base)


class TestExhaustiveSearch:
    ARCH = NetworkArch.from_indices(SPACE, [0] * SPACE.num_layers)

    def test_finds_feasible_under_loose_constraint(self):
        cfg, m = exhaustive_search(self.ARCH, constraints={"latency": 50.0})
        assert m.latency_ms <= 50.0

    def test_tight_constraint_prefers_feasible(self):
        _, min_lat = exhaustive_search(self.ARCH, objective=lambda m: m.latency_ms)
        _, unconstrained = exhaustive_search(self.ARCH)
        # A bound between the latency floor and the unconstrained optimum
        # is feasible but binding.
        bound = 0.5 * (min_lat.latency_ms + unconstrained.latency_ms)
        cfg, m = exhaustive_search(self.ARCH, constraints={"latency": bound})
        assert m.latency_ms <= bound

    def test_infeasible_returns_fallback(self):
        cfg, m = exhaustive_search(self.ARCH, constraints={"latency": 1e-9})
        assert m.latency_ms > 1e-9  # fallback, not a lie

    def test_objective_override(self):
        _, m_lat = exhaustive_search(self.ARCH, objective=lambda m: m.latency_ms)
        _, m_cost = exhaustive_search(self.ARCH)
        assert m_lat.latency_ms <= m_cost.latency_ms

    def test_restricted_space(self):
        subset = [config(df=Dataflow.RS)]
        cfg, _ = exhaustive_search(self.ARCH, space=subset)
        assert cfg == subset[0]


class TestPropertyBased:
    @given(
        c_in=st.sampled_from([16, 32, 64, 256]),
        c_out=st.sampled_from([16, 32, 64, 256]),
        k=st.sampled_from([1, 3, 5, 7]),
        size=st.sampled_from([4, 8, 16, 32]),
        rows=st.integers(12, 20),
        cols=st.integers(8, 24),
        rf=st.sampled_from(RF_BYTES_OPTIONS),
        df=st.sampled_from(list(Dataflow)),
    )
    @settings(max_examples=60, deadline=None)
    def test_mapping_invariants(self, c_in, c_out, k, size, rows, cols, rf, df):
        layer = ConvLayerDesc(c_in, c_out, k, 1, size)
        cfg = AcceleratorConfig(rows, cols, rf, df)
        m = map_layer(layer, cfg)
        assert 0 < m.utilization <= 1.0
        assert m.latency_cycles >= m.compute_cycles > 0
        assert np.isfinite(m.buffer_accesses) and m.buffer_accesses > 0
        assert np.isfinite(m.dram_accesses) and m.dram_accesses > 0
        lat, energy = evaluate_layer(layer, cfg)
        assert lat > 0 and energy > 0

    @given(
        rows=st.integers(12, 20),
        cols=st.integers(8, 24),
        rf=st.sampled_from(RF_BYTES_OPTIONS),
        df=st.sampled_from(list(Dataflow)),
    )
    @settings(max_examples=30, deadline=None)
    def test_energy_decomposition_nonnegative(self, rows, cols, rf, df):
        arch = NetworkArch.from_indices(SPACE, [2] * SPACE.num_layers)
        m = evaluate_network(arch, AcceleratorConfig(rows, cols, rf, df))
        assert m.energy_mj > 0 and m.latency_ms > 0 and m.area_mm2 > 0
