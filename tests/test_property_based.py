"""Property-based tests (hypothesis) on core data structures and math.

These complement the targeted unit tests with randomized invariants:
autodiff gradients always match finite differences on composed
expressions, encodings stay on the probability simplex, architecture
statistics behave monotonically, and the delta policy never escapes
its invariants.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.arch import NetworkArch, cifar_space
from repro.arch.encoding import (
    arch_features_from_alpha,
    extended_features_from_indices,
    summary_from_probs,
)
from repro.autodiff import Tensor, gradient_check, ops
from repro.core import DeltaPolicy, manipulate_gradient
from repro.core.constraints import Constraint, ConstraintSet

SPACE = cifar_space()


# ----------------------------------------------------------------------
# Autodiff: randomized composed expressions
# ----------------------------------------------------------------------
UNARY_OPS = {
    "tanh": ops.tanh,
    "sigmoid": ops.sigmoid,
    "exp_scaled": lambda t: (t * 0.3).exp(),
    "relu": ops.relu,
    "softmax": lambda t: ops.softmax(t, axis=-1),
}


@st.composite
def expression_case(draw):
    seed = draw(st.integers(0, 10_000))
    n = draw(st.integers(2, 5))
    m = draw(st.integers(2, 5))
    op_names = draw(st.lists(st.sampled_from(sorted(UNARY_OPS)), min_size=1, max_size=3))
    return seed, n, m, op_names


class TestAutodiffProperties:
    @given(expression_case())
    @settings(max_examples=40, deadline=None)
    def test_composed_expression_gradients(self, case):
        seed, n, m, op_names = case
        rng = np.random.default_rng(seed)
        a = Tensor(rng.standard_normal((n, m)), requires_grad=True)
        b = Tensor(rng.standard_normal((m, n)), requires_grad=True)
        weights = rng.standard_normal((n, n))

        def fn(a, b):
            out = a @ b
            for name in op_names:
                out = UNARY_OPS[name](out)
            return (out * weights).sum()

        gradient_check(fn, [a, b], rtol=1e-3, atol=1e-5)

    @given(st.integers(0, 1000), st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_sum_linearity(self, seed, k):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((k, 3))
        t = Tensor(x, requires_grad=True)
        (t.sum() * 2.0).backward()
        np.testing.assert_allclose(t.grad, np.full_like(x, 2.0))

    @given(st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_softmax_simplex(self, seed):
        rng = np.random.default_rng(seed)
        x = Tensor(rng.standard_normal((4, 9)) * 5.0)
        s = ops.softmax(x, axis=-1).data
        assert np.all(s >= 0)
        np.testing.assert_allclose(s.sum(axis=-1), 1.0, atol=1e-12)


# ----------------------------------------------------------------------
# Encodings
# ----------------------------------------------------------------------
class TestEncodingProperties:
    @given(st.integers(0, 5000))
    @settings(max_examples=30, deadline=None)
    def test_soft_encoding_simplex_rows(self, seed):
        rng = np.random.default_rng(seed)
        alpha = Tensor(rng.standard_normal((SPACE.num_layers, SPACE.num_choices)) * 3)
        rows = arch_features_from_alpha(SPACE, alpha).data.reshape(
            SPACE.num_layers, SPACE.num_choices
        )
        np.testing.assert_allclose(rows.sum(axis=1), 1.0, atol=1e-9)
        assert np.all(rows >= 0)

    @given(st.integers(0, 5000))
    @settings(max_examples=30, deadline=None)
    def test_extended_features_finite_and_bounded(self, seed):
        rng = np.random.default_rng(seed)
        arch = NetworkArch.random(SPACE, rng)
        feats = extended_features_from_indices(SPACE, arch.to_indices())
        assert np.all(np.isfinite(feats))
        assert feats.min() >= 0.0
        # Totals are normalized to <= ~max-network scale.
        assert feats.max() <= SPACE.num_layers + 1

    @given(st.integers(0, 5000))
    @settings(max_examples=30, deadline=None)
    def test_summary_macs_matches_conv_expansion(self, seed):
        """Expected MACs under a one-hot encoding equals the block MACs
        of the discrete network (stem excluded)."""
        rng = np.random.default_rng(seed)
        arch = NetworkArch.random(SPACE, rng)
        one_hot = np.zeros((SPACE.num_layers, SPACE.num_choices))
        for li, idx in enumerate(arch.to_indices()):
            one_hot[li, idx] = 1.0
        summary = summary_from_probs(SPACE, one_hot.reshape(-1)).data
        stem_macs = arch.conv_layers()[0].macs
        block_macs = arch.total_macs() - stem_macs
        from repro.arch.encoding import _choice_stats

        stats = _choice_stats(SPACE)
        max_total = sum(stats[0, li].max() for li in range(SPACE.num_layers))
        # stats are normalized; undo normalization for the comparison.
        denominator = block_macs_normalizer(stats)
        np.testing.assert_allclose(
            summary[0], block_macs / denominator, rtol=1e-9
        )


def block_macs_normalizer(stats) -> float:
    """Recover the normalization constant used by _choice_stats."""
    space = SPACE
    raw = np.zeros_like(stats[0])
    for li, spec in enumerate(space.layers):
        for ci, choice in enumerate(spec.candidates()):
            if choice.is_skip:
                continue
            mid = spec.in_channels * choice.expand
            macs = 0.0
            if choice.expand != 1:
                macs += spec.in_channels * mid * spec.in_size**2
            macs += mid * choice.kernel**2 * spec.out_size**2
            macs += mid * spec.out_channels * spec.out_size**2
            raw[li, ci] = macs
    return sum(raw[li].max() for li in range(space.num_layers))


# ----------------------------------------------------------------------
# Architecture statistics
# ----------------------------------------------------------------------
class TestArchProperties:
    @given(st.integers(0, 5000))
    @settings(max_examples=40, deadline=None)
    def test_macs_weights_positive(self, seed):
        rng = np.random.default_rng(seed)
        arch = NetworkArch.random(SPACE, rng)
        assert arch.total_macs() > 0
        assert arch.total_weights() > 0
        assert 0 < arch.depth() <= SPACE.num_layers

    @given(st.integers(0, 5000), st.integers(0, 17))
    @settings(max_examples=40, deadline=None)
    def test_upgrading_one_layer_never_reduces_macs(self, seed, layer):
        """Replacing (3,3) by (7,6) in any layer increases MACs."""
        rng = np.random.default_rng(seed)
        indices = [int(rng.integers(0, 6)) for _ in range(SPACE.num_layers)]
        indices[layer] = 0  # (3,3)
        low = NetworkArch.from_indices(SPACE, indices).total_macs()
        indices[layer] = 5  # (7,6)
        high = NetworkArch.from_indices(SPACE, indices).total_macs()
        assert high > low


# ----------------------------------------------------------------------
# Gradient manipulation and delta policy
# ----------------------------------------------------------------------
class TestManipulationProperties:
    @given(
        st.integers(2, 40),
        st.floats(1e-6, 1.0),
        st.integers(0, 10_000),
        st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_output_finite_and_guaranteed(self, dim, delta, seed, violated):
        rng = np.random.default_rng(seed)
        g_loss = rng.standard_normal(dim) * rng.uniform(0.1, 10)
        g_const = rng.standard_normal(dim) * rng.uniform(0.1, 10)
        out, applied = manipulate_gradient(g_loss, g_const, violated, delta)
        assert np.all(np.isfinite(out))
        if violated:
            assert out @ g_const >= -1e-8
        else:
            assert not applied
            np.testing.assert_array_equal(out, g_loss)

    @given(st.floats(1e-6, 1.0), st.floats(1e-6, 0.5), st.lists(st.booleans(), max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_delta_policy_invariants(self, delta0, p, pattern):
        policy = DeltaPolicy(delta0=delta0, p=p)
        for violated in pattern:
            policy.update(violated)
            assert policy.delta >= delta0 * (1 - 1e-12)
            if not violated:
                assert policy.delta == pytest.approx(delta0)


class TestConstraintProperties:
    @given(
        st.floats(0.1, 100.0),
        st.floats(0.1, 200.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_violation_nonnegative(self, bound, value):
        c = Constraint("latency", bound)
        v = c.violation(value)
        assert v >= 0
        assert (v > 0) == (value > bound)

    @given(st.floats(1.0, 100.0), st.floats(0.1, 200.0))
    @settings(max_examples=40, deadline=None)
    def test_constraint_loss_gradient_sign(self, bound, value):
        assume(abs(value - bound) > 1e-6)
        cs = ConstraintSet.latency(bound)
        metrics = Tensor(np.array([value, 1.0, 1.0]), requires_grad=True)
        loss = cs.constraint_loss(metrics)
        if value > bound:
            loss.backward()
            assert metrics.grad[0] > 0
        else:
            assert loss.item() == 0.0
