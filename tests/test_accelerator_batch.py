"""Tests for the vectorized design-space evaluator."""

import numpy as np
import pytest

from repro.accelerator import DesignSpace, cost_hw, evaluate_network, exhaustive_search
from repro.accelerator.batch import evaluate_network_batch, evaluate_network_space
from repro.arch import NetworkArch, cifar_space

SPACE = cifar_space()
RNG = np.random.default_rng(11)


class TestBatchEvaluation:
    def test_covers_full_space(self):
        arch = NetworkArch.from_indices(SPACE, [0] * SPACE.num_layers)
        ev = evaluate_network_space(arch)
        assert len(ev.configs) == len(DesignSpace()) == 2295
        assert ev.latency_ms.shape == (2295,)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_batch_matches_scalar(self, seed):
        """The vectorized model must agree with the scalar oracle."""
        rng = np.random.default_rng(seed)
        arch = NetworkArch.random(SPACE, rng)
        ev = evaluate_network_space(arch)
        for index in rng.choice(len(ev.configs), size=25, replace=False):
            truth = evaluate_network(arch, ev.configs[index])
            assert ev.latency_ms[index] == pytest.approx(truth.latency_ms, rel=1e-9)
            assert ev.energy_mj[index] == pytest.approx(truth.energy_mj, rel=1e-9)
            assert ev.area_mm2[index] == pytest.approx(truth.area_mm2, rel=1e-9)

    def test_best_matches_exhaustive_search(self):
        arch = NetworkArch.from_indices(SPACE, [1] * SPACE.num_layers)
        ev = evaluate_network_space(arch)
        config, index = ev.best()
        scalar_config, scalar_metrics = exhaustive_search(arch)
        assert ev.cost_hw()[index] == pytest.approx(cost_hw(scalar_metrics), rel=1e-9)

    def test_best_with_constraints(self):
        arch = NetworkArch.from_indices(SPACE, [0] * SPACE.num_layers)
        ev = evaluate_network_space(arch)
        bound = float(np.median(ev.latency_ms))
        config, index = ev.best(constraints={"latency": bound})
        assert ev.latency_ms[index] <= bound

    def test_best_infeasible_returns_fallback(self):
        arch = NetworkArch.from_indices(SPACE, [0] * SPACE.num_layers)
        ev = evaluate_network_space(arch)
        config, index = ev.best(constraints={"latency": 1e-9})
        assert 0 <= index < len(ev.configs)

    def test_custom_objective(self):
        arch = NetworkArch.from_indices(SPACE, [0] * SPACE.num_layers)
        ev = evaluate_network_space(arch)
        _, index = ev.best(objective=ev.latency_ms)
        assert ev.latency_ms[index] == ev.latency_ms.min()

    @pytest.mark.parametrize("seed", [0, 1])
    def test_subset_matches_scalar_on_repair_neighbourhood(self, seed):
        """The config-subset evaluator must agree with the scalar
        oracle on exactly the batch decode repair scans."""
        from repro.accelerator.config import AcceleratorConfig, Dataflow
        from repro.core.coexplore import neighbourhood_configs

        rng = np.random.default_rng(seed)
        arch = NetworkArch.random(SPACE, rng)
        centre = AcceleratorConfig(14, 12, 64, Dataflow.RS)
        neighbours = list(neighbourhood_configs(centre))
        assert len(neighbours) == 81  # 3 rows x 3 cols x 3 rf x 3 dataflows
        ev = evaluate_network_batch(arch, neighbours)
        assert ev.configs == neighbours
        for index in (0, 17, 40, 63, 80):
            truth = evaluate_network(arch, neighbours[index])
            assert ev.latency_ms[index] == pytest.approx(truth.latency_ms, rel=1e-12)
            assert ev.energy_mj[index] == pytest.approx(truth.energy_mj, rel=1e-12)
            assert ev.area_mm2[index] == pytest.approx(truth.area_mm2, rel=1e-12)

    def test_subset_boundary_neighbourhood_is_clipped(self):
        """Neighbourhoods at the design-space corner stay in bounds and
        the subset evaluator accepts the smaller batch."""
        from repro.accelerator.config import (
            AcceleratorConfig,
            Dataflow,
            PE_COLS_RANGE,
            PE_ROWS_RANGE,
        )
        from repro.core.coexplore import neighbourhood_configs

        corner = AcceleratorConfig(PE_ROWS_RANGE[0], PE_COLS_RANGE[0], 16, Dataflow.WS)
        neighbours = list(neighbourhood_configs(corner))
        assert len(neighbours) == 2 * 2 * 2 * 3
        arch = NetworkArch.from_indices(SPACE, [0] * SPACE.num_layers)
        ev = evaluate_network_batch(arch, neighbours)
        assert ev.latency_ms.shape == (len(neighbours),)
        assert np.all(ev.latency_ms > 0)

    def test_space_is_subset_of_itself(self):
        """Full-space evaluation equals the subset evaluator on the
        same grid (they share the array implementation)."""
        arch = NetworkArch.from_indices(SPACE, [2] * SPACE.num_layers)
        full = evaluate_network_space(arch)
        subset = evaluate_network_batch(arch, full.configs[100:110])
        assert np.array_equal(subset.latency_ms, full.latency_ms[100:110])
        assert np.array_equal(subset.energy_mj, full.energy_mj[100:110])
        assert np.array_equal(subset.area_mm2, full.area_mm2[100:110])

    def test_pair_batch_matches_scalar_on_every_platform(self):
        """The pair-batch oracle is the third face of the mirror
        contract: arbitrary (network, config) pairs must be bitwise
        identical to scalar ``evaluate_network`` per platform."""
        from repro.accelerator.batch import evaluate_pairs
        from repro.accelerator.platform import available_platforms

        for platform in available_platforms():
            rng = np.random.default_rng(4)
            ds = DesignSpace(platform)
            archs = [NetworkArch.random(SPACE, rng) for _ in range(8)]
            configs = ds.sample_many(8, rng)
            ev = evaluate_pairs(archs, configs)
            for i, (arch, config) in enumerate(zip(archs, configs)):
                truth = evaluate_network(arch, config, platform=platform)
                assert ev.latency_ms[i] == truth.latency_ms, platform
                assert ev.energy_mj[i] == truth.energy_mj, platform
                assert ev.area_mm2[i] == truth.area_mm2, platform

    def test_pair_batch_refuses_mixed_platforms(self):
        from repro.accelerator.batch import evaluate_pairs
        from repro.accelerator.config import AcceleratorConfig, Dataflow

        rng = np.random.default_rng(0)
        archs = [NetworkArch.random(SPACE, rng) for _ in range(2)]
        configs = [
            AcceleratorConfig(14, 12, 64, Dataflow.WS, platform="eyeriss"),
            AcceleratorConfig(8, 8, 32, Dataflow.RS, platform="edge"),
        ]
        with pytest.raises(ValueError, match="mixes platforms"):
            evaluate_pairs(archs, configs)

    def test_pair_batch_repeated_arch_matches_config_batch(self):
        """A pair batch that repeats one network across a config subset
        must agree with the one-arch config-batch evaluator exactly
        (they share _layer_rows; accumulation differs only in the
        scalar-mirroring ms/mJ conversion order, which the config-batch
        evaluator intentionally does not use)."""
        from repro.accelerator.batch import evaluate_pairs

        arch = NetworkArch.from_indices(SPACE, [3] * SPACE.num_layers)
        configs = list(DesignSpace())[50:60]
        pair_ev = evaluate_pairs([arch] * len(configs), configs)
        for i, config in enumerate(configs):
            truth = evaluate_network(arch, config)
            assert pair_ev.latency_ms[i] == truth.latency_ms
            assert pair_ev.energy_mj[i] == truth.energy_mj

    def test_much_faster_than_scalar(self):
        import time

        arch = NetworkArch.random(SPACE, RNG)
        start = time.perf_counter()
        evaluate_network_space(arch)
        batch_time = time.perf_counter() - start
        # Scalar loop over 100 configs as a proxy for the full space.
        configs = list(DesignSpace())[:100]
        start = time.perf_counter()
        for cfg in configs:
            evaluate_network(arch, cfg)
        scalar_time = (time.perf_counter() - start) * (2295 / 100)
        assert batch_time < scalar_time / 3
