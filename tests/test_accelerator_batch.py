"""Tests for the vectorized design-space evaluator."""

import numpy as np
import pytest

from repro.accelerator import DesignSpace, cost_hw, evaluate_network, exhaustive_search
from repro.accelerator.batch import evaluate_network_space
from repro.arch import NetworkArch, cifar_space

SPACE = cifar_space()
RNG = np.random.default_rng(11)


class TestBatchEvaluation:
    def test_covers_full_space(self):
        arch = NetworkArch.from_indices(SPACE, [0] * SPACE.num_layers)
        ev = evaluate_network_space(arch)
        assert len(ev.configs) == len(DesignSpace()) == 2295
        assert ev.latency_ms.shape == (2295,)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_batch_matches_scalar(self, seed):
        """The vectorized model must agree with the scalar oracle."""
        rng = np.random.default_rng(seed)
        arch = NetworkArch.random(SPACE, rng)
        ev = evaluate_network_space(arch)
        for index in rng.choice(len(ev.configs), size=25, replace=False):
            truth = evaluate_network(arch, ev.configs[index])
            assert ev.latency_ms[index] == pytest.approx(truth.latency_ms, rel=1e-9)
            assert ev.energy_mj[index] == pytest.approx(truth.energy_mj, rel=1e-9)
            assert ev.area_mm2[index] == pytest.approx(truth.area_mm2, rel=1e-9)

    def test_best_matches_exhaustive_search(self):
        arch = NetworkArch.from_indices(SPACE, [1] * SPACE.num_layers)
        ev = evaluate_network_space(arch)
        config, index = ev.best()
        scalar_config, scalar_metrics = exhaustive_search(arch)
        assert ev.cost_hw()[index] == pytest.approx(cost_hw(scalar_metrics), rel=1e-9)

    def test_best_with_constraints(self):
        arch = NetworkArch.from_indices(SPACE, [0] * SPACE.num_layers)
        ev = evaluate_network_space(arch)
        bound = float(np.median(ev.latency_ms))
        config, index = ev.best(constraints={"latency": bound})
        assert ev.latency_ms[index] <= bound

    def test_best_infeasible_returns_fallback(self):
        arch = NetworkArch.from_indices(SPACE, [0] * SPACE.num_layers)
        ev = evaluate_network_space(arch)
        config, index = ev.best(constraints={"latency": 1e-9})
        assert 0 <= index < len(ev.configs)

    def test_custom_objective(self):
        arch = NetworkArch.from_indices(SPACE, [0] * SPACE.num_layers)
        ev = evaluate_network_space(arch)
        _, index = ev.best(objective=ev.latency_ms)
        assert ev.latency_ms[index] == ev.latency_ms.min()

    def test_much_faster_than_scalar(self):
        import time

        arch = NetworkArch.random(SPACE, RNG)
        start = time.perf_counter()
        evaluate_network_space(arch)
        batch_time = time.perf_counter() - start
        # Scalar loop over 100 configs as a proxy for the full space.
        configs = list(DesignSpace())[:100]
        start = time.perf_counter()
        for cfg in configs:
            evaluate_network(arch, cfg)
        scalar_time = (time.perf_counter() - start) * (2295 / 100)
        assert batch_time < scalar_time / 3
