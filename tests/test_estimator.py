"""Tests for the cost dataset, estimator, and hardware generator."""

import numpy as np
import pytest

from repro.accelerator import AcceleratorConfig, DesignSpace, evaluate_network
from repro.arch import NetworkArch, cifar_space
from repro.arch.encoding import (
    arch_features_from_indices,
    extended_feature_dim,
    extended_features_from_indices,
)
from repro.autodiff import Tensor
from repro.estimator import (
    CostEstimator,
    HardwareGenerator,
    build_cost_dataset,
    estimator_accuracy,
    train_estimator,
)

SPACE = cifar_space()


@pytest.fixture(scope="module")
def small_dataset():
    return build_cost_dataset(SPACE, n_samples=600, seed=0)


@pytest.fixture(scope="module")
def trained_estimator(small_dataset):
    est = CostEstimator(SPACE, width=64, seed=0)
    train_estimator(est, small_dataset, epochs=30, seed=0)
    est.freeze()
    return est


class TestDataset:
    def test_shapes(self, small_dataset):
        assert small_dataset.features.shape == (600, extended_feature_dim(SPACE) + 6)
        assert small_dataset.targets.shape == (600, 3)

    def test_targets_positive(self, small_dataset):
        assert np.all(small_dataset.targets > 0)

    def test_normalization_roundtrip(self, small_dataset):
        normalized = small_dataset.normalized_targets()
        restored = small_dataset.denormalize(normalized)
        np.testing.assert_allclose(restored, small_dataset.targets, rtol=1e-10)

    def test_normalized_targets_standardized(self, small_dataset):
        normalized = small_dataset.normalized_targets()
        np.testing.assert_allclose(normalized.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(normalized.std(axis=0), 1.0, atol=1e-6)

    def test_split_disjoint_sizes(self, small_dataset):
        train, val = small_dataset.split(0.25, seed=1)
        assert len(train) == 450 and len(val) == 150

    def test_deterministic(self):
        a = build_cost_dataset(SPACE, n_samples=20, seed=3)
        b = build_cost_dataset(SPACE, n_samples=20, seed=3)
        np.testing.assert_array_equal(a.features, b.features)
        np.testing.assert_array_equal(a.targets, b.targets)


class TestEstimator:
    def test_training_reduces_loss(self, small_dataset):
        est = CostEstimator(SPACE, width=64, seed=1)
        losses = train_estimator(est, small_dataset, epochs=20, seed=0)
        assert losses[-1] < losses[0] * 0.5

    def test_accuracy_above_90_percent(self, trained_estimator, small_dataset):
        acc = estimator_accuracy(trained_estimator, small_dataset)
        for name, value in acc.items():
            assert value > 0.90, f"{name} accuracy {value:.3f} too low"

    def test_generalizes_to_unseen_pairs(self, trained_estimator):
        rng = np.random.default_rng(99)
        ds_space = DesignSpace()
        errors = []
        for _ in range(30):
            arch = NetworkArch.random(SPACE, rng)
            cfg = ds_space.sample(rng)
            truth = evaluate_network(arch, cfg)
            feats = np.concatenate(
                [extended_features_from_indices(SPACE, arch.to_indices()), cfg.to_vector()]
            )
            pred = trained_estimator.predict_numpy(feats.reshape(1, -1))[0]
            errors.append(abs(pred[0] - truth.latency_ms) / truth.latency_ms)
        assert np.mean(errors) < 0.15

    def test_predict_metrics_differentiable(self, trained_estimator):
        arch_feats = Tensor(
            extended_features_from_indices(SPACE, [0] * SPACE.num_layers),
            requires_grad=True,
        )
        accel = Tensor(AcceleratorConfig.from_vector(np.array([0.5] * 3 + [1, 0, 0])).to_vector(), requires_grad=True)
        metrics = trained_estimator.predict_metrics(arch_feats, accel)
        metrics.sum().backward()
        assert arch_feats.grad is not None
        assert accel.grad is not None

    def test_frozen_estimator_params_get_no_grad(self, trained_estimator):
        arch_feats = Tensor(
            extended_features_from_indices(SPACE, [0] * SPACE.num_layers),
            requires_grad=True,
        )
        accel = Tensor(np.array([0.5, 0.5, 0.5, 1.0, 0.0, 0.0]), requires_grad=True)
        trained_estimator.zero_grad()
        trained_estimator.predict_metrics(arch_feats, accel).sum().backward()
        for p in trained_estimator.parameters():
            assert p.grad is None

    def test_predict_metric_by_name(self, trained_estimator):
        arch_feats = Tensor(extended_features_from_indices(SPACE, [0] * SPACE.num_layers))
        accel = Tensor(np.array([0.5, 0.5, 0.5, 1.0, 0.0, 0.0]))
        all_metrics = trained_estimator.predict_metrics(arch_feats, accel)
        lat = trained_estimator.predict_metric(arch_feats, accel, "latency")
        assert lat.shape == ()
        assert lat.item() == pytest.approx(all_metrics.data[0])

    def test_normalization_buffers_in_state_dict(self, trained_estimator):
        state = trained_estimator.state_dict()
        assert "target_mean" in state and "target_std" in state


class TestGenerator:
    def test_output_shape_and_range(self):
        gen = HardwareGenerator(SPACE, seed=0)
        feats = Tensor(arch_features_from_indices(SPACE, [0] * SPACE.num_layers))
        out = gen(feats)
        assert out.shape == (6,)
        assert np.all(out.data >= 0) and np.all(out.data <= 1)

    def test_dataflow_part_sums_to_one(self):
        gen = HardwareGenerator(SPACE, seed=0)
        feats = Tensor(arch_features_from_indices(SPACE, [1] * SPACE.num_layers))
        out = gen(feats)
        assert out.data[3:].sum() == pytest.approx(1.0)

    def test_discretize_returns_valid_config(self):
        gen = HardwareGenerator(SPACE, seed=2)
        feats = Tensor(arch_features_from_indices(SPACE, [2] * SPACE.num_layers))
        cfg = gen.discretize(feats)
        assert isinstance(cfg, AcceleratorConfig)

    def test_generator_is_trainable(self):
        gen = HardwareGenerator(SPACE, seed=0)
        feats = Tensor(arch_features_from_indices(SPACE, [0] * SPACE.num_layers))
        gen(feats).sum().backward()
        grads = [p.grad for p in gen.parameters()]
        assert any(g is not None and np.any(g != 0) for g in grads)

    def test_different_archs_can_give_different_configs(self):
        gen = HardwareGenerator(SPACE, seed=3)
        a = gen(Tensor(arch_features_from_indices(SPACE, [0] * SPACE.num_layers)))
        b = gen(Tensor(arch_features_from_indices(SPACE, [5] * SPACE.num_layers)))
        assert not np.allclose(a.data, b.data)


class TestEndToEndDifferentiablePath:
    def test_gradient_flows_alpha_to_metrics_through_generator(self, trained_estimator):
        """The full eval() composition of the paper: est(alpha, gen(alpha))."""
        from repro.arch.encoding import arch_features_from_alpha, extended_features_from_alpha

        gen = HardwareGenerator(SPACE, seed=0)
        alpha = Tensor(np.zeros((SPACE.num_layers, SPACE.num_choices)), requires_grad=True)
        feats = arch_features_from_alpha(SPACE, alpha)
        ext_feats = extended_features_from_alpha(SPACE, alpha)
        beta = gen(feats)
        metrics = trained_estimator.predict_metrics(ext_feats, beta)
        metrics.sum().backward()
        assert alpha.grad is not None
        assert np.any(alpha.grad != 0)
        assert all(
            p.grad is not None for p in gen.parameters()
        ), "generator must receive gradients"
