"""Tests for the cost dataset, estimator, and hardware generator."""

import inspect

import numpy as np
import pytest

from repro.accelerator import AcceleratorConfig, DesignSpace, evaluate_network
from repro.accelerator.platform import available_platforms
from repro.arch import NetworkArch, cifar_space, imagenet_space
from repro.arch.encoding import (
    arch_features_from_indices,
    extended_feature_dim,
    extended_features_from_indices,
)
from repro.autodiff import Tensor
from repro.estimator import (
    DEFAULT_PRETRAIN_SAMPLES,
    CostDataset,
    CostEstimator,
    HardwareGenerator,
    build_cost_dataset,
    estimator_accuracy,
    pretrain_estimator,
    train_estimator,
)

SPACE = cifar_space()


@pytest.fixture(scope="module")
def small_dataset():
    return build_cost_dataset(SPACE, n_samples=600, seed=0)


@pytest.fixture(scope="module")
def trained_estimator(small_dataset):
    est = CostEstimator(SPACE, width=64, seed=0)
    train_estimator(est, small_dataset, epochs=30, seed=0)
    est.freeze()
    return est


class TestDataset:
    def test_shapes(self, small_dataset):
        assert small_dataset.features.shape == (600, extended_feature_dim(SPACE) + 6)
        assert small_dataset.targets.shape == (600, 3)

    def test_targets_positive(self, small_dataset):
        assert np.all(small_dataset.targets > 0)

    def test_normalization_roundtrip(self, small_dataset):
        normalized = small_dataset.normalized_targets()
        restored = small_dataset.denormalize(normalized)
        np.testing.assert_allclose(restored, small_dataset.targets, rtol=1e-10)

    def test_normalized_targets_standardized(self, small_dataset):
        normalized = small_dataset.normalized_targets()
        np.testing.assert_allclose(normalized.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(normalized.std(axis=0), 1.0, atol=1e-6)

    def test_split_disjoint_sizes(self, small_dataset):
        train, val = small_dataset.split(0.25, seed=1)
        assert len(train) == 450 and len(val) == 150

    def test_deterministic(self):
        a = build_cost_dataset(SPACE, n_samples=20, seed=3)
        b = build_cost_dataset(SPACE, n_samples=20, seed=3)
        np.testing.assert_array_equal(a.features, b.features)
        np.testing.assert_array_equal(a.targets, b.targets)


class TestEstimator:
    def test_training_reduces_loss(self, small_dataset):
        est = CostEstimator(SPACE, width=64, seed=1)
        losses = train_estimator(est, small_dataset, epochs=20, seed=0)
        assert losses[-1] < losses[0] * 0.5

    def test_accuracy_above_90_percent(self, trained_estimator, small_dataset):
        acc = estimator_accuracy(trained_estimator, small_dataset)
        for name, value in acc.items():
            assert value > 0.90, f"{name} accuracy {value:.3f} too low"

    def test_generalizes_to_unseen_pairs(self, trained_estimator):
        rng = np.random.default_rng(99)
        ds_space = DesignSpace()
        errors = []
        for _ in range(30):
            arch = NetworkArch.random(SPACE, rng)
            cfg = ds_space.sample(rng)
            truth = evaluate_network(arch, cfg)
            feats = np.concatenate(
                [extended_features_from_indices(SPACE, arch.to_indices()), cfg.to_vector()]
            )
            pred = trained_estimator.predict_numpy(feats.reshape(1, -1))[0]
            errors.append(abs(pred[0] - truth.latency_ms) / truth.latency_ms)
        assert np.mean(errors) < 0.15

    def test_predict_metrics_differentiable(self, trained_estimator):
        arch_feats = Tensor(
            extended_features_from_indices(SPACE, [0] * SPACE.num_layers),
            requires_grad=True,
        )
        accel = Tensor(AcceleratorConfig.from_vector(np.array([0.5] * 3 + [1, 0, 0])).to_vector(), requires_grad=True)
        metrics = trained_estimator.predict_metrics(arch_feats, accel)
        metrics.sum().backward()
        assert arch_feats.grad is not None
        assert accel.grad is not None

    def test_frozen_estimator_params_get_no_grad(self, trained_estimator):
        arch_feats = Tensor(
            extended_features_from_indices(SPACE, [0] * SPACE.num_layers),
            requires_grad=True,
        )
        accel = Tensor(np.array([0.5, 0.5, 0.5, 1.0, 0.0, 0.0]), requires_grad=True)
        trained_estimator.zero_grad()
        trained_estimator.predict_metrics(arch_feats, accel).sum().backward()
        for p in trained_estimator.parameters():
            assert p.grad is None

    def test_predict_metric_by_name(self, trained_estimator):
        arch_feats = Tensor(extended_features_from_indices(SPACE, [0] * SPACE.num_layers))
        accel = Tensor(np.array([0.5, 0.5, 0.5, 1.0, 0.0, 0.0]))
        all_metrics = trained_estimator.predict_metrics(arch_feats, accel)
        lat = trained_estimator.predict_metric(arch_feats, accel, "latency")
        assert lat.shape == ()
        assert lat.item() == pytest.approx(all_metrics.data[0])

    def test_normalization_buffers_in_state_dict(self, trained_estimator):
        state = trained_estimator.state_dict()
        assert "target_mean" in state and "target_std" in state


class TestBatchedSampling:
    """Stream-equivalence contract of the vectorized samplers: same
    values AND same final generator state as the sequential calls."""

    @pytest.mark.parametrize("space", [SPACE, imagenet_space()], ids=lambda s: s.name)
    def test_random_batch_stream_equivalent(self, space):
        seq_rng = np.random.default_rng(13)
        batch_rng = np.random.default_rng(13)
        sequential = np.array(
            [NetworkArch.random(space, seq_rng).to_indices() for _ in range(40)]
        )
        batched = NetworkArch.random_batch(space, 40, batch_rng)
        np.testing.assert_array_equal(sequential, batched)
        assert seq_rng.bit_generator.state == batch_rng.bit_generator.state

    @pytest.mark.parametrize("platform", available_platforms())
    def test_sample_batch_stream_equivalent(self, platform):
        ds = DesignSpace(platform)
        seq_rng = np.random.default_rng(17)
        batch_rng = np.random.default_rng(17)
        sequential = ds.sample_many(40, seq_rng)
        batched = ds.sample_batch(40, batch_rng)
        assert batched.configs() == sequential
        assert seq_rng.bit_generator.state == batch_rng.bit_generator.state

    @pytest.mark.parametrize("platform", available_platforms())
    def test_config_batch_vectors_match_scalar(self, platform):
        ds = DesignSpace(platform)
        batch = ds.sample_batch(25, np.random.default_rng(3))
        vectors = batch.to_vectors()
        for row, config in zip(vectors, batch.configs()):
            np.testing.assert_array_equal(row, config.to_vector())

    def test_config_batch_rejects_foreign_rf_bytes(self):
        """to_vectors must refuse an rf_bytes outside the platform's
        options, like the scalar to_vector does, instead of silently
        snapping to a neighbour."""
        from repro.accelerator import ConfigBatch

        batch = ConfigBatch(
            pe_rows=np.array([14]), pe_cols=np.array([12]),
            rf_bytes=np.array([48]), df_index=np.array([0]),
            platform="eyeriss",
        )
        with pytest.raises(ValueError, match="rf_bytes 48"):
            batch.to_vectors()

    def test_bounded_batch_falls_back_outside_fast_range(self):
        """Bounds of 1 consume no stream word; the helper must still be
        stream-exact by replaying the scalar path."""
        from repro.rng import bounded_integers_batch

        bounds = np.array([7, 1, 9, 1, 3])
        seq_rng = np.random.default_rng(23)
        batch_rng = np.random.default_rng(23)
        sequential = [int(seq_rng.integers(0, int(b))) for b in bounds]
        batched = bounded_integers_batch(batch_rng, bounds)
        assert batched.tolist() == sequential
        assert seq_rng.bit_generator.state == batch_rng.bit_generator.state


class TestPairOracle:
    """Pair-batch oracle bit parity against the scalar oracle."""

    @pytest.mark.parametrize("platform", available_platforms())
    def test_pairs_bitwise_match_scalar(self, platform):
        from repro.accelerator.batch import evaluate_pairs

        rng = np.random.default_rng(5)
        ds = DesignSpace(platform)
        archs = [NetworkArch.random(SPACE, rng) for _ in range(12)]
        configs = ds.sample_many(12, rng)
        ev = evaluate_pairs(archs, configs)
        for i, (arch, config) in enumerate(zip(archs, configs)):
            truth = evaluate_network(arch, config, platform=platform)
            assert ev.latency_ms[i] == truth.latency_ms
            assert ev.energy_mj[i] == truth.energy_mj
            assert ev.area_mm2[i] == truth.area_mm2

    def test_indices_entry_matches_object_entry(self):
        from repro.accelerator.batch import evaluate_pairs, evaluate_pairs_from_indices

        rng = np.random.default_rng(8)
        ds = DesignSpace()
        indices = NetworkArch.random_batch(SPACE, 10, rng)
        batch = ds.sample_batch(10, rng)
        by_indices = evaluate_pairs_from_indices(SPACE, indices, batch)
        by_objects = evaluate_pairs(
            [NetworkArch.from_indices(SPACE, row) for row in indices],
            batch.configs(),
        )
        np.testing.assert_array_equal(by_indices.as_matrix(), by_objects.as_matrix())

    def test_length_mismatch_refused(self):
        from repro.accelerator.batch import evaluate_pairs

        rng = np.random.default_rng(0)
        archs = [NetworkArch.random(SPACE, rng) for _ in range(3)]
        configs = DesignSpace().sample_many(2, rng)
        with pytest.raises(ValueError, match="one config per network"):
            evaluate_pairs(archs, configs)


class TestVectorizedDataset:
    def test_matches_scalar_reference_pipeline(self):
        """The vectorized builder must reproduce the original
        one-pair-at-a-time loop bitwise, platform by platform."""
        from repro.accelerator.platform import as_platform

        for platform in available_platforms():
            plat = as_platform(platform)
            rng = np.random.default_rng(0)
            design_space = DesignSpace(plat)
            features = np.empty((40, extended_feature_dim(SPACE) + 6))
            targets = np.empty((40, 3))
            for i in range(40):
                arch = NetworkArch.random(SPACE, rng)
                config = design_space.sample(rng)
                metrics = evaluate_network(arch, config, platform=plat)
                features[i] = np.concatenate(
                    [
                        extended_features_from_indices(SPACE, arch.to_indices()),
                        config.to_vector(),
                    ]
                )
                targets[i] = metrics.as_tuple()
            dataset = build_cost_dataset(SPACE, n_samples=40, seed=0, platform=plat)
            np.testing.assert_array_equal(dataset.features, features)
            np.testing.assert_array_equal(dataset.targets, targets)

    def test_non_positive_targets_rejected_at_construction(self):
        targets = np.array([[1.0, 2.0, 3.0], [1.0, 0.0, 3.0]])
        with pytest.raises(ValueError, match="must be positive"):
            CostDataset(np.zeros((2, 4)), targets, np.zeros(3), np.ones(3))

    def test_oracle_guard_names_platform_and_config(self):
        from repro.accelerator import ConfigBatch
        from repro.estimator.dataset import _check_oracle_targets

        batch = ConfigBatch(
            pe_rows=np.array([14, 16]),
            pe_cols=np.array([12, 10]),
            rf_bytes=np.array([64, 32]),
            df_index=np.array([0, 2]),
            platform="eyeriss",
        )
        targets = np.array([[1.0, 1.0, 1.0], [2.0, -3.0, 1.0]])
        with pytest.raises(ValueError) as excinfo:
            _check_oracle_targets(targets, "eyeriss", batch)
        message = str(excinfo.value)
        assert "eyeriss" in message
        assert "energy_mj" in message
        assert "16x10 PEs" in message  # the offending config, not the first one

    def test_n_samples_defaults_unified(self):
        """build_cost_dataset and pretrain_estimator train on the same
        documented sample count."""
        build_default = inspect.signature(build_cost_dataset).parameters["n_samples"]
        pretrain_default = inspect.signature(pretrain_estimator).parameters["n_samples"]
        assert build_default.default == DEFAULT_PRETRAIN_SAMPLES
        assert pretrain_default.default == DEFAULT_PRETRAIN_SAMPLES


class TestFusedTrainer:
    """The fused-kernel/autodiff parity contract (change-both rule)."""

    def _parity_case(self, n_samples, width, epochs, seed):
        dataset = build_cost_dataset(SPACE, n_samples=n_samples, seed=seed)
        reference = CostEstimator(SPACE, width=width, seed=seed)
        fused = CostEstimator(SPACE, width=width, seed=seed)
        ref_losses = train_estimator(
            reference, dataset, epochs=epochs, seed=seed, backend="autodiff"
        )
        fused_losses = train_estimator(
            fused, dataset, epochs=epochs, seed=seed, backend="fused"
        )
        assert ref_losses == fused_losses
        for (name, p_ref), (_, p_fused) in zip(
            reference.named_parameters(), fused.named_parameters()
        ):
            assert np.array_equal(p_ref.data, p_fused.data), name

    def test_fused_matches_autodiff_bitwise(self):
        self._parity_case(n_samples=300, width=32, epochs=3, seed=0)

    def test_fused_matches_autodiff_with_single_row_tail_batch(self):
        # 257 samples -> final minibatch of one row, exercising the
        # engine's outer-product weight-VJP special case.
        self._parity_case(n_samples=257, width=24, epochs=2, seed=4)

    def test_unknown_backend_rejected(self):
        dataset = build_cost_dataset(SPACE, n_samples=30, seed=0)
        estimator = CostEstimator(SPACE, width=16, seed=0)
        with pytest.raises(ValueError, match="unknown backend"):
            train_estimator(estimator, dataset, epochs=1, backend="torch")


class TestPredictConsolidation:
    def test_predict_numpy_rows_are_scalar_stable(self, trained_estimator, small_dataset):
        """Each row of the one batched path equals a scalar (1, in)
        forward bitwise — the contract the fleet telemetry and the
        scalar search loop share."""
        from repro.autodiff import no_grad

        features = small_dataset.features[:9]
        batched = trained_estimator.predict_numpy(features)
        for i in range(len(features)):
            with no_grad():
                normalized = trained_estimator.forward(Tensor(features[i : i + 1])).data
            scalar = np.exp(
                normalized * trained_estimator.target_std
                + trained_estimator.target_mean
            )[0]
            np.testing.assert_array_equal(batched[i], scalar)

    def test_predict_numpy_rows_alias_removed(self, trained_estimator):
        assert not hasattr(trained_estimator, "predict_numpy_rows")


class TestGenerator:
    def test_output_shape_and_range(self):
        gen = HardwareGenerator(SPACE, seed=0)
        feats = Tensor(arch_features_from_indices(SPACE, [0] * SPACE.num_layers))
        out = gen(feats)
        assert out.shape == (6,)
        assert np.all(out.data >= 0) and np.all(out.data <= 1)

    def test_dataflow_part_sums_to_one(self):
        gen = HardwareGenerator(SPACE, seed=0)
        feats = Tensor(arch_features_from_indices(SPACE, [1] * SPACE.num_layers))
        out = gen(feats)
        assert out.data[3:].sum() == pytest.approx(1.0)

    def test_discretize_returns_valid_config(self):
        gen = HardwareGenerator(SPACE, seed=2)
        feats = Tensor(arch_features_from_indices(SPACE, [2] * SPACE.num_layers))
        cfg = gen.discretize(feats)
        assert isinstance(cfg, AcceleratorConfig)

    def test_generator_is_trainable(self):
        gen = HardwareGenerator(SPACE, seed=0)
        feats = Tensor(arch_features_from_indices(SPACE, [0] * SPACE.num_layers))
        gen(feats).sum().backward()
        grads = [p.grad for p in gen.parameters()]
        assert any(g is not None and np.any(g != 0) for g in grads)

    def test_different_archs_can_give_different_configs(self):
        gen = HardwareGenerator(SPACE, seed=3)
        a = gen(Tensor(arch_features_from_indices(SPACE, [0] * SPACE.num_layers)))
        b = gen(Tensor(arch_features_from_indices(SPACE, [5] * SPACE.num_layers)))
        assert not np.allclose(a.data, b.data)


class TestEndToEndDifferentiablePath:
    def test_gradient_flows_alpha_to_metrics_through_generator(self, trained_estimator):
        """The full eval() composition of the paper: est(alpha, gen(alpha))."""
        from repro.arch.encoding import arch_features_from_alpha, extended_features_from_alpha

        gen = HardwareGenerator(SPACE, seed=0)
        alpha = Tensor(np.zeros((SPACE.num_layers, SPACE.num_choices)), requires_grad=True)
        feats = arch_features_from_alpha(SPACE, alpha)
        ext_feats = extended_features_from_alpha(SPACE, alpha)
        beta = gen(feats)
        metrics = trained_estimator.predict_metrics(ext_feats, beta)
        metrics.sum().backward()
        assert alpha.grad is not None
        assert np.any(alpha.grad != 0)
        assert all(
            p.grad is not None for p in gen.parameters()
        ), "generator must receive gradients"
