"""Tests for the experiment runtime layer (``repro/runtime/``).

Covers the four runtime contracts:

* **run keys** are process-stable (golden hashes pinned across
  interpreter restarts) and sensitive to *every* ``SearchConfig``
  field, the platform, and the estimator fingerprint;
* the **RunStore** round-trips results bitwise (including history),
  writes atomically, refuses stale-engine records, and supports
  ``ls``/``gc``/``invalidate``;
* ``run_many`` returns results in **request order** even when the
  manifest shuffles structure groups;
* the **Scheduler** is bitwise identical to single-process
  ``run_many`` under ``jobs=2`` sharding (mixed structures, mixed
  platforms) and serves repeated manifests entirely from the store.
"""

import dataclasses
import json
import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import cifar_space
from repro.baselines import autonba_config, dance_config, hdx_config
from repro.core import ConstraintSet, SearchConfig, run_many
from repro.experiments.common import get_estimator, get_space
from repro.runtime import (
    ENGINE_SALT,
    RunStore,
    Scheduler,
    dispatch_many,
    estimator_fingerprint,
    last_report,
    run_key,
    runtime_context,
)

EPOCHS = 20  # small but long enough to exercise constraint passes

FP = "f" * 16  # stand-in estimator fingerprint for key-layout tests


def assert_results_identical(a, b):
    """Bitwise equality of two SearchResults, history included."""
    assert a.arch == b.arch
    assert a.config == b.config
    assert a.metrics == b.metrics
    assert a.error_percent == b.error_percent
    assert a.loss_nas == b.loss_nas
    assert a.cost == b.cost
    assert a.in_constraint == b.in_constraint
    assert a.method == b.method
    assert a.platform == b.platform
    assert len(a.history) == len(b.history)
    for ra, rb in zip(a.history, b.history):
        assert ra == rb


# ----------------------------------------------------------------------
# Run keys
# ----------------------------------------------------------------------
class TestRunKeys:
    def test_golden_hash_default_config(self):
        # Pinned across interpreter restarts and machines.  If this
        # changes, either the key layout changed (bump RUN_KEY_VERSION)
        # or a SearchConfig field was added/renamed — both are *meant*
        # to orphan existing stores; update the golden hash.
        assert (
            run_key(SearchConfig(), space="cifar10", estimator_fingerprint=FP)
            == "19dca7f2468fd47433c926f0d33c11d8d23a407774b57b896a920a060882dc39"
        )

    def test_golden_hash_rich_config(self):
        cfg = SearchConfig(
            lambda_cost=0.005,
            constraints=ConstraintSet.from_dict({"latency": 16.6, "area": 2.0}),
            soft_lambda=0.5,
            epochs=75,
            seed=42,
            platform="edge",
            cost_weights={"latency": 2.0, "energy": 1.0, "area": 0.5},
            method_name="DANCE+Soft",
        )
        assert (
            run_key(cfg, space="imagenet", estimator_fingerprint="0123456789abcdef")
            == "9cc42d2940868f16c0e2b3466dd4bf1b525c446eef354d841f6658db8216e555"
        )

    @staticmethod
    def _mutated(config: SearchConfig, field: dataclasses.Field):
        """A copy of ``config`` with one field changed to a valid value."""
        value = getattr(config, field.name)
        if field.name == "constraints":
            new = ConstraintSet.latency(12.3)
        elif field.name == "cost_weights":
            new = {"latency": 2.0, "energy": 1.0, "area": 1.0}
        elif field.name == "fidelity":
            new = "full"
        elif isinstance(value, bool):
            new = not value
        elif isinstance(value, int):
            new = value + 1
        elif isinstance(value, float):
            new = value + 0.125
        elif isinstance(value, str):
            new = value + "-x"
        else:  # pragma: no cover - future field types must be taught here
            raise AssertionError(f"no mutation rule for field {field.name!r}")
        return dataclasses.replace(config, **{field.name: new})

    def test_every_config_field_changes_key(self):
        base = SearchConfig()
        base_key = run_key(base, space="cifar10", estimator_fingerprint=FP)
        for field in dataclasses.fields(SearchConfig):
            mutated = self._mutated(base, field)
            key = run_key(mutated, space="cifar10", estimator_fingerprint=FP)
            assert key != base_key, f"field {field.name!r} did not change the key"

    def test_space_and_fingerprint_change_key(self):
        base = run_key(SearchConfig(), space="cifar10", estimator_fingerprint=FP)
        assert run_key(SearchConfig(), space="imagenet", estimator_fingerprint=FP) != base
        assert run_key(SearchConfig(), space="cifar10", estimator_fingerprint="0" * 16) != base

    def test_key_embeds_engine_salt(self):
        # The salt is part of the hashed payload: simulate a bump by
        # hashing the payload with a different salt value.
        import hashlib

        from repro.runtime import config_payload
        from repro.runtime.engine import RUN_KEY_VERSION

        def key_with_salt(salt):
            payload = {
                "run_key_version": RUN_KEY_VERSION,
                "engine": salt,
                "space": "cifar10",
                "platform": "eyeriss",
                "estimator": FP,
                "config": config_payload(SearchConfig()),
            }
            blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
            return hashlib.sha256(blob.encode()).hexdigest()

        assert key_with_salt(ENGINE_SALT) == run_key(
            SearchConfig(), space="cifar10", estimator_fingerprint=FP
        )
        assert key_with_salt(ENGINE_SALT + "-bumped") != key_with_salt(ENGINE_SALT)

    @settings(max_examples=25, deadline=None)
    @given(
        lam=st.floats(1e-4, 1e-1, allow_nan=False),
        seed=st.integers(0, 10_000),
        epochs=st.integers(1, 500),
        bound=st.floats(1.0, 100.0, allow_nan=False),
    )
    def test_keys_deterministic_and_injective_on_samples(
        self, lam, seed, epochs, bound
    ):
        cfg = hdx_config(
            ConstraintSet.latency(bound), lambda_cost=lam, seed=seed, epochs=epochs
        )
        key = run_key(cfg, space="cifar10", estimator_fingerprint=FP)
        # Deterministic: rebuilding the identical config reproduces it.
        again = hdx_config(
            ConstraintSet.latency(bound), lambda_cost=lam, seed=seed, epochs=epochs
        )
        assert run_key(again, space="cifar10", estimator_fingerprint=FP) == key
        # Sensitive: the seed always separates keys.
        other = dataclasses.replace(cfg, seed=seed + 1)
        assert run_key(other, space="cifar10", estimator_fingerprint=FP) != key

    def test_estimator_fingerprint_tracks_weights(self):
        space = cifar_space()
        from repro.estimator import CostEstimator

        a = CostEstimator(space, width=8, n_layers=3, seed=0)
        b = CostEstimator(space, width=8, n_layers=3, seed=0)
        c = CostEstimator(space, width=8, n_layers=3, seed=1)
        assert estimator_fingerprint(a) == estimator_fingerprint(b)
        assert estimator_fingerprint(a) != estimator_fingerprint(c)
        # A normalization (buffer) change alone must also change it.
        b.set_normalization(np.ones(3), np.ones(3))
        assert estimator_fingerprint(a) != estimator_fingerprint(b)


# ----------------------------------------------------------------------
# Run store
# ----------------------------------------------------------------------
@pytest.fixture()
def store(tmp_path):
    return RunStore(str(tmp_path / "runs"))


@pytest.fixture(scope="module")
def small_result():
    space = get_space("cifar10")
    estimator = get_estimator("cifar10")
    return run_many(
        space, estimator, [dance_config(lambda_cost=0.003, seed=0, epochs=EPOCHS)]
    )[0]


class TestRunStore:
    KEY = "ab" + "0" * 62

    def test_roundtrip_bitwise_with_history(self, store, small_result):
        store.put(self.KEY, small_result)
        assert self.KEY in store
        loaded = store.get(self.KEY, space=get_space("cifar10"))
        assert_results_identical(small_result, loaded)
        assert len(loaded.history) == EPOCHS

    def test_miss_returns_none(self, store):
        assert store.get("ff" + "0" * 62) is None
        assert ("ff" + "0" * 62) not in store

    def test_stale_engine_refused_and_gced(self, store, small_result):
        path = store.put(self.KEY, small_result)
        record = json.load(open(path))
        record["result"]["engine"] = "some-older-engine"
        with open(path, "w") as handle:
            json.dump(record, handle)
        assert store.get(self.KEY) is None, "stale-engine hit must be refused"
        (entry,) = store.ls()
        assert entry.stale
        assert store.gc() == 1
        assert len(store) == 0

    def test_legacy_schema_refused(self, store, small_result):
        path = store.put(self.KEY, small_result)
        record = json.load(open(path))
        del record["result"]["schema_version"]
        del record["result"]["engine"]
        with open(path, "w") as handle:
            json.dump(record, handle)
        assert store.get(self.KEY) is None

    def test_no_partial_records(self, store, small_result):
        store.put(self.KEY, small_result)
        directory = os.path.dirname(store.path_for(self.KEY))
        assert all(not name.endswith(".tmp") for name in os.listdir(directory))

    def test_ls_invalidate_clear(self, store, small_result):
        store.put("aa" + "1" * 62, small_result)
        store.put("ab" + "2" * 62, small_result)
        store.put("cd" + "3" * 62, small_result)
        assert [e.key[:2] for e in store.ls()] == ["aa", "ab", "cd"]
        assert store.invalidate("a") == 2
        assert len(store) == 1
        with pytest.raises(ValueError):
            store.invalidate("")
        assert store.clear() == 1
        assert store.ls() == []


# ----------------------------------------------------------------------
# Estimator disk cache: atomic writes + locking (multiprocess safety)
# ----------------------------------------------------------------------
class TestEstimatorCacheSafety:
    def test_atomic_save_leaves_no_temp_and_roundtrips(self, tmp_path):
        from repro.estimator import CostEstimator
        from repro.experiments import common

        est = get_estimator("cifar10")
        path = str(tmp_path / "est.npz")
        common._atomic_save_estimator(est, path)
        assert os.listdir(tmp_path) == ["est.npz"], "temp file leaked"
        fresh = CostEstimator(est.space, width=128, seed=0, platform="eyeriss")
        common._load_estimator(fresh, path)
        assert fresh.frozen
        assert estimator_fingerprint(fresh) == estimator_fingerprint(est)

    def test_write_lock_is_exclusive_and_released(self, tmp_path):
        import fcntl

        from repro.experiments import common

        path = str(tmp_path / "est.npz")
        with common._cache_write_lock(path):
            # A second (non-blocking) acquisition from this process via a
            # separate descriptor must fail while the lock is held...
            with open(path + ".lock") as probe:
                with pytest.raises(OSError):
                    fcntl.flock(probe, fcntl.LOCK_EX | fcntl.LOCK_NB)
        # ...and succeed after release.
        with open(path + ".lock") as probe:
            fcntl.flock(probe, fcntl.LOCK_EX | fcntl.LOCK_NB)
            fcntl.flock(probe, fcntl.LOCK_UN)


# ----------------------------------------------------------------------
# run_many request-order guarantee
# ----------------------------------------------------------------------
class TestRunManyOrder:
    def test_structure_shuffled_manifest_keeps_request_order(self):
        """Interleave three structure groups; results must line up 1:1
        with the request, bitwise equal to running each config alone."""
        space = get_space("cifar10")
        estimator = get_estimator("cifar10")
        cs = ConstraintSet.latency(33.3)
        configs = [
            dance_config(lambda_cost=0.003, seed=0, epochs=EPOCHS),
            hdx_config(cs, seed=1, epochs=EPOCHS),
            autonba_config(lambda_cost=0.002, seed=2, epochs=EPOCHS),
            dance_config(lambda_cost=0.006, seed=3, epochs=EPOCHS),
            autonba_config(lambda_cost=0.004, seed=4, epochs=EPOCHS),
            hdx_config(cs, lambda_cost=0.002, seed=5, epochs=EPOCHS),
            dance_config(lambda_cost=0.001, seed=6, epochs=EPOCHS),
        ]
        batched = run_many(space, estimator, configs)
        assert [r.method for r in batched] == [c.method_name for c in configs]
        for config, result in zip(configs, batched):
            (alone,) = run_many(space, estimator, [config])
            assert_results_identical(alone, result)


# ----------------------------------------------------------------------
# Scheduler: sharding parity and store resume
# ----------------------------------------------------------------------
def _mixed_manifest():
    cs = ConstraintSet.latency(33.3)
    return [
        dance_config(lambda_cost=0.003, seed=0, epochs=EPOCHS),
        hdx_config(cs, seed=1, epochs=EPOCHS),
        dance_config(lambda_cost=0.004, seed=2, epochs=EPOCHS, platform="edge"),
        autonba_config(lambda_cost=0.002, seed=3, epochs=EPOCHS),
        dance_config(lambda_cost=0.005, seed=4, epochs=EPOCHS),
        dance_config(lambda_cost=0.002, seed=5, epochs=EPOCHS, platform="edge"),
        hdx_config(cs, lambda_cost=0.002, seed=6, epochs=EPOCHS),
    ]


class TestScheduler:
    def test_jobs2_bitwise_identical_to_run_many(self):
        """Acceptance: sharded output == single-process fleet output for
        a mixed-structure, mixed-platform manifest."""
        space = get_space("cifar10")
        configs = _mixed_manifest()
        estimators = {
            p: get_estimator("cifar10", platform=p)
            for p in {c.platform for c in configs}
        }
        reference = run_many(space, estimators, configs)
        with runtime_context(jobs=2):
            sharded = dispatch_many(space, configs)
            report = last_report()
        assert report.jobs == 2 and report.shards > 1
        assert len(sharded) == len(reference)
        for ref, got in zip(reference, sharded):
            assert_results_identical(ref, got)

    def test_store_resume_zero_executed(self, tmp_path):
        """Acceptance: a repeated invocation is served 100% from the
        store and executes 0 searches."""
        space = get_space("cifar10")
        configs = _mixed_manifest()
        with runtime_context(store=str(tmp_path / "runs")):
            first = dispatch_many(space, configs)
            r1 = last_report()
            assert r1.executed == len(configs) and r1.stored == len(configs)
            second = dispatch_many(space, configs)
            r2 = last_report()
        assert r2.executed == 0 and r2.store_hits == len(configs)
        for a, b in zip(first, second):
            assert_results_identical(a, b)

    def test_rerun_executes_despite_hits(self, tmp_path):
        space = get_space("cifar10")
        configs = [dance_config(lambda_cost=0.003, seed=0, epochs=EPOCHS)]
        with runtime_context(store=str(tmp_path / "runs")):
            dispatch_many(space, configs)
        with runtime_context(store=str(tmp_path / "runs"), rerun=True):
            dispatch_many(space, configs)
            assert last_report().executed == 1
            assert last_report().store_hits == 0

    def test_store_and_shards_compose(self, tmp_path):
        """jobs=2 misses execute sharded, land in the store, and the
        repeat is all hits — results identical throughout."""
        space = get_space("cifar10")
        configs = _mixed_manifest()
        with runtime_context(jobs=2, store=str(tmp_path / "runs")):
            first = dispatch_many(space, configs)
            assert last_report().executed == len(configs)
            second = dispatch_many(space, configs)
            assert last_report().executed == 0
        for a, b in zip(first, second):
            assert_results_identical(a, b)

    def test_partial_hits_merge_in_manifest_order(self, tmp_path):
        """Pre-populate only some keys; hits and fresh runs interleave
        back into manifest order."""
        space = get_space("cifar10")
        configs = _mixed_manifest()
        with runtime_context(store=str(tmp_path / "runs")):
            reference = dispatch_many(space, configs)
        # Drop every other record, then re-dispatch.
        store = RunStore(str(tmp_path / "runs"))
        keys = last_report().keys
        for index in range(0, len(configs), 2):
            assert store.invalidate(keys[index]) == 1
        with runtime_context(store=str(tmp_path / "runs")):
            merged = dispatch_many(space, configs)
            report = last_report()
        assert report.store_hits == len(configs) // 2
        assert report.executed == len(configs) - len(configs) // 2
        for a, b in zip(reference, merged):
            assert_results_identical(a, b)

    def test_foreign_estimator_refused_for_sharding(self):
        from repro.estimator import CostEstimator

        space = get_space("cifar10")
        foreign = CostEstimator(space, width=8, n_layers=3, seed=7)
        foreign.freeze()
        scheduler = Scheduler(space, foreign, jobs=2)
        with pytest.raises(ValueError, match="shared"):
            scheduler.run(
                [
                    dance_config(lambda_cost=0.003, seed=0, epochs=4),
                    dance_config(lambda_cost=0.004, seed=1, epochs=4),
                ]
            )

    def test_full_fidelity_not_cached(self, tmp_path):
        """Full-fidelity configs bypass the store entirely."""
        scheduler = Scheduler(
            get_space("cifar10"),
            get_estimator("cifar10"),
            store=RunStore(str(tmp_path / "runs")),
        )
        config = dance_config(lambda_cost=0.003, seed=0, epochs=EPOCHS)
        assert scheduler._cacheable(config)
        full = dataclasses.replace(config, fidelity="full")
        assert not scheduler._cacheable(full)


# ----------------------------------------------------------------------
# Driver + CLI integration
# ----------------------------------------------------------------------
class TestDriverIntegration:
    def test_fig1_repeat_served_from_store(self, tmp_path):
        from repro.experiments.fig1 import run_fig1

        kwargs = dict(lambdas=(0.001, 0.01), seeds_per_lambda=2, epochs=EPOCHS)
        with runtime_context(store=str(tmp_path / "runs")):
            rows1 = run_fig1(**kwargs)
            assert last_report().executed == 4
            rows2 = run_fig1(**kwargs)
            assert last_report().executed == 0
            assert last_report().store_hits == 4
        assert rows1 == rows2

    def test_run_wrappers_share_store_with_manifests(self, tmp_path):
        """A run_* wrapper's single search and the same config inside a
        manifest hit the same store record."""
        from repro.baselines import run_dance

        space = get_space("cifar10")
        estimator = get_estimator("cifar10")
        with runtime_context(store=str(tmp_path / "runs")):
            wrapped = run_dance(
                space, estimator, lambda_cost=0.003, seed=0, epochs=EPOCHS
            )
            assert last_report().executed == 1
            (from_manifest,) = dispatch_many(
                space, [dance_config(lambda_cost=0.003, seed=0, epochs=EPOCHS)]
            )
            assert last_report().store_hits == 1
        assert_results_identical(wrapped, from_manifest)

    def test_aggregate_report_sums_all_dispatches_in_scope(self, tmp_path):
        """Multi-dispatch drivers (table1 rounds) are summarized whole,
        not just by their final dispatch."""
        from repro.runtime import aggregate_report

        space = get_space("cifar10")
        with runtime_context(store=str(tmp_path / "runs")):
            dispatch_many(
                space, [dance_config(lambda_cost=0.003, seed=0, epochs=EPOCHS)]
            )
            dispatch_many(
                space,
                [
                    dance_config(lambda_cost=0.003, seed=0, epochs=EPOCHS),
                    dance_config(lambda_cost=0.004, seed=1, epochs=EPOCHS),
                ],
            )
            total = aggregate_report()
        assert total.requested == 3
        assert total.store_hits == 1  # the repeat inside dispatch two
        assert total.executed == 2 and total.stored == 2

    def test_cli_runs_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        store_dir = str(tmp_path / "runs")
        code = main([
            "search", "--method", "dance", "--epochs", str(EPOCHS),
            "--store", store_dir,
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "executed=1" in out
        code = main([
            "search", "--method", "dance", "--epochs", str(EPOCHS),
            "--store", store_dir,
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "hits=1 executed=0" in out

        assert main(["runs", "ls", "--store", store_dir]) == 0
        out = capsys.readouterr().out
        assert "DANCE" in out and "1 record(s)" in out
        assert main(["runs", "invalidate", "--all", "--store", store_dir]) == 0
        assert main(["runs", "gc", "--store", store_dir]) == 0
        assert main(["runs", "invalidate", "--store", store_dir]) == 2
