"""Tests for accelerator configuration, design space, area, and energy."""

import numpy as np
import pytest

from repro.accelerator import (
    AcceleratorConfig,
    DATAFLOWS,
    Dataflow,
    DesignSpace,
    area_mm2,
    default_energy_table,
)
from repro.accelerator.config import PE_COLS_RANGE, PE_ROWS_RANGE, RF_BYTES_OPTIONS

RNG = np.random.default_rng(6)


class TestConfig:
    def test_valid_config(self):
        cfg = AcceleratorConfig(16, 16, 128, Dataflow.RS)
        assert cfg.num_pes == 256
        assert cfg.rf_words == 64

    def test_bounds_match_paper(self):
        # Paper Sec 4.4: PE array from 12x8 to 20x24, RF 16B to 256B.
        assert PE_ROWS_RANGE[0] == 12 and PE_ROWS_RANGE[-1] == 20
        assert PE_COLS_RANGE[0] == 8 and PE_COLS_RANGE[-1] == 24
        assert RF_BYTES_OPTIONS[0] == 16 and RF_BYTES_OPTIONS[-1] == 256

    def test_rows_out_of_range_raises(self):
        with pytest.raises(ValueError):
            AcceleratorConfig(11, 16, 128, Dataflow.WS)
        with pytest.raises(ValueError):
            AcceleratorConfig(21, 16, 128, Dataflow.WS)

    def test_cols_out_of_range_raises(self):
        with pytest.raises(ValueError):
            AcceleratorConfig(16, 7, 128, Dataflow.WS)

    def test_invalid_rf_raises(self):
        with pytest.raises(ValueError):
            AcceleratorConfig(16, 16, 100, Dataflow.WS)

    def test_three_dataflows(self):
        assert len(DATAFLOWS) == 3
        assert {df.name for df in DATAFLOWS} == {"WS", "OS", "RS"}

    def test_str(self):
        cfg = AcceleratorConfig(12, 8, 16, Dataflow.OS)
        assert "12x8" in str(cfg) and "OS" in str(cfg)


class TestVectorEncoding:
    def test_roundtrip_all_corners(self):
        for rows in (12, 20):
            for cols in (8, 24):
                for rf in (16, 256):
                    for df in DATAFLOWS:
                        cfg = AcceleratorConfig(rows, cols, rf, df)
                        assert AcceleratorConfig.from_vector(cfg.to_vector()) == cfg

    def test_roundtrip_random(self):
        ds = DesignSpace()
        for _ in range(50):
            cfg = ds.sample(RNG)
            assert AcceleratorConfig.from_vector(cfg.to_vector()) == cfg

    def test_vector_in_unit_range(self):
        cfg = AcceleratorConfig(16, 16, 64, Dataflow.RS)
        vec = cfg.to_vector()
        assert vec.shape == (6,)
        assert np.all(vec >= 0) and np.all(vec <= 1)

    def test_from_vector_clips(self):
        vec = np.array([2.0, -1.0, 0.5, 1.0, 0.0, 0.0])
        cfg = AcceleratorConfig.from_vector(vec)
        assert cfg.pe_rows == 20 and cfg.pe_cols == 8

    def test_from_vector_wrong_dim_raises(self):
        with pytest.raises(ValueError):
            AcceleratorConfig.from_vector(np.zeros(4))

    def test_vector_dim(self):
        assert AcceleratorConfig.vector_dim() == 6


class TestDesignSpace:
    def test_size_is_2295(self):
        # 9 rows x 17 cols x 5 RF x 3 dataflows.
        assert len(DesignSpace()) == 9 * 17 * 5 * 3 == 2295

    def test_iteration_matches_len(self):
        ds = DesignSpace()
        assert sum(1 for _ in ds) == len(ds)

    def test_sample_is_valid(self):
        ds = DesignSpace()
        for _ in range(20):
            cfg = ds.sample(RNG)
            assert isinstance(cfg, AcceleratorConfig)

    def test_sample_many(self):
        assert len(DesignSpace().sample_many(7, RNG)) == 7


class TestArea:
    def test_more_pes_more_area(self):
        small = AcceleratorConfig(12, 8, 64, Dataflow.RS)
        large = AcceleratorConfig(20, 24, 64, Dataflow.RS)
        assert area_mm2(large) > area_mm2(small)

    def test_bigger_rf_more_area(self):
        lo = AcceleratorConfig(16, 16, 16, Dataflow.RS)
        hi = AcceleratorConfig(16, 16, 256, Dataflow.RS)
        assert area_mm2(hi) > area_mm2(lo)

    def test_dataflow_does_not_change_area(self):
        areas = {
            area_mm2(AcceleratorConfig(16, 16, 64, df)) for df in DATAFLOWS
        }
        assert len(areas) == 1

    def test_area_in_paper_range(self):
        # Paper Table 2 areas span ~1.86-2.53 mm^2; the model's full
        # design space should cover a comparable window.
        areas = [area_mm2(cfg) for cfg in DesignSpace()]
        assert min(areas) > 1.0
        assert max(areas) < 3.5


class TestEnergyTable:
    def test_relative_costs(self):
        table = default_energy_table()
        rf = table.rf_access_pj(64)
        assert table.dram_pj > table.buffer_pj > rf > 0
        # DRAM should dominate RF by ~2 orders of magnitude.
        assert table.dram_pj / rf > 50

    def test_rf_energy_grows_with_size(self):
        table = default_energy_table()
        assert table.rf_access_pj(256) > table.rf_access_pj(16)

    def test_deterministic(self):
        assert default_energy_table() == default_energy_table()
