"""Examples must at least parse and expose a main() entry point."""

import ast
import os

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


def example_files():
    return sorted(
        f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py")
    )


class TestExamples:
    def test_at_least_four_examples(self):
        assert len(example_files()) >= 4

    @pytest.mark.parametrize("name", example_files())
    def test_parses(self, name):
        with open(os.path.join(EXAMPLES_DIR, name)) as handle:
            tree = ast.parse(handle.read(), filename=name)
        functions = {n.name for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)}
        assert "main" in functions, f"{name} must define main()"

    @pytest.mark.parametrize("name", example_files())
    def test_has_module_docstring(self, name):
        with open(os.path.join(EXAMPLES_DIR, name)) as handle:
            tree = ast.parse(handle.read(), filename=name)
        assert ast.get_docstring(tree), f"{name} needs a docstring"

    @pytest.mark.parametrize("name", example_files())
    def test_imports_resolve(self, name):
        """Every repro.* import used by an example must exist."""
        import importlib

        with open(os.path.join(EXAMPLES_DIR, name)) as handle:
            tree = ast.parse(handle.read(), filename=name)
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module and node.module.startswith("repro"):
                module = importlib.import_module(node.module)
                for alias in node.names:
                    assert hasattr(module, alias.name), (
                        f"{name}: {node.module}.{alias.name} missing"
                    )
