"""Gradient-check tests for the elementwise and reduction ops."""

import numpy as np
import pytest

from repro.autodiff import Tensor, gradient_check, no_grad, ops

RNG = np.random.default_rng(0)


def make(shape, scale=1.0, shift=0.0):
    return Tensor(RNG.standard_normal(shape) * scale + shift, requires_grad=True)


class TestArithmetic:
    def test_add(self):
        a, b = make((3, 4)), make((3, 4))
        gradient_check(lambda a, b: (a + b).sum(), [a, b])

    def test_add_broadcast(self):
        a, b = make((3, 4)), make((4,))
        gradient_check(lambda a, b: (a + b).sum(), [a, b])

    def test_add_scalar_broadcast(self):
        a, b = make((2, 3, 4)), make((1, 1))
        gradient_check(lambda a, b: (a + b).sum(), [a, b])

    def test_sub(self):
        a, b = make((5,)), make((5,))
        gradient_check(lambda a, b: (a - b).sum(), [a, b])

    def test_rsub(self):
        a = make((5,))
        gradient_check(lambda a: (3.0 - a).sum(), [a])

    def test_mul(self):
        a, b = make((3, 3)), make((3, 3))
        gradient_check(lambda a, b: (a * b).sum(), [a, b])

    def test_mul_broadcast(self):
        a, b = make((2, 3)), make((3,))
        gradient_check(lambda a, b: (a * b).sum(), [a, b])

    def test_div(self):
        a, b = make((4,)), make((4,), shift=3.0)
        gradient_check(lambda a, b: (a / b).sum(), [a, b])

    def test_rdiv(self):
        a = make((4,), shift=3.0)
        gradient_check(lambda a: (2.0 / a).sum(), [a])

    def test_neg(self):
        a = make((3,))
        gradient_check(lambda a: (-a).sum(), [a])

    def test_pow(self):
        a = make((4,), shift=2.0)
        gradient_check(lambda a: (a**3).sum(), [a])

    def test_chained_expression(self):
        a, b = make((3,)), make((3,))
        gradient_check(lambda a, b: ((a * b + a) / (b * b + 2.0)).sum(), [a, b])

    def test_reused_tensor_accumulates(self):
        a = make((3,))
        gradient_check(lambda a: (a * a + a * 2.0).sum(), [a])


class TestUnary:
    def test_exp(self):
        a = make((3, 2), scale=0.5)
        gradient_check(lambda a: a.exp().sum(), [a])

    def test_log(self):
        a = make((4,), shift=3.0)
        gradient_check(lambda a: a.log().sum(), [a])

    def test_sqrt(self):
        a = make((4,), shift=3.0)
        gradient_check(lambda a: a.sqrt().sum(), [a])

    def test_abs(self):
        a = Tensor([1.5, -2.5, 3.0], requires_grad=True)
        gradient_check(lambda a: a.abs().sum(), [a])

    def test_clip(self):
        a = Tensor([-2.0, -0.5, 0.5, 2.0], requires_grad=True)
        gradient_check(lambda a: a.clip(-1.0, 1.0).sum(), [a])

    def test_sigmoid(self):
        a = make((3, 3))
        gradient_check(lambda a: a.sigmoid().sum(), [a])

    def test_tanh(self):
        a = make((3, 3))
        gradient_check(lambda a: a.tanh().sum(), [a])

    def test_relu(self):
        a = Tensor([-1.0, 0.5, 2.0], requires_grad=True)
        gradient_check(lambda a: a.relu().sum(), [a])

    def test_relu6(self):
        a = Tensor([-1.0, 0.5, 5.0, 7.0], requires_grad=True)
        gradient_check(lambda a: ops.relu6(a).sum(), [a])

    def test_leaky_relu(self):
        a = Tensor([-1.0, 0.5, 2.0], requires_grad=True)
        gradient_check(lambda a: ops.leaky_relu(a, 0.1).sum(), [a])


class TestMinMax:
    def test_maximum_scalar(self):
        a = Tensor([-1.0, 0.5, 2.0], requires_grad=True)
        gradient_check(lambda a: ops.maximum(a, 0.0).sum(), [a])

    def test_maximum_tensors(self):
        a = Tensor([1.0, 5.0, -2.0], requires_grad=True)
        b = Tensor([2.0, 1.0, -3.0], requires_grad=True)
        gradient_check(lambda a, b: ops.maximum(a, b).sum(), [a, b])

    def test_minimum_tensors(self):
        a = Tensor([1.0, 5.0, -2.0], requires_grad=True)
        b = Tensor([2.0, 1.0, -3.0], requires_grad=True)
        gradient_check(lambda a, b: ops.minimum(a, b).sum(), [a, b])

    def test_max_reduction_all(self):
        a = Tensor([[1.0, 5.0], [3.0, -2.0]], requires_grad=True)
        gradient_check(lambda a: a.max(), [a])

    def test_max_reduction_axis(self):
        a = Tensor([[1.0, 5.0], [3.0, -2.0]], requires_grad=True)
        gradient_check(lambda a: a.max(axis=1).sum(), [a])

    def test_min_reduction_axis(self):
        a = Tensor([[1.0, 5.0], [3.0, -2.0]], requires_grad=True)
        gradient_check(lambda a: a.min(axis=0).sum(), [a])


class TestReductions:
    def test_sum_all(self):
        a = make((2, 3, 4))
        gradient_check(lambda a: a.sum(), [a])

    def test_sum_axis(self):
        a = make((2, 3, 4))
        gradient_check(lambda a: a.sum(axis=1).sum(), [a])

    def test_sum_axis_keepdims(self):
        a = make((2, 3))
        gradient_check(lambda a: a.sum(axis=0, keepdims=True).sum(), [a])

    def test_sum_negative_axis(self):
        a = make((2, 3))
        gradient_check(lambda a: a.sum(axis=-1).sum(), [a])

    def test_mean_all(self):
        a = make((3, 4))
        gradient_check(lambda a: a.mean(), [a])

    def test_mean_axis(self):
        a = make((3, 4))
        gradient_check(lambda a: a.mean(axis=0).sum(), [a])

    def test_mean_tuple_axis(self):
        a = make((2, 3, 4))
        gradient_check(lambda a: a.mean(axis=(1, 2)).sum(), [a])


class TestShapeOps:
    def test_reshape(self):
        a = make((2, 6))
        gradient_check(lambda a: (a.reshape(3, 4) * 2.0).sum(), [a])

    def test_transpose_default(self):
        a = make((2, 3))
        w = RNG.standard_normal((3, 2))
        gradient_check(lambda a: (a.T * w).sum(), [a])

    def test_transpose_axes(self):
        a = make((2, 3, 4))
        gradient_check(lambda a: a.transpose((2, 0, 1)).sum(), [a])

    def test_concat(self):
        a, b = make((2, 3)), make((2, 2))
        gradient_check(lambda a, b: (ops.concat([a, b], axis=1) ** 2).sum(), [a, b])

    def test_stack(self):
        a, b = make((3,)), make((3,))
        gradient_check(lambda a, b: (ops.stack([a, b]) ** 2).sum(), [a, b])

    def test_getitem_row(self):
        a = make((4, 3))
        gradient_check(lambda a: a[1].sum(), [a])

    def test_getitem_fancy(self):
        a = make((4, 3))
        idx = (np.array([0, 1, 1]), np.array([2, 0, 0]))
        gradient_check(lambda a: (a[idx] ** 2).sum(), [a])

    def test_pad2d(self):
        a = make((1, 2, 3, 3))
        gradient_check(lambda a: (ops.pad2d(a, 1) ** 2).sum(), [a])


class TestMatmul:
    def test_2d(self):
        a, b = make((3, 4)), make((4, 2))
        gradient_check(lambda a, b: (a @ b).sum(), [a, b])

    def test_vec_mat(self):
        a, b = make((4,)), make((4, 2))
        gradient_check(lambda a, b: (a @ b).sum(), [a, b])

    def test_mat_vec(self):
        a, b = make((3, 4)), make((4,))
        gradient_check(lambda a, b: (a @ b).sum(), [a, b])

    def test_batched(self):
        a, b = make((2, 3, 4)), make((2, 4, 2))
        gradient_check(lambda a, b: (a @ b).sum(), [a, b])

    def test_batched_broadcast(self):
        a, b = make((2, 3, 4)), make((4, 2))
        gradient_check(lambda a, b: (a @ b).sum(), [a, b])


class TestSoftmax:
    def test_softmax_rows(self):
        a = make((3, 5))
        w = RNG.standard_normal((3, 5))
        gradient_check(lambda a: (a.softmax(axis=-1) * w).sum(), [a])

    def test_softmax_sums_to_one(self):
        a = make((4, 7))
        s = a.softmax(axis=-1)
        np.testing.assert_allclose(s.data.sum(axis=-1), np.ones(4), atol=1e-12)

    def test_log_softmax(self):
        a = make((3, 5))
        w = RNG.standard_normal((3, 5))
        gradient_check(lambda a: (a.log_softmax(axis=-1) * w).sum(), [a])

    def test_log_softmax_matches_log_of_softmax(self):
        a = make((2, 6))
        np.testing.assert_allclose(
            a.log_softmax().data, np.log(a.softmax().data), atol=1e-12
        )

    def test_softmax_stability_large_values(self):
        a = Tensor([[1000.0, 1000.1, 999.9]], requires_grad=True)
        s = a.softmax()
        assert np.all(np.isfinite(s.data))


class TestGraphSemantics:
    def test_no_grad_blocks_graph(self):
        a = make((3,))
        with no_grad():
            out = (a * 2.0).sum()
        assert not out.requires_grad

    def test_detach_cuts_graph(self):
        a = make((3,))
        out = (a.detach() * 2.0).sum()
        assert not out.requires_grad

    def test_backward_accumulates_over_calls(self):
        a = make((3,))
        (a * 2.0).sum().backward()
        first = a.grad.copy()
        (a * 2.0).sum().backward()
        np.testing.assert_allclose(a.grad, 2.0 * first)

    def test_backward_requires_scalar(self):
        a = make((3,))
        with pytest.raises(RuntimeError):
            (a * 2.0).backward()

    def test_backward_on_non_grad_tensor_raises(self):
        a = Tensor([1.0, 2.0])
        with pytest.raises(RuntimeError):
            a.sum().backward()

    def test_diamond_graph(self):
        a = make((3,))

        def fn(a):
            b = a * 2.0
            return (b * b + b).sum()

        gradient_check(fn, [a])

    def test_interior_nodes_do_not_retain_grad(self):
        a = make((3,))
        b = a * 2.0
        c = b.sum()
        c.backward()
        assert b.grad is None
        assert a.grad is not None

    def test_zero_grad(self):
        a = make((3,))
        (a * 1.0).sum().backward()
        a.zero_grad()
        assert a.grad is None
