"""Integration tests: full-fidelity co-exploration with a real supernet."""

import numpy as np
import pytest

from repro import nn
from repro.arch import build_network_module
from repro.arch.space import SearchSpace
from repro.autodiff import Tensor
from repro.core import CoExplorer, ConstraintSet, SearchConfig
from repro.data import cifar10_like
from repro.estimator import pretrain_estimator


def tiny_space():
    """Reduced space with paper-scale cost widths but tiny train widths."""
    return SearchSpace(
        name="cifar10",  # reuse cifar cost calibration
        input_size=32,
        train_input_size=8,
        num_classes=10,
        stem_channels=40,
        train_stem_channels=4,
        stage_plan=[(40, 4, 2, 1), (80, 6, 2, 2)],
    )


@pytest.fixture(scope="module")
def env():
    space = tiny_space()
    estimator = pretrain_estimator(space, n_samples=1500, epochs=40, seed=0)
    dataset = cifar10_like(n_samples=200, size=space.train_input_size, seed=0)
    return space, estimator, dataset


class TestFullFidelity:
    def test_search_completes(self, env):
        space, estimator, dataset = env
        config = SearchConfig(
            fidelity="full", epochs=4, w_steps_per_epoch=2, batch_size=16, seed=0,
        )
        result = CoExplorer(space, estimator, config, dataset=dataset).search()
        assert len(result.history) == 4
        assert result.metrics.latency_ms > 0

    def test_supernet_weights_update(self, env):
        space, estimator, dataset = env
        config = SearchConfig(
            fidelity="full", epochs=2, w_steps_per_epoch=2, batch_size=16, seed=1,
        )
        explorer = CoExplorer(space, estimator, config, dataset=dataset)
        before = explorer.supernet.stem.conv.weight.data.copy()
        explorer.search()
        after = explorer.supernet.stem.conv.weight.data
        assert not np.allclose(before, after)

    def test_alpha_updates(self, env):
        space, estimator, dataset = env
        config = SearchConfig(
            fidelity="full", epochs=3, w_steps_per_epoch=1, batch_size=16, seed=2,
        )
        explorer = CoExplorer(space, estimator, config, dataset=dataset)
        explorer.search()
        assert np.any(explorer.alpha.data != 0)

    def test_constrained_full_fidelity(self, env):
        space, estimator, dataset = env
        config = SearchConfig(
            fidelity="full",
            constraints=ConstraintSet.latency(30.0),
            epochs=6,
            w_steps_per_epoch=1,
            batch_size=16,
            seed=0,
        )
        result = CoExplorer(space, estimator, config, dataset=dataset).search()
        # The mechanism ran; ground truth is checked (not asserted tight
        # here since the tiny run length limits convergence).
        assert isinstance(result.in_constraint, bool)

    def test_final_network_trains_from_scratch(self, env):
        space, estimator, dataset = env
        config = SearchConfig(
            fidelity="full", epochs=2, w_steps_per_epoch=1, batch_size=16, seed=3,
        )
        result = CoExplorer(space, estimator, config, dataset=dataset).search()
        model = build_network_module(result.arch, seed=0)
        opt = nn.Adam(model.parameters(), lr=0.01)
        images = dataset.images[:64]
        labels = dataset.labels[:64]
        first_loss = None
        for _ in range(10):
            opt.zero_grad()
            loss = nn.cross_entropy(model(Tensor(images)), labels)
            if first_loss is None:
                first_loss = loss.item()
            loss.backward()
            opt.step()
        assert loss.item() < first_loss
