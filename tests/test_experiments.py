"""Smoke tests for the experiment drivers (reduced settings).

The heavy shape assertions live in ``benchmarks/``; these only check
the drivers produce well-formed rows and renderable output quickly.
"""

import numpy as np
import pytest

from repro.experiments import common
from repro.experiments.common import ascii_scatter, format_table, get_space
from repro.experiments.fig1 import Fig1Row, render_fig1
from repro.experiments.fig4 import run_fig4, render_fig4
from repro.experiments.table1 import Table1Row, render_table1
from repro.experiments.fig5 import run_fig5, render_fig5


class TestCommon:
    def test_get_space_memoized(self):
        assert get_space("cifar10") is get_space("cifar10")
        assert get_space("imagenet").name == "imagenet"

    def test_estimator_cached_in_process(self):
        a = common.get_estimator("cifar10")
        b = common.get_estimator("cifar10")
        assert a is b
        assert a.frozen

    def test_estimator_disk_cache_roundtrip(self):
        import os

        path = common._cache_path("cifar10")
        assert os.path.exists(path)
        # Force a reload from disk and verify identical predictions.
        common._ESTIMATORS.pop(("cifar10", "eyeriss", 0, None, None))
        reloaded = common.get_estimator("cifar10")
        feats = np.zeros((1, reloaded.mlp.in_proj.in_features))
        first = reloaded.predict_numpy(feats)
        common._ESTIMATORS[("cifar10", "eyeriss", 0, None, None)] = reloaded
        assert np.all(np.isfinite(first))

    def test_format_table(self):
        text = format_table(["a", "bb"], [[1, 2], [30, 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty_rows(self):
        text = format_table(["x"], [])
        assert "x" in text

    def test_ascii_scatter(self):
        text = ascii_scatter([1, 2, 3], [1, 4, 9], ["a", "b", "c"], width=20, height=5)
        assert "a" in text and "c" in text

    def test_ascii_scatter_empty(self):
        assert ascii_scatter([], [], []) == "(no data)"

    def test_ascii_scatter_degenerate_range(self):
        text = ascii_scatter([1, 1], [2, 2], ["x", "x"], width=10, height=4)
        assert "x" in text


class TestRenderers:
    def test_render_fig1(self):
        rows = [
            Fig1Row(0.001, s, 30.0 + s, 10.0, 4.5 + 0.1 * s) for s in range(3)
        ] + [Fig1Row(0.005, s, 20.0 - s, 7.0, 5.0) for s in range(3)]
        text = render_fig1(rows)
        assert "lambda" in text
        assert "0.001" in text and "0.005" in text

    def test_render_table1(self):
        rows = [
            Table1Row("DANCE", False, True, 5.2, 9.6, 5.4, 1.0),
            Table1Row("HDX", True, True, 1.0, 2.0, 4.9, 1.0),
        ]
        text = render_table1(rows)
        assert "HDX" in text and "5.2" in text


class TestFastDrivers:
    """Drivers that are cheap enough to smoke-test directly."""

    def test_fig4_reduced(self):
        curves = run_fig4(epochs=30, seed=0)
        assert len(curves) == 3
        for curve in curves:
            assert len(curve.epochs) == 30
        assert "Fig. 4" in render_fig4(curves)

    def test_fig5_reduced(self):
        solutions = run_fig5(epochs=60, seed=0)
        assert len(solutions) == 2
        text = render_fig5(solutions)
        assert "60 FPS" in text and "Accelerator" in text
