"""Tests for the synthetic dataset substrate."""

import numpy as np
import pytest

from repro import nn
from repro.autodiff import Tensor
from repro.data import (
    DataLoader,
    RandomAugment,
    cifar10_like,
    imagenet_like,
    train_val_split,
)


class TestGenerators:
    def test_cifar_shapes(self):
        ds = cifar10_like(n_samples=100, size=16)
        assert ds.images.shape == (100, 3, 16, 16)
        assert ds.labels.shape == (100,)
        assert ds.num_classes == 10

    def test_imagenet_shapes(self):
        ds = imagenet_like(n_samples=50, size=24, num_classes=20)
        assert ds.images.shape == (50, 3, 24, 24)
        assert ds.num_classes == 20

    def test_deterministic_by_seed(self):
        a = cifar10_like(n_samples=20, seed=7)
        b = cifar10_like(n_samples=20, seed=7)
        np.testing.assert_array_equal(a.images, b.images)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_different_seeds_differ(self):
        a = cifar10_like(n_samples=20, seed=1)
        b = cifar10_like(n_samples=20, seed=2)
        assert not np.array_equal(a.images, b.images)

    def test_standardized(self):
        ds = cifar10_like(n_samples=500)
        assert abs(ds.images.mean()) < 1e-8
        assert ds.images.std() == pytest.approx(1.0, abs=1e-6)

    def test_all_classes_present(self):
        ds = cifar10_like(n_samples=500)
        assert set(np.unique(ds.labels)) == set(range(10))

    def test_mismatched_lengths_raise(self):
        from repro.data import SyntheticImageDataset

        with pytest.raises(ValueError):
            SyntheticImageDataset(np.zeros((3, 1, 2, 2)), np.zeros(2, dtype=int), 2)

    def test_subset(self):
        ds = cifar10_like(n_samples=30)
        sub = ds.subset(np.arange(5))
        assert len(sub) == 5
        np.testing.assert_array_equal(sub.images, ds.images[:5])


class TestSplitAndLoader:
    def test_split_sizes(self):
        ds = cifar10_like(n_samples=100)
        train, val = train_val_split(ds, val_fraction=0.3)
        assert len(train) == 70 and len(val) == 30

    def test_split_disjoint(self):
        ds = cifar10_like(n_samples=60)
        train, val = train_val_split(ds, val_fraction=0.5, seed=3)
        # Fingerprint rows to confirm disjointness.
        train_keys = {img.tobytes() for img in train.images}
        val_keys = {img.tobytes() for img in val.images}
        assert not train_keys & val_keys

    def test_split_invalid_fraction(self):
        ds = cifar10_like(n_samples=10)
        with pytest.raises(ValueError):
            train_val_split(ds, val_fraction=1.5)

    def test_loader_batches(self):
        ds = cifar10_like(n_samples=50)
        loader = DataLoader(ds, batch_size=16, shuffle=False)
        batches = list(loader)
        assert len(batches) == 4
        assert batches[0][0].shape == (16, 3, 16, 16)
        assert batches[-1][0].shape == (2, 3, 16, 16)

    def test_loader_drop_last(self):
        ds = cifar10_like(n_samples=50)
        loader = DataLoader(ds, batch_size=16, drop_last=True)
        assert len(list(loader)) == 3
        assert len(loader) == 3

    def test_loader_covers_all_samples(self):
        ds = cifar10_like(n_samples=40)
        loader = DataLoader(ds, batch_size=7, shuffle=True, seed=5)
        seen = sum(len(labels) for _, labels in loader)
        assert seen == 40

    def test_loader_invalid_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(cifar10_like(n_samples=5), batch_size=0)


class TestAugmentation:
    def test_preserves_shape(self):
        ds = cifar10_like(n_samples=8)
        aug = RandomAugment(seed=0)
        out = aug(ds.images)
        assert out.shape == ds.images.shape

    def test_does_not_mutate_input(self):
        ds = cifar10_like(n_samples=8)
        original = ds.images.copy()
        RandomAugment(seed=0)(ds.images)
        np.testing.assert_array_equal(ds.images, original)

    def test_cutout_zeroes_region(self):
        images = np.ones((4, 3, 16, 16))
        aug = RandomAugment(flip_prob=0, max_shift=0, cutout_prob=1.0, brightness=0, seed=1)
        out = aug(images)
        assert (out == 0).any()

    def test_identity_config_is_noop(self):
        images = np.random.default_rng(0).standard_normal((4, 3, 8, 8))
        aug = RandomAugment(flip_prob=0, max_shift=0, cutout_size=0, brightness=0)
        np.testing.assert_array_equal(aug(images), images)


class TestLearnability:
    def test_convnet_beats_chance(self):
        """A small convnet must learn the synthetic task well above chance."""
        ds = cifar10_like(n_samples=400, size=12, noise=0.4, seed=0)
        rng = np.random.default_rng(0)
        model = nn.Sequential(
            nn.Conv2d(3, 12, 3, padding=1, rng=rng),
            nn.ReLU(),
            nn.AvgPool2d(2),
            nn.Conv2d(12, 16, 3, padding=1, rng=rng),
            nn.ReLU(),
            nn.GlobalAvgPool2d(),
            nn.Linear(16, 10, rng=rng),
        )
        opt = nn.Adam(model.parameters(), lr=0.01)
        loader = DataLoader(ds, batch_size=64, seed=0)
        for _ in range(6):
            for images, labels in loader:
                opt.zero_grad()
                nn.cross_entropy(model(Tensor(images)), labels).backward()
                opt.step()
        # Evaluate on the training distribution.
        acc = nn.accuracy(model(Tensor(ds.images[:200])), ds.labels[:200])
        assert acc > 0.5  # chance is 0.1
