"""Tests for the workload layer (``repro/workload.py``).

Covers the five workload contracts:

* the **registry** round-trips (register/get/unregister), validates
  its entries, and fails unregistered lookups with an error naming the
  registry — never a silent CIFAR-10 fallback;
* the two **legacy workloads** reproduce the seed bitwise: golden run
  keys, cost normalization quotients, surrogate calibration constants,
  estimator cache filenames, and a pinned search;
* the **fleet/scheduler** treat the workload as structure (only
  same-workload runs batch; a workload/space mismatch is refused up
  front);
* the **new workloads** are searchable end to end and their results
  serialize/deserialize through the registry;
* the **campaign driver** validates its grid, executes through the run
  store, and dedupes an unchanged re-run to zero executed searches.
"""

import dataclasses

import numpy as np
import pytest

from repro.arch import NetworkArch, SearchSpace, cifar100_space, speech_space
from repro.arch.space import cifar_space
from repro.core import ConstraintSet, CoExplorer, SearchConfig, run_many
from repro.core.coexplore import resolve_workload
from repro.core.fleet import _structure_key
from repro.baselines import dance_config, hdx_config
from repro.estimator import pretrain_estimator
from repro.experiments.campaign import (
    build_scenarios,
    plan_campaign,
    render_campaign,
    render_plan,
    run_campaign,
)
from repro.experiments.common import _cache_path, get_estimator, get_space
from repro.runtime import dispatch_many, run_key, runtime_context
from repro.serialize import result_from_dict, result_to_dict, space_by_name
from repro.surrogate import AccuracySurrogate
from repro.workload import (
    Workload,
    as_workload,
    available_workloads,
    cost_normalization,
    get_workload,
    register_workload,
    unregister_workload,
    workload_calibration,
)

FP = "f" * 16

#: The seed's surrogate calibration constants, pinned verbatim — the
#: registry entries must carry exactly these values or the legacy
#: workloads stop reproducing bitwise.
LEGACY_CALIBRATION = {
    "cifar10": dict(err_floor=3.8, err_spread=4.5, cap_frac=0.55, cap_scale=0.18,
                    loss_scale=0.145, loss_bias=0.03, noise_std=0.10),
    "imagenet": dict(err_floor=23.8, err_spread=10.0, cap_frac=0.55, cap_scale=0.18,
                     loss_scale=0.080, loss_bias=0.00, noise_std=0.15),
}


def _tiny_workload(name: str = "wl-test") -> Workload:
    def factory() -> SearchSpace:
        return SearchSpace(
            name=name,
            input_size=16,
            train_input_size=8,
            num_classes=4,
            stem_channels=16,
            train_stem_channels=4,
            stage_plan=[(16, 4, 2, 1), (32, 6, 1, 2)],
        )

    return Workload(
        name=name,
        space_factory=factory,
        typical_cost=1.0,
        calibration=dict(LEGACY_CALIBRATION["cifar10"]),
        constraint_presets={"default": {"latency": 5.0}},
    )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_builtins_registered(self):
        assert available_workloads() == ["cifar10", "cifar100", "imagenet", "speech"]

    def test_unknown_lookup_names_registry(self):
        with pytest.raises(ValueError, match="unregistered workload") as err:
            get_workload("mnist")
        assert "register_workload" in str(err.value)
        assert "cifar10" in str(err.value)

    def test_register_get_unregister_roundtrip(self):
        workload = _tiny_workload()
        try:
            register_workload(workload)
            assert get_workload("wl-test") is workload
            assert "wl-test" in available_workloads()
            with pytest.raises(ValueError, match="already registered"):
                register_workload(_tiny_workload())
            register_workload(_tiny_workload(), replace=True)
        finally:
            unregister_workload("wl-test")
        assert "wl-test" not in available_workloads()

    def test_replace_serves_replacement_space(self):
        first = _tiny_workload()
        try:
            register_workload(first)
            original_space = get_workload("wl-test").space()
            replacement = _tiny_workload()
            register_workload(replacement, replace=True)
            replaced_space = get_workload("wl-test").space()
            # The name-keyed lookup must reach the *replacement's* own
            # memoized space, never the evicted instance's.
            assert replaced_space is not original_space
            assert replaced_space is replacement.space()
            # Same-named instances never alias each other's spaces.
            assert first.space() is original_space
        finally:
            unregister_workload("wl-test")

    def test_as_workload_resolutions(self):
        assert as_workload(None).name == "cifar10"
        assert as_workload("speech").name == "speech"
        assert as_workload(get_workload("imagenet")).name == "imagenet"
        assert as_workload(get_space("cifar100")).name == "cifar100"

    def test_space_memoized_and_shared_with_get_space(self):
        workload = get_workload("cifar10")
        assert workload.space() is workload.space()
        assert get_space("cifar10") is workload.space()
        assert space_by_name("cifar10") is workload.space()

    def test_space_factory_name_mismatch_raises(self):
        bad = Workload(
            name="wl-misnamed",
            space_factory=cifar_space,  # produces a space named "cifar10"
            typical_cost=1.0,
            calibration=dict(LEGACY_CALIBRATION["cifar10"]),
            constraint_presets={"default": {"latency": 5.0}},
        )
        with pytest.raises(ValueError, match="names must match"):
            bad.space()

    def test_entry_validation(self):
        with pytest.raises(ValueError, match="typical_cost"):
            dataclasses.replace(_tiny_workload(), typical_cost=0.0)
        with pytest.raises(ValueError, match="calibration missing"):
            dataclasses.replace(_tiny_workload(), calibration={"err_floor": 1.0})
        with pytest.raises(ValueError, match="'default' constraint preset"):
            dataclasses.replace(_tiny_workload(), constraint_presets={})

    def test_constraint_presets(self):
        workload = get_workload("cifar10")
        preset = workload.constraint_preset()
        assert isinstance(preset, ConstraintSet)
        assert [(c.metric, c.bound) for c in preset] == [("latency", 33.3)]
        with pytest.raises(ValueError, match="no constraint preset"):
            workload.constraint_preset("nonsense")


# ----------------------------------------------------------------------
# Legacy bitwise parity
# ----------------------------------------------------------------------
class TestLegacyParity:
    def test_golden_run_key_unchanged(self):
        # Identical literal to tests/test_runtime.py: the workload layer
        # must not move a single byte of the legacy key payload.
        assert (
            run_key(SearchConfig(), space="cifar10", estimator_fingerprint=FP)
            == "19dca7f2468fd47433c926f0d33c11d8d23a407774b57b896a920a060882dc39"
        )

    def test_explicit_workload_normalizes_to_derived_key(self):
        derived = run_key(SearchConfig(), space="cifar10", estimator_fingerprint=FP)
        explicit = run_key(
            SearchConfig(workload="cifar10"), space="cifar10",
            estimator_fingerprint=FP,
        )
        assert explicit == derived
        foreign = run_key(
            SearchConfig(workload="speech"), space="cifar10",
            estimator_fingerprint=FP,
        )
        assert foreign != derived

    def test_cost_normalization_quotients(self):
        # Exactly the old TYPICAL_COST arithmetic: 8.0/8.0 and 8.0/30.0.
        assert cost_normalization("cifar10") == 1.0
        assert cost_normalization("imagenet") == 8.0 / 30.0
        with pytest.raises(ValueError, match="unregistered workload"):
            cost_normalization("unregistered-space")

    def test_calibration_constants_pinned(self):
        for name, expected in LEGACY_CALIBRATION.items():
            assert dict(workload_calibration(name)) == expected

    def test_estimator_cache_filenames_unchanged(self):
        assert _cache_path("cifar10").endswith("estimator_cifar10.npz")
        assert _cache_path("imagenet").endswith("estimator_imagenet.npz")
        assert _cache_path("cifar10", "edge", 0).endswith(
            "estimator_cifar10_edge_s0.npz"
        )
        # New workloads slot into the same scheme, no collisions.
        assert _cache_path("speech").endswith("estimator_speech.npz")

    def test_surrogate_rejects_unregistered_space(self):
        space = SearchSpace(
            name="not-a-workload", input_size=16, train_input_size=8,
            num_classes=4, stem_channels=16, train_stem_channels=4,
            stage_plan=[(16, 4, 2, 1)],
        )
        with pytest.raises(ValueError, match="unregistered workload"):
            AccuracySurrogate(space)
        # Explicit calibration is the escape hatch for ad-hoc spaces.
        surrogate = AccuracySurrogate(
            space, calibration=LEGACY_CALIBRATION["cifar10"]
        )
        arch = NetworkArch.random(space, np.random.default_rng(0))
        assert surrogate.error_of(arch) > 0

    def test_legacy_datasets_reproduce_bitwise(self):
        from repro.data import cifar10_like, imagenet_like

        legacy = cifar10_like(n_samples=40)
        via_workload = get_workload("cifar10").dataset(n_samples=40)
        assert np.array_equal(legacy.images, via_workload.images)
        assert np.array_equal(legacy.labels, via_workload.labels)
        legacy = imagenet_like(n_samples=40)
        via_workload = get_workload("imagenet").dataset(n_samples=40)
        assert np.array_equal(legacy.images, via_workload.images)
        assert np.array_equal(legacy.labels, via_workload.labels)

    def test_pinned_search_matches_explicit_legacy_setup(self):
        """One small search through the registry-resolved surrogate must
        equal the same search with the legacy constants wired by hand
        (the pre-workload-layer construction)."""
        space = get_space("cifar10")
        estimator = get_estimator("cifar10")
        config = hdx_config(
            ConstraintSet.latency(33.3), lambda_cost=0.002, seed=3, epochs=8
        )
        via_registry = CoExplorer(space, estimator, config).search()
        legacy_surrogate = AccuracySurrogate(
            space, seed=0, calibration=LEGACY_CALIBRATION["cifar10"]
        )
        by_hand = CoExplorer(
            space, estimator, config, surrogate=legacy_surrogate
        ).search()
        assert via_registry.arch == by_hand.arch
        assert via_registry.config == by_hand.config
        assert via_registry.metrics == by_hand.metrics
        assert via_registry.error_percent == by_hand.error_percent
        assert via_registry.history == by_hand.history


# ----------------------------------------------------------------------
# Fleet batching / scheduler validation
# ----------------------------------------------------------------------
class TestWorkloadStructure:
    def test_structure_key_separates_workloads(self):
        a = dance_config(seed=0, epochs=4, workload="cifar10")
        b = dance_config(seed=1, epochs=4, workload="speech")
        c = dance_config(seed=2, epochs=4)  # derived
        assert _structure_key(a) != _structure_key(b)
        assert _structure_key(a) != _structure_key(c)
        assert _structure_key(c) == _structure_key(dance_config(seed=9, epochs=4))

    def test_resolve_workload_mismatch_raises(self):
        space = get_space("cifar10")
        with pytest.raises(ValueError, match="workload 'speech'"):
            resolve_workload(space, dance_config(epochs=4, workload="speech"))

    def test_scheduler_refuses_mismatched_manifest(self):
        space = get_space("cifar10")
        with pytest.raises(ValueError, match="workload 'speech'"):
            dispatch_many(space, [dance_config(epochs=4, workload="speech")])

    def test_explicit_workload_bitwise_equals_derived(self):
        space = get_space("cifar10")
        estimator = get_estimator("cifar10")
        (explicit,) = run_many(
            space, estimator,
            [dance_config(lambda_cost=0.003, seed=0, epochs=8, workload="cifar10")],
        )
        (derived,) = run_many(
            space, estimator, [dance_config(lambda_cost=0.003, seed=0, epochs=8)]
        )
        assert explicit.arch == derived.arch
        assert explicit.metrics == derived.metrics
        assert explicit.history == derived.history


# ----------------------------------------------------------------------
# New workloads, end to end
# ----------------------------------------------------------------------
class TestNewWorkloads:
    def test_new_space_layouts(self):
        cifar100 = cifar100_space()
        assert (cifar100.num_layers, cifar100.num_classes) == (20, 100)
        speech = speech_space()
        assert (speech.num_layers, speech.num_classes) == (12, 12)
        assert speech.input_size == 24
        # The layouts must actually differ from the legacy spaces.
        legacy = cifar_space()
        assert cifar100.candidate_counts() != legacy.candidate_counts()
        assert speech.num_layers != legacy.num_layers

    def test_new_workload_datasets(self):
        for name in ("cifar100", "speech"):
            workload = get_workload(name)
            data = workload.dataset(n_samples=30)
            space = workload.space()
            assert data.num_classes == space.num_classes
            assert data.image_shape == (3, space.train_input_size,
                                        space.train_input_size)
            assert data.name == f"{name}-like"

    @pytest.mark.parametrize(
        "name,platform", [("cifar100", "eyeriss"), ("speech", "edge")]
    )
    def test_search_and_serialize_end_to_end(self, name, platform):
        workload = get_workload(name)
        space = workload.space()
        estimator = pretrain_estimator(
            space, n_samples=400, epochs=10, seed=0, platform=platform
        )
        constraints = workload.constraint_preset("default")
        (result,) = run_many(
            space, estimator,
            [hdx_config(constraints, seed=0, epochs=6, platform=platform,
                        workload=name)],
        )
        assert result.arch.space.name == name
        assert result.platform == platform
        assert result.metrics.latency_ms > 0
        restored = result_from_dict(result_to_dict(result))
        assert restored.arch == result.arch
        assert restored.config == result.config
        assert restored.metrics == result.metrics
        assert restored.history == result.history


# ----------------------------------------------------------------------
# Method metadata (single source: baselines.methods.METHODS)
# ----------------------------------------------------------------------
class TestMethodMetadata:
    def test_single_source_and_cli_spellings(self):
        from repro.baselines import GPU_HOURS_PER_SEARCH, METHODS, method_info

        # The legacy dict is a derived view, never a second copy.
        assert GPU_HOURS_PER_SEARCH == {
            name: info.gpu_hours_per_search for name, info in METHODS.items()
        }
        assert method_info("hdx") is method_info("HDX")
        assert method_info("dance-soft").name == "DANCE+Soft"
        assert method_info("NAS->HW").needs_hw_phase
        with pytest.raises(ValueError, match="unknown method"):
            method_info("sgd")

    def test_meta_search_gpu_hours_accept_cli_spelling(self):
        from repro.baselines import MetaSearch
        from repro.baselines.meta_search import _TunerState

        def fake(metrics_latency):
            from repro.accelerator import HardwareMetrics
            from repro.core.result import SearchResult

            return SearchResult(
                arch=None, config=None,
                metrics=HardwareMetrics(metrics_latency, 1.0, 1.0),
                error_percent=5.0, loss_nas=0.6, cost=1.0,
                constraints=ConstraintSet(), in_constraint=True,
                history=[], method="hdx", platform="eyeriss",
            )

        meta = MetaSearch("hdx", None, "latency", 10.0, 0.1)
        state = _TunerState(meta, seed=0)
        state.observe(fake(8.0))  # in the acceptance band -> done
        outcome = state.result()
        assert outcome.gpu_hours == outcome.n_searches * 2.00  # HDX, not 1.85


# ----------------------------------------------------------------------
# Campaign driver
# ----------------------------------------------------------------------
class TestCampaign:
    def test_build_scenarios_grid(self):
        scenarios = build_scenarios(
            ["cifar10", "speech"], ["eyeriss", "edge"],
            methods=("hdx", "dance"), seeds=2, epochs=4,
        )
        assert len(scenarios) == 2 * 2 * 2 * 2
        # Workload-major: one dispatch manifest per workload.
        plan = plan_campaign(scenarios)
        assert sorted(plan.configs) == ["cifar10", "speech"]
        assert all(len(v) == 8 for v in plan.configs.values())
        for index, config in plan.configs["speech"]:
            assert config.workload == "speech"
            assert scenarios[index].workload == "speech"

    def test_plan_validates_up_front(self):
        with pytest.raises(ValueError, match="unregistered workload"):
            plan_campaign(build_scenarios(["mnist"], ["eyeriss"], epochs=4))
        with pytest.raises(ValueError, match="unknown platform"):
            plan_campaign(build_scenarios(["cifar10"], ["gpu"], epochs=4))
        with pytest.raises(ValueError, match="unknown method"):
            plan_campaign(
                build_scenarios(["cifar10"], ["eyeriss"], methods=("sgd",),
                                epochs=4)
            )
        with pytest.raises(ValueError, match="no constraint preset"):
            plan_campaign(
                build_scenarios(["cifar10"], ["eyeriss"], presets=("nope",),
                                epochs=4)
            )

    def test_dry_run_renders_without_executing(self):
        scenarios = build_scenarios(["cifar10", "speech"], ["eyeriss"], epochs=4)
        text = render_plan(scenarios)
        assert "2 scenario(s)" in text
        assert "dry run: nothing executed" in text
        assert "speech" in text

    def test_campaign_store_dedupe(self, tmp_path):
        """Acceptance: a >=2-workload x >=2-platform campaign re-run is
        served entirely from the run store (0 searches executed)."""
        from repro.runtime import aggregate_report

        scenarios = build_scenarios(
            ["cifar10", "speech"], ["eyeriss", "edge"],
            methods=("dance",), seeds=1, epochs=6,
        )
        with runtime_context(store=str(tmp_path / "runs")):
            first = run_campaign(scenarios)
            total = aggregate_report()
            assert total.requested == len(scenarios)
            assert total.executed == len(scenarios)
        # The repeat re-dispatches per workload; summed over its
        # reports it must be all hits, zero executed.
        with runtime_context(store=str(tmp_path / "runs")):
            repeat = run_campaign(scenarios)
            total = aggregate_report()
        assert total.requested == len(scenarios)
        assert total.executed == 0
        assert total.store_hits == len(scenarios)
        for a, b in zip(first, repeat):
            assert a.result.arch == b.result.arch
            assert a.result.metrics == b.result.metrics
        text = render_campaign(first)
        assert "Cross-scenario summary" in text
        assert "Per-method roll-up" in text
        assert "GPU-hours" in text


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestWorkloadCLI:
    def test_workloads_ls(self, capsys):
        from repro.cli import main

        assert main(["workloads", "ls"]) == 0
        out = capsys.readouterr().out
        for name in available_workloads():
            assert f"{name}:" in out
        assert "presets" in out and "surrogate" in out
        assert "4 workload(s) registered" in out

    def test_campaign_dry_run(self, capsys):
        from repro.cli import main

        code = main([
            "campaign", "--workloads", "cifar10,speech",
            "--platforms", "eyeriss,edge", "--methods", "hdx,dance",
            "--epochs", "4", "--dry-run",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "8 scenario(s)" in out and "nothing executed" in out

    def test_campaign_rejects_unknown_names(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["campaign", "--workloads", "mnist", "--dry-run"])
        with pytest.raises(SystemExit, match="unknown method"):
            main(["campaign", "--methods", "sgd", "--dry-run"])
        with pytest.raises(SystemExit, match="no methods given"):
            main(["campaign", "--methods", "", "--dry-run"])
        with pytest.raises(SystemExit, match="lacks constraint preset"):
            main(["campaign", "--presets", "nonsense", "--dry-run"])

    def test_search_workload_flag_and_space_alias(self, tmp_path, capsys):
        from repro.cli import main

        out_path = str(tmp_path / "result.json")
        code = main([
            "search", "--workload", "speech", "--method", "dance",
            "--epochs", "6", "--seed", "0", "--output", out_path,
        ])
        assert code == 0
        assert main(["evaluate", "--result", out_path]) == 0
        assert main(["evaluate", "--result", out_path,
                     "--workload", "speech"]) == 0
        assert main(["evaluate", "--result", out_path,
                     "--workload", "cifar10"]) == 2
        err = capsys.readouterr().err
        assert "belongs to workload 'speech'" in err
        # The legacy spelling keeps working.
        code = main([
            "search", "--space", "cifar10", "--method", "dance",
            "--epochs", "6", "--seed", "0",
        ])
        assert code == 0
