"""Tests for MBConv blocks and the path-sampling supernet."""

import numpy as np
import pytest

from repro import nn
from repro.arch import MBConvBlock, NetworkArch, SuperNet, build_network_module, cifar_space
from repro.autodiff import Tensor

RNG = np.random.default_rng(5)


def tiny_space():
    """A scaled-down space to keep supernet tests fast."""
    from repro.arch.space import SearchSpace

    return SearchSpace(
        name="tiny",
        input_size=32,
        train_input_size=8,
        num_classes=4,
        stem_channels=16,
        train_stem_channels=4,
        stage_plan=[(16, 4, 2, 1), (32, 6, 2, 2)],
    )


class TestMBConvBlock:
    def test_output_shape_stride1(self):
        block = MBConvBlock(4, 4, kernel=3, expand=3, stride=1)
        out = block(Tensor(RNG.standard_normal((2, 4, 8, 8))))
        assert out.shape == (2, 4, 8, 8)

    def test_output_shape_stride2(self):
        block = MBConvBlock(4, 6, kernel=5, expand=3, stride=2)
        out = block(Tensor(RNG.standard_normal((2, 4, 8, 8))))
        assert out.shape == (2, 6, 4, 4)

    def test_residual_only_when_compatible(self):
        assert MBConvBlock(4, 4, 3, 3, 1).use_residual
        assert not MBConvBlock(4, 6, 3, 3, 1).use_residual
        assert not MBConvBlock(4, 4, 3, 3, 2).use_residual

    def test_gradients_flow(self):
        block = MBConvBlock(3, 3, kernel=3, expand=3, stride=1)
        x = Tensor(RNG.standard_normal((2, 3, 6, 6)), requires_grad=True)
        (block(x) ** 2).sum().backward()
        assert x.grad is not None
        assert block.dw_conv.weight.grad is not None


class TestBuildNetworkModule:
    def test_forward_shape(self):
        space = tiny_space()
        arch = NetworkArch.from_indices(space, [0] * space.num_layers)
        model = build_network_module(arch, seed=0)
        x = Tensor(RNG.standard_normal((2, 3, space.train_input_size, space.train_input_size)))
        assert model(x).shape == (2, space.num_classes)

    def test_full_cifar_network_builds(self):
        space = cifar_space()
        arch = NetworkArch.from_indices(space, [2] * space.num_layers)
        model = build_network_module(arch)
        x = Tensor(RNG.standard_normal((1, 3, space.train_input_size, space.train_input_size)))
        assert model(x).shape == (1, 10)

    def test_skip_choice_builds_identity(self):
        space = tiny_space()
        indices = [0] * space.num_layers
        skip_layer = next(i for i, s in enumerate(space.layers) if s.allow_skip)
        indices[skip_layer] = len(space.layers[skip_layer].candidates()) - 1
        arch = NetworkArch.from_indices(space, indices)
        model = build_network_module(arch)
        x = Tensor(RNG.standard_normal((1, 3, space.train_input_size, space.train_input_size)))
        assert model(x).shape == (1, space.num_classes)


class TestSuperNet:
    def test_alpha_shape(self):
        space = tiny_space()
        net = SuperNet(space)
        assert net.alpha.shape == (space.num_layers, space.num_choices)

    def test_parameter_partition(self):
        net = SuperNet(tiny_space())
        weights = net.weight_parameters()
        assert net.alpha not in weights
        assert len(weights) == len(net.parameters()) - 1

    def test_forward_with_explicit_path(self):
        space = tiny_space()
        net = SuperNet(space)
        x = Tensor(RNG.standard_normal((2, 3, space.train_input_size, space.train_input_size)))
        out = net(x, path=[0] * space.num_layers)
        assert out.shape == (2, space.num_classes)

    def test_forward_samples_path_when_omitted(self):
        space = tiny_space()
        net = SuperNet(space)
        x = Tensor(RNG.standard_normal((1, 3, space.train_input_size, space.train_input_size)))
        assert net(x).shape == (1, space.num_classes)

    def test_sample_path_respects_candidate_counts(self):
        space = tiny_space()
        net = SuperNet(space)
        for _ in range(10):
            path = net.sample_path()
            for li, idx in enumerate(path):
                assert 0 <= idx < len(space.layers[li].candidates())

    def test_alpha_receives_gradient(self):
        space = tiny_space()
        net = SuperNet(space)
        x = Tensor(RNG.standard_normal((2, 3, space.train_input_size, space.train_input_size)))
        loss = nn.cross_entropy(net(x, path=[0] * space.num_layers), np.zeros(2, dtype=int))
        loss.backward()
        assert net.alpha.grad is not None
        assert np.any(net.alpha.grad != 0)

    def test_weights_receive_gradient_on_sampled_path_only(self):
        space = tiny_space()
        net = SuperNet(space)
        path = [0] * space.num_layers
        x = Tensor(RNG.standard_normal((2, 3, space.train_input_size, space.train_input_size)))
        nn.cross_entropy(net(x, path=path), np.zeros(2, dtype=int)).backward()
        on_path = net.layer_candidates[0][0]
        off_path = net.layer_candidates[0][1]
        assert on_path.dw_conv.weight.grad is not None
        assert off_path.dw_conv.weight.grad is None

    def test_dominant_arch_follows_alpha(self):
        space = tiny_space()
        net = SuperNet(space)
        net.alpha.data[:, 1] = 10.0
        arch = net.dominant_arch()
        assert all(idx == 1 for idx in arch.to_indices())

    def test_alpha_probs_rows_normalized(self):
        net = SuperNet(tiny_space())
        probs = net.alpha_probs_numpy()
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-9)

    def test_sampling_distribution_tracks_alpha(self):
        space = tiny_space()
        net = SuperNet(space, seed=0)
        net.alpha.data[0, :] = np.array([5.0, 0, 0, 0, 0, 0, 0])
        counts = np.zeros(space.num_choices)
        for _ in range(200):
            counts[net.sample_path()[0]] += 1
        assert counts[0] > 150  # softmax(5 vs 0) ~ 0.97
