"""Learning-rate schedules (cosine annealing as used by the paper)."""

from __future__ import annotations

import math

from repro.nn.optim import Optimizer


class _Scheduler:
    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        """Advance one epoch and update the optimizer's learning rate."""
        self.epoch += 1
        self.optimizer.lr = self.get_lr()

    def get_lr(self) -> float:
        raise NotImplementedError


class CosineAnnealingLR(_Scheduler):
    """Cosine decay from the base LR to ``min_lr`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, min_lr: float = 0.0) -> None:
        super().__init__(optimizer)
        if t_max <= 0:
            raise ValueError("t_max must be positive")
        self.t_max = t_max
        self.min_lr = min_lr

    def get_lr(self) -> float:
        progress = min(self.epoch, self.t_max) / self.t_max
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (
            1.0 + math.cos(math.pi * progress)
        )


class StepLR(_Scheduler):
    """Multiply LR by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * self.gamma ** (self.epoch // self.step_size)


class ConstantLR(_Scheduler):
    """No-op schedule, handy as a default."""

    def get_lr(self) -> float:
        return self.base_lr
