"""Module/Parameter abstractions mirroring ``torch.nn.Module``."""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.autodiff import Tensor


class Parameter(Tensor):
    """A tensor registered as a trainable leaf of a module."""

    def __init__(self, data) -> None:
        super().__init__(data, requires_grad=True)


class Module:
    """Base class with automatic parameter/submodule registration.

    Attribute assignment of :class:`Parameter` or :class:`Module`
    instances registers them, so ``parameters()`` and ``state_dict()``
    walk the whole tree without extra bookkeeping.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield prefix + name, param
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix + name + ".")

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # Train / eval mode
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # ------------------------------------------------------------------
    # Gradient helpers
    # ------------------------------------------------------------------
    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        state = {name: p.data.copy() for name, p in self.named_parameters()}
        for name, module in self._modules.items():
            for key, buf in module._buffers().items():
                state[f"{name}.{key}"] = buf.copy()
        state.update({key: buf.copy() for key, buf in self._buffers().items()})
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        for name, p in self.named_parameters():
            if name not in state:
                raise KeyError(f"missing parameter {name!r} in state dict")
            if p.data.shape != state[name].shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: "
                    f"{p.data.shape} vs {state[name].shape}"
                )
            p.data[...] = state[name]
        self._load_buffers(state, prefix="")

    def _buffers(self) -> Dict[str, np.ndarray]:
        """Non-trainable arrays to persist (e.g. batch-norm statistics)."""
        return {}

    def _load_buffers(self, state: Dict[str, np.ndarray], prefix: str) -> None:
        for key, buf in self._buffers().items():
            full = prefix + key
            if full in state:
                buf[...] = state[full]
        for name, module in self._modules.items():
            module._load_buffers(state, prefix + name + ".")

    # ------------------------------------------------------------------
    # Forward dispatch
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        children = ", ".join(self._modules)
        return f"{type(self).__name__}({children})"


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self.layers = list(layers)
        for i, layer in enumerate(layers):
            setattr(self, f"layer{i}", layer)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]
