"""Optimizers: SGD with (Nesterov) momentum and Adam.

The paper trains final networks with SGD + Nesterov momentum and the
estimator with Adam (lr 1e-4); both are provided here.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.autodiff import Tensor


class Optimizer:
    """Base optimizer over a fixed list of parameter tensors."""

    def __init__(self, params: Iterable[Tensor], lr: float) -> None:
        self.params: List[Tensor] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def gradients(self) -> List[Optional[np.ndarray]]:
        """Snapshot of current parameter gradients (None when absent)."""
        return [None if p.grad is None else p.grad.copy() for p in self.params]

    def set_gradients(self, grads: Iterable[Optional[np.ndarray]]) -> None:
        """Overwrite parameter gradients — used by gradient manipulation."""
        for p, g in zip(self.params, grads):
            p.grad = None if g is None else np.asarray(g, dtype=p.data.dtype)


class SGD(Optimizer):
    """Stochastic gradient descent with momentum/Nesterov/weight decay."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float,
        momentum: float = 0.0,
        nesterov: bool = False,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        if nesterov and momentum <= 0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = momentum
        self.nesterov = nesterov
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += grad
                update = grad + self.momentum * v if self.nesterov else v
            else:
                update = grad
            p.data -= self.lr * update


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba, 2015)."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
