"""Standard layers: linear, convolution, batch norm, activations, pooling."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autodiff import Tensor, no_grad, ops
from repro.nn.init import kaiming_normal
from repro.nn.module import Module, Parameter

_default_rng = np.random.default_rng(0)


class Linear(Module):
    """Fully connected layer ``y = x W^T + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or _default_rng
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(kaiming_normal((out_features, in_features), in_features, rng))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features})"


class Conv2d(Module):
    """2-D convolution over NCHW tensors (supports depthwise via groups)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        groups: int = 1,
        bias: bool = False,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or _default_rng
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.groups = groups
        fan_in = (in_channels // groups) * kernel_size * kernel_size
        self.weight = Parameter(
            kaiming_normal(
                (out_channels, in_channels // groups, kernel_size, kernel_size),
                fan_in,
                rng,
            )
        )
        self.bias = Parameter(np.zeros(out_channels)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return ops.conv2d(
            x,
            self.weight,
            self.bias,
            stride=self.stride,
            padding=self.padding,
            groups=self.groups,
        )

    def __repr__(self) -> str:
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, "
            f"k={self.kernel_size}, s={self.stride}, g={self.groups})"
        )


class _BatchNorm(Module):
    """Shared machinery for 1-D/2-D batch normalization."""

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5) -> None:
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(np.ones(num_features))
        self.beta = Parameter(np.zeros(num_features))
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)

    def _buffers(self):
        return {"running_mean": self.running_mean, "running_var": self.running_var}

    def _normalize(self, x: Tensor, axes, shape) -> Tensor:
        if self.training:
            mean = x.mean(axis=axes, keepdims=True)
            centered = x - mean
            var = (centered * centered).mean(axis=axes, keepdims=True)
            with no_grad():
                m = self.momentum
                self.running_mean[...] = (1 - m) * self.running_mean + m * mean.data.reshape(-1)
                self.running_var[...] = (1 - m) * self.running_var + m * var.data.reshape(-1)
            normed = centered / (var + self.eps).sqrt()
        else:
            mean = self.running_mean.reshape(shape)
            var = self.running_var.reshape(shape)
            normed = (x - mean) / np.sqrt(var + self.eps)
        return normed * self.gamma.reshape(shape) + self.beta.reshape(shape)


class BatchNorm1d(_BatchNorm):
    """Batch normalization over (N, C) inputs."""

    def forward(self, x: Tensor) -> Tensor:
        return self._normalize(x, axes=0, shape=(1, self.num_features))


class BatchNorm2d(_BatchNorm):
    """Batch normalization over (N, C, H, W) inputs."""

    def forward(self, x: Tensor) -> Tensor:
        return self._normalize(x, axes=(0, 2, 3), shape=(1, self.num_features, 1, 1))


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return ops.relu(x)


class ReLU6(Module):
    """The MobileNet activation, clamped at 6."""

    def forward(self, x: Tensor) -> Tensor:
        return ops.relu6(x)


class LeakyReLU(Module):
    def __init__(self, slope: float = 0.01) -> None:
        super().__init__()
        self.slope = slope

    def forward(self, x: Tensor) -> Tensor:
        return ops.leaky_relu(x, self.slope)


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return ops.sigmoid(x)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return ops.tanh(x)


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x


class Flatten(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.flatten_batch()


class Dropout(Module):
    def __init__(self, rate: float = 0.5, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.rate = rate
        self.rng = rng or np.random.default_rng(0)

    def forward(self, x: Tensor) -> Tensor:
        return ops.dropout(x, self.rate, self.rng, training=self.training)


class AvgPool2d(Module):
    def __init__(self, kernel_size: int, stride: Optional[int] = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return ops.avg_pool2d(x, self.kernel_size, self.stride)


class MaxPool2d(Module):
    def __init__(self, kernel_size: int, stride: Optional[int] = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return ops.max_pool2d(x, self.kernel_size, self.stride)


class GlobalAvgPool2d(Module):
    """Reduce (N, C, H, W) to (N, C) by spatial averaging."""

    def forward(self, x: Tensor) -> Tensor:
        return x.mean(axis=(2, 3))
