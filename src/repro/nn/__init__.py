"""Neural-network library built on :mod:`repro.autodiff`.

The PyTorch-``nn`` substitute: modules, layers, losses, optimizers, and
learning-rate schedules used by the supernet, the estimator, and the
hardware generator.
"""

from repro.nn.module import Module, Parameter, Sequential
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    LeakyReLU,
    Linear,
    MaxPool2d,
    ReLU,
    ReLU6,
    Sigmoid,
    Tanh,
)
from repro.nn.residual import ResidualMLP, ResidualMLPBlock, ResidualMLPKernel
from repro.nn.losses import accuracy, cross_entropy, l1_loss, mse_loss
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.scheduler import ConstantLR, CosineAnnealingLR, StepLR

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "Linear",
    "Conv2d",
    "BatchNorm1d",
    "BatchNorm2d",
    "ReLU",
    "ReLU6",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "Identity",
    "Flatten",
    "Dropout",
    "AvgPool2d",
    "MaxPool2d",
    "GlobalAvgPool2d",
    "ResidualMLP",
    "ResidualMLPBlock",
    "ResidualMLPKernel",
    "cross_entropy",
    "mse_loss",
    "l1_loss",
    "accuracy",
    "Optimizer",
    "SGD",
    "Adam",
    "CosineAnnealingLR",
    "StepLR",
    "ConstantLR",
]
