"""Residual MLPs — the estimator/generator backbone from DANCE/HDX.

The paper (Sec. 4.4) models both the hardware cost estimator and the
hardware generator as "five-layer Multi-Layer Perceptron with residual
connections"; these classes implement exactly that shape.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.autodiff import Tensor, ops
from repro.nn.layers import Linear
from repro.nn.module import Module


class ResidualMLPBlock(Module):
    """``y = relu(W2 relu(W1 x) + x)`` — a two-layer residual block."""

    def __init__(self, width: int, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.fc1 = Linear(width, width, rng=rng)
        self.fc2 = Linear(width, width, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        hidden = ops.relu(self.fc1(x))
        return ops.relu(self.fc2(hidden) + x)


class ResidualMLP(Module):
    """Input/output projections around residual blocks.

    ``n_layers`` counts linear layers: one input projection, one output
    projection, and ``(n_layers - 2) // 2`` residual blocks in between.
    With the paper's five layers this yields in-proj, one residual
    block (two layers), an extra plain hidden layer, and out-proj.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        width: int = 64,
        n_layers: int = 5,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if n_layers < 3:
            raise ValueError("ResidualMLP needs at least 3 layers")
        self.in_proj = Linear(in_features, width, rng=rng)
        n_hidden = n_layers - 2
        self.blocks = []
        remaining = n_hidden
        index = 0
        while remaining >= 2:
            block = ResidualMLPBlock(width, rng=rng)
            setattr(self, f"block{index}", block)
            self.blocks.append(block)
            remaining -= 2
            index += 1
        self.extra = Linear(width, width, rng=rng) if remaining else None
        self.out_proj = Linear(width, out_features, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        hidden = ops.relu(self.in_proj(x))
        for block in self.blocks:
            hidden = block(hidden)
        if self.extra is not None:
            hidden = ops.relu(self.extra(hidden))
        return self.out_proj(hidden)
