"""Residual MLPs — the estimator/generator backbone from DANCE/HDX.

The paper (Sec. 4.4) models both the hardware cost estimator and the
hardware generator as "five-layer Multi-Layer Perceptron with residual
connections"; these classes implement exactly that shape.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.autodiff import Tensor, ops
from repro.nn.layers import Linear
from repro.nn.module import Module


class ResidualMLPBlock(Module):
    """``y = relu(W2 relu(W1 x) + x)`` — a two-layer residual block."""

    def __init__(self, width: int, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.fc1 = Linear(width, width, rng=rng)
        self.fc2 = Linear(width, width, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        hidden = ops.relu(self.fc1(x))
        return ops.relu(self.fc2(hidden) + x)


class ResidualMLP(Module):
    """Input/output projections around residual blocks.

    ``n_layers`` counts linear layers: one input projection, one output
    projection, and ``(n_layers - 2) // 2`` residual blocks in between.
    With the paper's five layers this yields in-proj, one residual
    block (two layers), an extra plain hidden layer, and out-proj.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        width: int = 64,
        n_layers: int = 5,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if n_layers < 3:
            raise ValueError("ResidualMLP needs at least 3 layers")
        self.in_proj = Linear(in_features, width, rng=rng)
        n_hidden = n_layers - 2
        self.blocks = []
        remaining = n_hidden
        index = 0
        while remaining >= 2:
            block = ResidualMLPBlock(width, rng=rng)
            setattr(self, f"block{index}", block)
            self.blocks.append(block)
            remaining -= 2
            index += 1
        self.extra = Linear(width, width, rng=rng) if remaining else None
        self.out_proj = Linear(width, out_features, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        hidden = ops.relu(self.in_proj(x))
        for block in self.blocks:
            hidden = block(hidden)
        if self.extra is not None:
            hidden = ops.relu(self.extra(hidden))
        return self.out_proj(hidden)


class ResidualMLPKernel:
    """Raw-array lock-step forward/VJP for a :class:`ResidualMLP` stack.

    The search fleet advances hundreds of epochs over many runs; going
    through the autodiff graph costs a Python-level op dispatch per
    tensor per pass.  This kernel evaluates the same residual MLP on
    plain ``(N, 1, in)`` arrays with hand-written vector-Jacobian
    products that mirror the autodiff ops **bit for bit** (relu as
    ``x * (x > 0)``, matmuls in stacked per-run layouts, weight VJPs as
    the outer-product broadcast the engine uses, residual adds in the
    engine's accumulation order).

    Two weight layouts:

    * ``mlps=[...]`` — one :class:`ResidualMLP` per run; weights are
      stacked to ``(N, out, in)`` / ``(N, 1, out)`` and trained by the
      caller (``params()`` exposes them in scalar parameter order, so
      per-run flattened gradients line up with the scalar engine's);
    * ``mlp=...`` — one shared (frozen) MLP; weights stay 2-D and
      ``backward`` only propagates to the input.

    Do not change :class:`ResidualMLP` without updating this kernel —
    ``test_fleet_parity`` / ``test_nn_modules`` pin the equivalence
    (see DESIGN.md).
    """

    def __init__(
        self,
        mlps: Optional[Sequence[ResidualMLP]] = None,
        mlp: Optional[ResidualMLP] = None,
    ) -> None:
        if (mlps is None) == (mlp is None):
            raise ValueError("pass exactly one of mlps= or mlp=")
        self.stacked = mlps is not None
        ref = mlps[0] if self.stacked else mlp
        order = [ref.in_proj]
        for block in ref.blocks:
            order.extend([block.fc1, block.fc2])
        if ref.extra is not None:
            order.append(ref.extra)
        order.append(ref.out_proj)
        self.n_blocks = len(ref.blocks)
        self.has_extra = ref.extra is not None
        if self.stacked:
            peers = [
                [m.in_proj]
                + [fc for b in m.blocks for fc in (b.fc1, b.fc2)]
                + ([m.extra] if m.extra is not None else [])
                + [m.out_proj]
                for m in mlps
            ]
            self.weights = [
                np.stack([p[k].weight.data for p in peers]) for k in range(len(order))
            ]
            self.biases = [
                np.stack([p[k].bias.data.reshape(1, -1) for p in peers])
                for k in range(len(order))
            ]
        else:
            self.weights = [lin.weight.data for lin in order]
            self.biases = [lin.bias.data for lin in order]

    # ------------------------------------------------------------------
    def params(self) -> List[np.ndarray]:
        """Trainable arrays in scalar ``parameters()`` order (W, b, ...)."""
        out: List[np.ndarray] = []
        for w, b in zip(self.weights, self.biases):
            out.extend([w, b])
        return out

    def _linear(self, x: np.ndarray, k: int) -> np.ndarray:
        w = self.weights[k]
        wt = w.transpose(0, 2, 1) if self.stacked else w.T
        return x @ wt + self.biases[k]

    def forward(self, x: np.ndarray, want_cache: bool = True):
        """Map (N, 1, in) -> (N, 1, out); cache is fed to :meth:`backward`."""
        inputs: List[Optional[np.ndarray]] = []
        masks: List[Optional[np.ndarray]] = []
        k = 0
        inputs.append(x if want_cache else None)
        z = self._linear(x, k)
        mask = z > 0
        h = z * mask
        masks.append(mask if want_cache else None)
        k += 1
        for _ in range(self.n_blocks):
            h_in = h
            inputs.append(h_in if want_cache else None)
            z1 = self._linear(h_in, k)
            m1 = z1 > 0
            h1 = z1 * m1
            masks.append(m1 if want_cache else None)
            k += 1
            inputs.append(h1 if want_cache else None)
            z2 = self._linear(h1, k) + h_in
            m2 = z2 > 0
            h = z2 * m2
            masks.append(m2 if want_cache else None)
            k += 1
        if self.has_extra:
            inputs.append(h if want_cache else None)
            z = self._linear(h, k)
            mask = z > 0
            h = z * mask
            masks.append(mask if want_cache else None)
            k += 1
        inputs.append(h if want_cache else None)
        out = self._linear(h, k)
        cache = (inputs, masks) if want_cache else None
        return out, cache

    def _weight_grad(self, x: np.ndarray, g: np.ndarray) -> np.ndarray:
        # The engine computes d(W^T) as the broadcast outer product
        # swapaxes(x) * g, then transposes back to the (N, out, in)
        # parameter layout — mirror both steps.
        return (np.swapaxes(x, -1, -2) * g).transpose(0, 2, 1)

    def backward(
        self,
        cache,
        d_out: np.ndarray,
        need_input: bool = True,
        need_weights: bool = False,
    ):
        """VJP: returns (d_x or None, [dW, db, ...] or None)."""
        if need_weights and not self.stacked:
            raise ValueError("shared-weight kernel has no trainable weights")
        inputs, masks = cache
        n_lin = len(self.weights)
        d_w: List[Optional[np.ndarray]] = [None] * n_lin
        d_b: List[Optional[np.ndarray]] = [None] * n_lin
        k = n_lin - 1
        m = len(masks) - 1
        g = d_out
        # out_proj (no activation)
        if need_weights:
            d_w[k] = self._weight_grad(inputs[k], g)
            d_b[k] = g
        g = g @ self.weights[k]
        k -= 1
        if self.has_extra:
            g = g * masks[m]
            m -= 1
            if need_weights:
                d_w[k] = self._weight_grad(inputs[k], g)
                d_b[k] = g
            g = g @ self.weights[k]
            k -= 1
        for _ in range(self.n_blocks):
            g = g * masks[m]  # relu at the residual output
            m -= 1
            d_res = g  # the skip connection's share
            if need_weights:
                d_w[k] = self._weight_grad(inputs[k], g)
                d_b[k] = g
            g = g @ self.weights[k]
            k -= 1
            g = g * masks[m]
            m -= 1
            if need_weights:
                d_w[k] = self._weight_grad(inputs[k], g)
                d_b[k] = g
            g = (g @ self.weights[k]) + d_res
            k -= 1
        g = g * masks[m]
        if need_weights:
            d_w[0] = self._weight_grad(inputs[0], g)
            d_b[0] = g
        d_x = (g @ self.weights[0]) if need_input else None
        grads = None
        if need_weights:
            grads = []
            for w_grad, b_grad in zip(d_w, d_b):
                grads.extend([w_grad, b_grad])
        return d_x, grads
