"""Weight initialization schemes."""

from __future__ import annotations

import numpy as np


def kaiming_normal(shape, fan_in: int, rng: np.random.Generator) -> np.ndarray:
    """He-normal initialization suitable for ReLU networks."""
    std = np.sqrt(2.0 / fan_in)
    return rng.standard_normal(shape) * std


def xavier_uniform(shape, fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """Glorot-uniform initialization for tanh/sigmoid networks."""
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)
