"""Loss functions and metrics."""

from __future__ import annotations

import numpy as np

from repro.autodiff import Tensor, as_tensor, ops


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy between ``logits`` (N, C) and integer targets."""
    targets = np.asarray(targets, dtype=np.int64)
    log_probs = ops.log_softmax(logits, axis=-1)
    rows = np.arange(len(targets))
    picked = log_probs[(rows, targets)]
    return -picked.mean()


def mse_loss(pred: Tensor, target) -> Tensor:
    """Mean squared error."""
    target = as_tensor(target)
    diff = pred - target
    return (diff * diff).mean()


def l1_loss(pred: Tensor, target) -> Tensor:
    """Mean absolute error."""
    target = as_tensor(target)
    return (pred - target).abs().mean()


def accuracy(logits: Tensor, targets: np.ndarray) -> float:
    """Top-1 classification accuracy in [0, 1]."""
    predictions = logits.data.argmax(axis=-1)
    return float((predictions == np.asarray(targets)).mean())
