"""Vectorized, stream-exact bounded-integer sampling.

The batched samplers (``NetworkArch.random_batch``,
``DesignSpace.sample_batch``, the dataset builder's combined draw) must
be **stream-equivalent** to their scalar counterparts: same values,
same final ``Generator`` state, for the same seed.  A naive
``rng.integers(0, bounds_array)`` does not qualify — NumPy's
array-bound path uses a different rejection algorithm than its scalar
path, so the values (and the number of words consumed) diverge.

What the scalar path actually does (``Generator.integers(0, high)``
with ``high <= 2**32``, which covers every bound in this codebase —
candidate counts and design-space dimension lengths): draw one 32-bit
word ``w`` from the buffered uint32 stream and apply Lemire's
multiply-shift rejection::

    m        = w * high            # 64-bit product
    leftover = m mod 2**32
    if leftover < (2**32 - high) % high:   # probability high / 2**32
        reject, draw again
    return m >> 32

:func:`bounded_integers_batch` replays exactly that: it pulls the same
uint32 words with one vectorized full-range draw (which consumes the
buffered half-word stream identically — pinned by tests) and applies
the multiply-shift in NumPy.  Rejection is ~``high / 2**32`` (< 4e-9
per draw) — when it ever triggers, the generator state is restored and
the draw is replayed with scalar calls, which is the definitionally
correct stream.

``rng.choice(seq)`` (with ``replace=True`` and no probabilities) and
``rng.integers(0, len(seq))`` consume identically, so sampling a value
list reduces to sampling indices.
"""

from __future__ import annotations

import numpy as np

_WORD = np.uint64(32)
_LOW_MASK = np.uint64(0xFFFFFFFF)
_TWO32 = np.uint64(2**32)


def bounded_integers_batch(rng: np.random.Generator, bounds: np.ndarray) -> np.ndarray:
    """Exactly replicate ``[rng.integers(0, b) for b in bounds.flat]``.

    ``bounds`` is any integer array with every entry in ``[2, 2**32]``;
    the result has the same shape.  Values, consumed words, and the
    final generator state (including the buffered uint32 half-word) are
    identical to the sequential scalar calls in C (row-major) order —
    the stream-equivalence contract pinned by ``tests/test_estimator.py``.
    """
    bounds = np.asarray(bounds)
    if bounds.size == 0:
        return np.zeros(bounds.shape, dtype=np.int64)
    flat = bounds.reshape(-1).astype(np.int64)
    if flat.min() < 2 or flat.max() > 2**32:
        # Bounds of 1 consume no word in the scalar path, and >2**32
        # switches NumPy to the 64-bit algorithm; neither occurs in
        # this codebase, so take the always-correct scalar route.
        return np.array(
            [int(rng.integers(0, int(b))) for b in flat], dtype=np.int64
        ).reshape(bounds.shape)

    state = rng.bit_generator.state
    words = rng.integers(0, 2**32, size=flat.size, dtype=np.uint32)
    w = words.astype(np.uint64)
    s = flat.astype(np.uint64)
    m = w * s  # exact: both factors < 2**32
    leftover = m & _LOW_MASK
    threshold = (_TWO32 - s) % s
    if bool((leftover < threshold).any()):
        # A rejection would interleave extra draws mid-stream; replay
        # the whole batch scalar-for-scalar from the saved state.
        rng.bit_generator.state = state
        return np.array(
            [int(rng.integers(0, int(b))) for b in flat], dtype=np.int64
        ).reshape(bounds.shape)
    return (m >> _WORD).astype(np.int64).reshape(bounds.shape)
