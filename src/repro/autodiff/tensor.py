"""Core :class:`Tensor` type for the reverse-mode autodiff engine.

The graph is built dynamically: each operation returns a new tensor
whose ``_parents`` holds references to its inputs together with a
closure computing the local vector-Jacobian product.  ``backward()``
performs a topological sort and accumulates gradients.

Broadcasting follows NumPy semantics; gradients flowing into a
broadcast operand are reduced back to the operand's shape by
:func:`unbroadcast`.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from repro.autodiff.grad_mode import is_grad_enabled

ArrayLike = Union["Tensor", np.ndarray, float, int, Sequence]

_DEFAULT_DTYPE = np.float64


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` undoing NumPy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were broadcast from size 1.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy-backed tensor with reverse-mode gradient support."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_op")
    __array_priority__ = 100  # make numpy defer to our __radd__ etc.

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Sequence[Tuple["Tensor", Callable[[np.ndarray], np.ndarray]]] = (),
        _op: str = "",
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=_DEFAULT_DTYPE)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._parents = tuple(_parents) if is_grad_enabled() else ()
        self._op = _op

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_note = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4)}{grad_note})"

    def item(self) -> float:
        return float(self.data.item())

    def tolist(self):
        return self.data.tolist()

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut from the graph."""
        out = Tensor(self.data, requires_grad=False)
        out.data = self.data
        return out

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction and backward pass
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence[Tuple["Tensor", Callable[[np.ndarray], np.ndarray]]],
        op: str,
    ) -> "Tensor":
        tracked = [(p, fn) for p, fn in parents if p.requires_grad]
        requires = bool(tracked) and is_grad_enabled()
        return Tensor(data, requires_grad=requires, _parents=tracked if requires else (), _op=op)

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=_DEFAULT_DTYPE)

        order: list[Tensor] = []
        seen: set[int] = set()
        stack: list[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent, _ in node._parents:
                if id(parent) not in seen:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            # Like torch, only leaves (and the backward root) retain .grad.
            if not node._parents or node is self:
                if node.grad is None:
                    node.grad = node_grad.copy()
                else:
                    node.grad = node.grad + node_grad
            for parent, vjp in node._parents:
                contribution = vjp(node_grad)
                if id(parent) in grads:
                    grads[id(parent)] = grads[id(parent)] + contribution
                else:
                    grads[id(parent)] = contribution

    # ------------------------------------------------------------------
    # Arithmetic operators (implementations live in ops.py)
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        from repro.autodiff import ops

        return ops.add(self, other)

    __radd__ = __add__

    def __mul__(self, other: ArrayLike) -> "Tensor":
        from repro.autodiff import ops

        return ops.mul(self, other)

    __rmul__ = __mul__

    def __sub__(self, other: ArrayLike) -> "Tensor":
        from repro.autodiff import ops

        return ops.sub(self, other)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        from repro.autodiff import ops

        return ops.sub(other, self)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        from repro.autodiff import ops

        return ops.div(self, other)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        from repro.autodiff import ops

        return ops.div(other, self)

    def __neg__(self) -> "Tensor":
        from repro.autodiff import ops

        return ops.neg(self)

    def __pow__(self, exponent: float) -> "Tensor":
        from repro.autodiff import ops

        return ops.pow(self, exponent)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        from repro.autodiff import ops

        return ops.matmul(self, other)

    def __getitem__(self, index) -> "Tensor":
        from repro.autodiff import ops

        return ops.getitem(self, index)

    # Comparison operators return plain boolean arrays (no gradient).
    def __gt__(self, other):
        return self.data > _raw(other)

    def __lt__(self, other):
        return self.data < _raw(other)

    def __ge__(self, other):
        return self.data >= _raw(other)

    def __le__(self, other):
        return self.data <= _raw(other)

    # ------------------------------------------------------------------
    # Convenience method forms of common ops
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        from repro.autodiff import ops

        return ops.sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        from repro.autodiff import ops

        return ops.mean(self, axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        from repro.autodiff import ops

        return ops.max(self, axis=axis, keepdims=keepdims)

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        from repro.autodiff import ops

        return ops.min(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape) -> "Tensor":
        from repro.autodiff import ops

        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return ops.reshape(self, shape)

    def transpose(self, axes=None) -> "Tensor":
        from repro.autodiff import ops

        return ops.transpose(self, axes)

    def exp(self) -> "Tensor":
        from repro.autodiff import ops

        return ops.exp(self)

    def log(self) -> "Tensor":
        from repro.autodiff import ops

        return ops.log(self)

    def sqrt(self) -> "Tensor":
        from repro.autodiff import ops

        return ops.sqrt(self)

    def abs(self) -> "Tensor":
        from repro.autodiff import ops

        return ops.abs(self)

    def clip(self, low: Optional[float] = None, high: Optional[float] = None) -> "Tensor":
        from repro.autodiff import ops

        return ops.clip(self, low, high)

    def relu(self) -> "Tensor":
        from repro.autodiff import ops

        return ops.relu(self)

    def sigmoid(self) -> "Tensor":
        from repro.autodiff import ops

        return ops.sigmoid(self)

    def tanh(self) -> "Tensor":
        from repro.autodiff import ops

        return ops.tanh(self)

    def softmax(self, axis: int = -1) -> "Tensor":
        from repro.autodiff import ops

        return ops.softmax(self, axis=axis)

    def log_softmax(self, axis: int = -1) -> "Tensor":
        from repro.autodiff import ops

        return ops.log_softmax(self, axis=axis)

    def flatten_batch(self) -> "Tensor":
        """Flatten all dimensions after the first (batch) one."""
        return self.reshape(self.shape[0], -1)


def _raw(value: ArrayLike) -> np.ndarray:
    return value.data if isinstance(value, Tensor) else np.asarray(value)


def as_tensor(value: ArrayLike, requires_grad: bool = False) -> Tensor:
    """Coerce ``value`` into a :class:`Tensor` (no copy when already one)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=requires_grad)
