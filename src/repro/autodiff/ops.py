"""Differentiable operations for the autodiff engine.

Every function takes tensors (or array-likes) and returns a new
:class:`~repro.autodiff.tensor.Tensor` whose parents carry the local
vector-Jacobian products.  Convolution and pooling use im2col so the
heavy lifting stays inside NumPy matrix multiplies.
"""

from __future__ import annotations

import builtins
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.autodiff.tensor import ArrayLike, Tensor, as_tensor, unbroadcast

__all__ = [
    "add",
    "sub",
    "mul",
    "div",
    "neg",
    "pow",
    "exp",
    "log",
    "sqrt",
    "abs",
    "clip",
    "maximum",
    "minimum",
    "matmul",
    "sum",
    "mean",
    "max",
    "min",
    "reshape",
    "transpose",
    "concat",
    "stack",
    "pad2d",
    "getitem",
    "relu",
    "relu6",
    "leaky_relu",
    "sigmoid",
    "tanh",
    "softmax",
    "log_softmax",
    "dropout",
    "conv2d",
    "avg_pool2d",
    "max_pool2d",
    "im2col",
    "col2im",
]


# ----------------------------------------------------------------------
# Elementwise arithmetic
# ----------------------------------------------------------------------
def add(a: ArrayLike, b: ArrayLike) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out = a.data + b.data
    parents = (
        (a, lambda g: unbroadcast(g, a.shape)),
        (b, lambda g: unbroadcast(g, b.shape)),
    )
    return Tensor._make(out, parents, "add")


def sub(a: ArrayLike, b: ArrayLike) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out = a.data - b.data
    parents = (
        (a, lambda g: unbroadcast(g, a.shape)),
        (b, lambda g: unbroadcast(-g, b.shape)),
    )
    return Tensor._make(out, parents, "sub")


def mul(a: ArrayLike, b: ArrayLike) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out = a.data * b.data
    parents = (
        (a, lambda g: unbroadcast(g * b.data, a.shape)),
        (b, lambda g: unbroadcast(g * a.data, b.shape)),
    )
    return Tensor._make(out, parents, "mul")


def div(a: ArrayLike, b: ArrayLike) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out = a.data / b.data
    parents = (
        (a, lambda g: unbroadcast(g / b.data, a.shape)),
        (b, lambda g: unbroadcast(-g * a.data / (b.data**2), b.shape)),
    )
    return Tensor._make(out, parents, "div")


def neg(a: ArrayLike) -> Tensor:
    a = as_tensor(a)
    return Tensor._make(-a.data, ((a, lambda g: -g),), "neg")


def pow(a: ArrayLike, exponent: float) -> Tensor:
    a = as_tensor(a)
    out = a.data**exponent
    parents = ((a, lambda g: g * exponent * a.data ** (exponent - 1)),)
    return Tensor._make(out, parents, "pow")


def exp(a: ArrayLike) -> Tensor:
    a = as_tensor(a)
    out = np.exp(a.data)
    return Tensor._make(out, ((a, lambda g: g * out),), "exp")


def log(a: ArrayLike) -> Tensor:
    a = as_tensor(a)
    out = np.log(a.data)
    return Tensor._make(out, ((a, lambda g: g / a.data),), "log")


def sqrt(a: ArrayLike) -> Tensor:
    a = as_tensor(a)
    out = np.sqrt(a.data)
    return Tensor._make(out, ((a, lambda g: g * 0.5 / out),), "sqrt")


def abs(a: ArrayLike) -> Tensor:
    a = as_tensor(a)
    out = np.abs(a.data)
    return Tensor._make(out, ((a, lambda g: g * np.sign(a.data)),), "abs")


def clip(a: ArrayLike, low: Optional[float], high: Optional[float]) -> Tensor:
    a = as_tensor(a)
    out = np.clip(a.data, low, high)
    mask = np.ones_like(a.data)
    if low is not None:
        mask = mask * (a.data >= low)
    if high is not None:
        mask = mask * (a.data <= high)
    return Tensor._make(out, ((a, lambda g: g * mask),), "clip")


def maximum(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise max; ties send the full gradient to ``a``."""
    a, b = as_tensor(a), as_tensor(b)
    out = np.maximum(a.data, b.data)
    mask_a = (a.data >= b.data).astype(a.data.dtype)
    parents = (
        (a, lambda g: unbroadcast(g * mask_a, a.shape)),
        (b, lambda g: unbroadcast(g * (1.0 - mask_a), b.shape)),
    )
    return Tensor._make(out, parents, "maximum")


def minimum(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise min; ties send the full gradient to ``a``."""
    a, b = as_tensor(a), as_tensor(b)
    out = np.minimum(a.data, b.data)
    mask_a = (a.data <= b.data).astype(a.data.dtype)
    parents = (
        (a, lambda g: unbroadcast(g * mask_a, a.shape)),
        (b, lambda g: unbroadcast(g * (1.0 - mask_a), b.shape)),
    )
    return Tensor._make(out, parents, "minimum")


# ----------------------------------------------------------------------
# Linear algebra
# ----------------------------------------------------------------------
def matmul(a: ArrayLike, b: ArrayLike) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out = a.data @ b.data

    def grad_a(g: np.ndarray) -> np.ndarray:
        if b.data.ndim == 1:
            return unbroadcast(np.multiply.outer(g, b.data), a.shape)
        return unbroadcast(g @ np.swapaxes(b.data, -1, -2), a.shape)

    def grad_b(g: np.ndarray) -> np.ndarray:
        if a.data.ndim == 1:
            return unbroadcast(np.multiply.outer(a.data, g), b.shape)
        if b.data.ndim == 1:
            return unbroadcast(
                (np.swapaxes(a.data, -1, -2) @ g[..., None])[..., 0], b.shape
            )
        if a.data.shape[-2] == 1:
            # Single-row LHS: the (..., K, 1) @ (..., 1, W) product is an
            # outer product (one multiply per element), so a broadcast
            # multiply is bitwise identical and skips the per-slice GEMM
            # dispatch — this is the hot path for the (N, 1, F) stacked
            # layouts of the search fleet and for (1, F) scalar rows.
            return unbroadcast(np.swapaxes(a.data, -1, -2) * g, b.shape)
        return unbroadcast(np.swapaxes(a.data, -1, -2) @ g, b.shape)

    return Tensor._make(out, ((a, grad_a), (b, grad_b)), "matmul")


# ----------------------------------------------------------------------
# Reductions
# ----------------------------------------------------------------------
def _restore_reduced(g: np.ndarray, shape: Tuple[int, ...], axis, keepdims: bool) -> np.ndarray:
    if axis is None:
        return np.broadcast_to(g, shape).astype(g.dtype)
    if not keepdims:
        axes = axis if isinstance(axis, tuple) else (axis,)
        axes = tuple(ax % len(shape) for ax in axes)
        g = np.expand_dims(g, axes)
    return np.broadcast_to(g, shape)


def sum(a: ArrayLike, axis=None, keepdims: bool = False) -> Tensor:
    a = as_tensor(a)
    out = a.data.sum(axis=axis, keepdims=keepdims)
    parents = ((a, lambda g: _restore_reduced(g, a.shape, axis, keepdims).copy()),)
    return Tensor._make(np.asarray(out), parents, "sum")


def mean(a: ArrayLike, axis=None, keepdims: bool = False) -> Tensor:
    a = as_tensor(a)
    out = a.data.mean(axis=axis, keepdims=keepdims)
    count = a.data.size if axis is None else np.prod(
        [a.shape[ax] for ax in (axis if isinstance(axis, tuple) else (axis,))]
    )
    parents = (
        (a, lambda g: _restore_reduced(g, a.shape, axis, keepdims) / count),
    )
    return Tensor._make(np.asarray(out), parents, "mean")


def _extreme(a: ArrayLike, axis, keepdims: bool, kind: str) -> Tensor:
    a = as_tensor(a)
    reducer = np.max if kind == "max" else np.min
    out = reducer(a.data, axis=axis, keepdims=keepdims)

    def vjp(g: np.ndarray) -> np.ndarray:
        full = _restore_reduced(np.asarray(g), a.shape, axis, keepdims)
        out_full = _restore_reduced(np.asarray(out), a.shape, axis, keepdims)
        mask = (a.data == out_full).astype(a.data.dtype)
        # Split gradient among ties, matching numpy-based grad checks.
        counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
        counts_full = _restore_reduced(np.asarray(counts), a.shape, axis, True) if axis is not None else counts
        return full * mask / counts_full

    return Tensor._make(np.asarray(out), ((a, vjp),), kind)


def max(a: ArrayLike, axis=None, keepdims: bool = False) -> Tensor:
    return _extreme(a, axis, keepdims, "max")


def min(a: ArrayLike, axis=None, keepdims: bool = False) -> Tensor:
    return _extreme(a, axis, keepdims, "min")


# ----------------------------------------------------------------------
# Shape manipulation
# ----------------------------------------------------------------------
def reshape(a: ArrayLike, shape: Tuple[int, ...]) -> Tensor:
    a = as_tensor(a)
    out = a.data.reshape(shape)
    parents = ((a, lambda g: g.reshape(a.shape)),)
    return Tensor._make(out, parents, "reshape")


def transpose(a: ArrayLike, axes: Optional[Sequence[int]] = None) -> Tensor:
    a = as_tensor(a)
    out = np.transpose(a.data, axes)
    if axes is None:
        inverse = None
    else:
        inverse = np.argsort(axes)
    parents = ((a, lambda g: np.transpose(g, inverse)),)
    return Tensor._make(out, parents, "transpose")


def concat(tensors: Sequence[ArrayLike], axis: int = 0) -> Tensor:
    tensors = [as_tensor(t) for t in tensors]
    out = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def make_vjp(index: int):
        start, stop = offsets[index], offsets[index + 1]

        def vjp(g: np.ndarray) -> np.ndarray:
            slicer = [slice(None)] * g.ndim
            slicer[axis] = slice(start, stop)
            return g[tuple(slicer)]

        return vjp

    parents = tuple((t, make_vjp(i)) for i, t in enumerate(tensors))
    return Tensor._make(out, parents, "concat")


def stack(tensors: Sequence[ArrayLike], axis: int = 0) -> Tensor:
    tensors = [as_tensor(t) for t in tensors]
    out = np.stack([t.data for t in tensors], axis=axis)

    def make_vjp(index: int):
        def vjp(g: np.ndarray) -> np.ndarray:
            return np.take(g, index, axis=axis)

        return vjp

    parents = tuple((t, make_vjp(i)) for i, t in enumerate(tensors))
    return Tensor._make(out, parents, "stack")


def pad2d(a: ArrayLike, padding: int) -> Tensor:
    """Zero-pad the last two (spatial) dimensions of an NCHW tensor."""
    a = as_tensor(a)
    if padding == 0:
        return a
    p = padding
    out = np.pad(a.data, ((0, 0), (0, 0), (p, p), (p, p)))
    parents = ((a, lambda g: g[:, :, p:-p, p:-p]),)
    return Tensor._make(out, parents, "pad2d")


def getitem(a: ArrayLike, index) -> Tensor:
    a = as_tensor(a)
    out = a.data[index]

    def vjp(g: np.ndarray) -> np.ndarray:
        full = np.zeros_like(a.data)
        np.add.at(full, index, g)
        return full

    return Tensor._make(np.asarray(out), ((a, vjp),), "getitem")


# ----------------------------------------------------------------------
# Activations
# ----------------------------------------------------------------------
def relu(a: ArrayLike) -> Tensor:
    a = as_tensor(a)
    mask = a.data > 0
    out = a.data * mask
    return Tensor._make(out, ((a, lambda g: g * mask),), "relu")


def relu6(a: ArrayLike) -> Tensor:
    a = as_tensor(a)
    mask = (a.data > 0) & (a.data < 6.0)
    out = np.clip(a.data, 0.0, 6.0)
    return Tensor._make(out, ((a, lambda g: g * mask),), "relu6")


def leaky_relu(a: ArrayLike, slope: float = 0.01) -> Tensor:
    a = as_tensor(a)
    mask = a.data > 0
    out = np.where(mask, a.data, slope * a.data)
    return Tensor._make(out, ((a, lambda g: g * np.where(mask, 1.0, slope)),), "leaky_relu")


def sigmoid(a: ArrayLike) -> Tensor:
    a = as_tensor(a)
    out = 1.0 / (1.0 + np.exp(-a.data))
    return Tensor._make(out, ((a, lambda g: g * out * (1.0 - out)),), "sigmoid")


def tanh(a: ArrayLike) -> Tensor:
    a = as_tensor(a)
    out = np.tanh(a.data)
    return Tensor._make(out, ((a, lambda g: g * (1.0 - out**2)),), "tanh")


def softmax(a: ArrayLike, axis: int = -1) -> Tensor:
    a = as_tensor(a)
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    out = e / e.sum(axis=axis, keepdims=True)

    def vjp(g: np.ndarray) -> np.ndarray:
        dot = (g * out).sum(axis=axis, keepdims=True)
        return out * (g - dot)

    return Tensor._make(out, ((a, vjp),), "softmax")


def log_softmax(a: ArrayLike, axis: int = -1) -> Tensor:
    a = as_tensor(a)
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out = shifted - log_sum
    soft = np.exp(out)

    def vjp(g: np.ndarray) -> np.ndarray:
        return g - soft * g.sum(axis=axis, keepdims=True)

    return Tensor._make(out, ((a, vjp),), "log_softmax")


def dropout(a: ArrayLike, rate: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout; identity when not training or rate == 0."""
    a = as_tensor(a)
    if not training or rate <= 0.0:
        return a
    keep = 1.0 - rate
    mask = (rng.random(a.shape) < keep) / keep
    out = a.data * mask
    return Tensor._make(out, ((a, lambda g: g * mask),), "dropout")


# ----------------------------------------------------------------------
# Convolution and pooling via im2col
# ----------------------------------------------------------------------
def _conv_out_size(size: int, kernel: int, stride: int, padding: int) -> int:
    return (size + 2 * padding - kernel) // stride + 1


def im2col(x: np.ndarray, kernel: int, stride: int, padding: int) -> Tuple[np.ndarray, int, int]:
    """Unfold NCHW ``x`` into columns of shape (N, C*k*k, OH*OW)."""
    n, c, h, w = x.shape
    oh = _conv_out_size(h, kernel, stride, padding)
    ow = _conv_out_size(w, kernel, stride, padding)
    if padding > 0:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    strides = x.strides
    view = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, kernel, kernel, oh, ow),
        strides=(
            strides[0],
            strides[1],
            strides[2],
            strides[3],
            strides[2] * stride,
            strides[3] * stride,
        ),
        writeable=False,
    )
    cols = view.reshape(n, c * kernel * kernel, oh * ow)
    return np.ascontiguousarray(cols), oh, ow


def col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Fold columns back, accumulating overlaps (adjoint of im2col)."""
    n, c, h, w = x_shape
    oh = _conv_out_size(h, kernel, stride, padding)
    ow = _conv_out_size(w, kernel, stride, padding)
    hp, wp = h + 2 * padding, w + 2 * padding
    x = np.zeros((n, c, hp, wp), dtype=cols.dtype)
    cols = cols.reshape(n, c, kernel, kernel, oh, ow)
    for ki in builtins.range(kernel):
        for kj in builtins.range(kernel):
            x[:, :, ki : ki + stride * oh : stride, kj : kj + stride * ow : stride] += cols[
                :, :, ki, kj, :, :
            ]
    if padding > 0:
        return x[:, :, padding:-padding, padding:-padding]
    return x


def conv2d(
    x: ArrayLike,
    weight: ArrayLike,
    bias: Optional[ArrayLike] = None,
    stride: int = 1,
    padding: int = 0,
    groups: int = 1,
) -> Tensor:
    """2-D convolution over NCHW input.

    ``weight`` has shape (C_out, C_in // groups, k, k).  ``groups ==
    C_in == C_out`` gives the depthwise convolution used by MBConv.
    """
    x, weight = as_tensor(x), as_tensor(weight)
    n, c_in, h, w = x.shape
    c_out, c_in_g, k, _ = weight.shape
    if c_in % groups or c_out % groups:
        raise ValueError("channels must be divisible by groups")
    if c_in_g != c_in // groups:
        raise ValueError(
            f"weight expects {c_in_g * groups} input channels, got {c_in}"
        )

    oh = _conv_out_size(h, k, stride, padding)
    ow = _conv_out_size(w, k, stride, padding)

    cols, _, _ = im2col(x.data, k, stride, padding)  # (N, C*k*k, L)
    cols = cols.reshape(n, groups, c_in_g * k * k, oh * ow)
    w_mat = weight.data.reshape(groups, c_out // groups, c_in_g * k * k)
    # (g, co_g, ckk) @ (N, g, ckk, L) -> (N, g, co_g, L)
    out = np.einsum("gof,ngfl->ngol", w_mat, cols, optimize=True)
    out = out.reshape(n, c_out, oh, ow)

    def grad_x(g: np.ndarray) -> np.ndarray:
        g_mat = g.reshape(n, groups, c_out // groups, oh * ow)
        cols_grad = np.einsum("gof,ngol->ngfl", w_mat, g_mat, optimize=True)
        cols_grad = cols_grad.reshape(n, c_in * k * k, oh * ow)
        return col2im(cols_grad, x.shape, k, stride, padding)

    def grad_w(g: np.ndarray) -> np.ndarray:
        g_mat = g.reshape(n, groups, c_out // groups, oh * ow)
        w_grad = np.einsum("ngol,ngfl->gof", g_mat, cols, optimize=True)
        return w_grad.reshape(weight.shape)

    parents = [(x, grad_x), (weight, grad_w)]
    if bias is not None:
        bias = as_tensor(bias)
        out = out + bias.data.reshape(1, c_out, 1, 1)
        parents.append((bias, lambda g: g.sum(axis=(0, 2, 3))))

    return Tensor._make(out, parents, "conv2d")


def avg_pool2d(x: ArrayLike, kernel: int, stride: Optional[int] = None) -> Tensor:
    x = as_tensor(x)
    stride = stride or kernel
    n, c, h, w = x.shape
    cols, oh, ow = im2col(x.data, kernel, stride, 0)
    cols = cols.reshape(n, c, kernel * kernel, oh * ow)
    out = cols.mean(axis=2).reshape(n, c, oh, ow)

    def vjp(g: np.ndarray) -> np.ndarray:
        g_cols = np.broadcast_to(
            g.reshape(n, c, 1, oh * ow) / (kernel * kernel),
            (n, c, kernel * kernel, oh * ow),
        ).reshape(n, c * kernel * kernel, oh * ow)
        return col2im(np.ascontiguousarray(g_cols), x.shape, kernel, stride, 0)

    return Tensor._make(out, ((x, vjp),), "avg_pool2d")


def max_pool2d(x: ArrayLike, kernel: int, stride: Optional[int] = None) -> Tensor:
    x = as_tensor(x)
    stride = stride or kernel
    n, c, h, w = x.shape
    cols, oh, ow = im2col(x.data, kernel, stride, 0)
    cols = cols.reshape(n, c, kernel * kernel, oh * ow)
    arg = cols.argmax(axis=2)
    out = np.take_along_axis(cols, arg[:, :, None, :], axis=2)[:, :, 0, :]
    out = out.reshape(n, c, oh, ow)

    def vjp(g: np.ndarray) -> np.ndarray:
        g_cols = np.zeros((n, c, kernel * kernel, oh * ow), dtype=g.dtype)
        np.put_along_axis(g_cols, arg[:, :, None, :], g.reshape(n, c, 1, oh * ow), axis=2)
        return col2im(g_cols.reshape(n, c * kernel * kernel, oh * ow), x.shape, kernel, stride, 0)

    return Tensor._make(out, ((x, vjp),), "max_pool2d")
