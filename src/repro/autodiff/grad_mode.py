"""Global gradient-recording switch, mirroring ``torch.no_grad``."""

import contextlib
import threading

_state = threading.local()


def is_grad_enabled() -> bool:
    """Return True when operations should record backward graphs."""
    return getattr(_state, "enabled", True)


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph recording.

    Tensors created inside the block do not track history, which makes
    inference and in-place statistics updates cheap.
    """
    previous = is_grad_enabled()
    _state.enabled = False
    try:
        yield
    finally:
        _state.enabled = previous
