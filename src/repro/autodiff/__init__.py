"""Reverse-mode automatic differentiation engine.

This subpackage is the PyTorch-autograd substitute for the HDX
reproduction.  It provides a :class:`Tensor` wrapping a NumPy array, a
tape-free graph built from closures, and enough differentiable
operations to train convolutional supernets and residual MLPs.

Example
-------
>>> from repro.autodiff import Tensor
>>> x = Tensor([[1.0, 2.0]], requires_grad=True)
>>> y = (x * x).sum()
>>> y.backward()
>>> x.grad.tolist()
[[2.0, 4.0]]
"""

from repro.autodiff.grad_mode import is_grad_enabled, no_grad
from repro.autodiff.tensor import Tensor, as_tensor
from repro.autodiff import ops
from repro.autodiff.check import gradient_check

__all__ = [
    "Tensor",
    "as_tensor",
    "no_grad",
    "is_grad_enabled",
    "ops",
    "gradient_check",
]
