"""Numerical gradient checking used throughout the test suite."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.autodiff.tensor import Tensor


def gradient_check(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    eps: float = 1e-6,
    rtol: float = 1e-4,
    atol: float = 1e-6,
) -> bool:
    """Compare analytic and central-difference gradients of ``fn``.

    ``fn`` must map the given input tensors to a scalar tensor.  Raises
    ``AssertionError`` with a diagnostic message on mismatch and
    returns True on success.
    """
    for t in inputs:
        t.zero_grad()
    out = fn(*inputs)
    if out.size != 1:
        raise ValueError("gradient_check requires a scalar-valued function")
    out.backward()

    for index, tensor in enumerate(inputs):
        if not tensor.requires_grad:
            continue
        analytic = tensor.grad
        assert analytic is not None, f"input {index} received no gradient"
        numeric = np.zeros_like(tensor.data)
        flat = tensor.data.reshape(-1)
        numeric_flat = numeric.reshape(-1)
        for i in range(flat.size):
            original = flat[i]
            flat[i] = original + eps
            plus = fn(*inputs).item()
            flat[i] = original - eps
            minus = fn(*inputs).item()
            flat[i] = original
            numeric_flat[i] = (plus - minus) / (2.0 * eps)
        if not np.allclose(analytic, numeric, rtol=rtol, atol=atol):
            worst = np.max(np.abs(analytic - numeric))
            raise AssertionError(
                f"gradient mismatch on input {index}: max abs diff {worst:.3e}\n"
                f"analytic={analytic}\nnumeric={numeric}"
            )
    return True
