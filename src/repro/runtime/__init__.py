"""Experiment runtime: content-addressed run store + sharded scheduler.

This package is the orchestration layer above the search fleet
(DESIGN.md "Runtime layer").  Every consumer of
:func:`repro.core.run_many` — the figure/table drivers, the
meta-search rounds, the baseline wrappers, the CLI — dispatches
through :func:`dispatch_many`, which consults the active
:class:`RuntimeContext` (job count, run store, rerun flag) and routes
the manifest through a :class:`Scheduler`:

* with a store configured, previously executed runs are served from
  disk (a repeated benchmark invocation executes 0 searches);
* with ``jobs > 1``, cache misses shard across worker processes,
  bitwise identical to a single-process fleet.

The default context comes from the environment (``REPRO_JOBS``,
``REPRO_RUN_STORE``, ``REPRO_RERUN``) so CI and shell users can steer
nested drivers; :func:`runtime_context` scopes an override, and the
CLI's ``--jobs/--store/--no-store/--rerun`` flags wrap commands in
one.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field as dataclass_field
from typing import List, Optional, Sequence, Union

from repro.runtime.engine import ENGINE_SALT, RUN_KEY_VERSION, SCHEMA_VERSION
from repro.runtime.keys import config_payload, estimator_fingerprint, run_key
from repro.runtime.store import RunStore, StoreEntry
from repro.runtime.scheduler import DispatchReport, Scheduler

__all__ = [
    "ENGINE_SALT",
    "RUN_KEY_VERSION",
    "SCHEMA_VERSION",
    "config_payload",
    "estimator_fingerprint",
    "run_key",
    "RunStore",
    "StoreEntry",
    "DispatchReport",
    "Scheduler",
    "RuntimeContext",
    "worker_pool",
    "default_store_dir",
    "configure",
    "runtime_context",
    "active_context",
    "dispatch_many",
    "last_report",
    "aggregate_report",
]


@dataclass
class RuntimeContext:
    """The dispatch settings every driver-level ``dispatch_many`` obeys.

    ``reports`` collects one :class:`DispatchReport` per dispatch made
    under this context, so multi-dispatch drivers (table1 issues one
    dispatch per meta-search round) can be summarized as a whole via
    :func:`aggregate_report`.
    """

    jobs: int = 1
    store: Optional[RunStore] = None
    rerun: bool = False
    reports: List[DispatchReport] = dataclass_field(default_factory=list)


def worker_pool(jobs: int, n_tasks: int):
    """A ``ProcessPoolExecutor`` under the runtime layer's start-method
    policy: prefer ``fork`` where available (workers inherit warmed
    in-process caches), workers capped at ``min(jobs, n_tasks)``.  The
    scheduler's shard execution and the estimator cache warmer share
    this so the policy can only ever change in one place.
    """
    import multiprocessing
    from concurrent.futures import ProcessPoolExecutor

    context = None
    if "fork" in multiprocessing.get_all_start_methods():
        context = multiprocessing.get_context("fork")
    return ProcessPoolExecutor(max_workers=min(jobs, n_tasks), mp_context=context)


def default_store_dir() -> str:
    """``$REPRO_RUN_STORE`` if it names a path, else ``<cache>/runs``."""
    env = os.environ.get("REPRO_RUN_STORE", "")
    if env and env not in ("0", "1", "on", "off"):
        return env
    from repro.experiments.common import CACHE_DIR

    return os.path.join(CACHE_DIR, "runs")


def _resolve_store(store: Union[RunStore, str, bool, None]) -> Optional[RunStore]:
    if store is None or store is False:
        return None
    if store is True:
        return RunStore(default_store_dir())
    if isinstance(store, str):
        return RunStore(store)
    return store


def _context_from_env() -> RuntimeContext:
    jobs = int(os.environ.get("REPRO_JOBS", "1") or "1")
    store_env = os.environ.get("REPRO_RUN_STORE", "")
    store: Optional[RunStore] = None
    if store_env and store_env not in ("0", "off"):
        store = RunStore(default_store_dir())
    rerun = os.environ.get("REPRO_RERUN", "") not in ("", "0", "off")
    return RuntimeContext(jobs=jobs, store=store, rerun=rerun)


_ACTIVE: Optional[RuntimeContext] = None
_LAST_REPORT: Optional[DispatchReport] = None


def active_context() -> RuntimeContext:
    """The context ``dispatch_many`` currently runs under."""
    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = _context_from_env()
    return _ACTIVE


def configure(
    jobs: Optional[int] = None,
    store: Union[RunStore, str, bool, None] = None,
    rerun: Optional[bool] = None,
) -> RuntimeContext:
    """Mutate the active context in place, for scripts and notebooks
    that want a persistent setting instead of a :func:`runtime_context`
    scope (the CLI uses the scoped form).

    ``store`` accepts a :class:`RunStore`, a directory path, ``True``
    (default directory), or ``False`` (disable); ``None`` leaves the
    current store untouched.
    """
    context = active_context()
    if jobs is not None:
        context.jobs = max(1, int(jobs))
    if store is not None:
        context.store = _resolve_store(store)
    if rerun is not None:
        context.rerun = rerun
    return context


@contextmanager
def runtime_context(
    jobs: Optional[int] = None,
    store: Union[RunStore, str, bool, None] = None,
    rerun: Optional[bool] = None,
):
    """Scope a dispatch-context override; restores the previous one.

    Also clears the last-report slot, so a report read inside the scope
    always describes a dispatch that happened inside the scope.
    """
    global _ACTIVE, _LAST_REPORT
    previous = active_context()
    _LAST_REPORT = None
    _ACTIVE = RuntimeContext(
        jobs=max(1, int(jobs)) if jobs is not None else previous.jobs,
        store=previous.store if store is None else _resolve_store(store),
        rerun=previous.rerun if rerun is None else rerun,
    )
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = previous


def dispatch_many(
    space,
    configs: Sequence,
    estimator=None,
    surrogate=None,
    dataset=None,
) -> List:
    """Run a manifest through a scheduler under the active context.

    The runtime-layer counterpart of :func:`repro.core.run_many` (same
    result list, manifest order, seed-for-seed identical values), plus
    store dedupe and multiprocess sharding as configured.
    """
    global _LAST_REPORT
    context = active_context()
    scheduler = Scheduler(
        space,
        estimator,
        store=context.store,
        jobs=context.jobs,
        rerun=context.rerun,
        surrogate=surrogate,
        dataset=dataset,
    )
    results = scheduler.run(configs)
    _LAST_REPORT = scheduler.last_report
    context.reports.append(scheduler.last_report)
    return results


def last_report() -> Optional[DispatchReport]:
    """The report of the most recent :func:`dispatch_many` call."""
    return _LAST_REPORT


def aggregate_report() -> Optional[DispatchReport]:
    """All dispatches under the active context, summed into one report.

    Multi-dispatch drivers (the table1 meta-search issues one dispatch
    per tuning round) would be misrepresented by :func:`last_report`
    alone; this is what the CLI prints.
    """
    reports = active_context().reports
    if not reports:
        return None
    total = DispatchReport(jobs=active_context().jobs)
    for report in reports:
        total.requested += report.requested
        total.store_hits += report.store_hits
        total.executed += report.executed
        total.stored += report.stored
        total.shards += report.shards
    return total
