"""Content-addressed on-disk store of search results.

Layout: ``<root>/<key[:2]>/<key>.json``, one record per run key.  Each
record wraps the full :func:`repro.serialize.result_to_dict` payload
(including the per-epoch history, so a store hit is indistinguishable
from a fresh run) together with the key and a creation timestamp; the
schema version and engine salt live inside the result payload itself
(see :mod:`repro.runtime.engine`).

Writes are atomic (unique temp file in the target directory, then
``os.replace``), so concurrent worker processes can share one store
without ever exposing a half-written record.  Reads treat anything
unparseable, schema-mismatched, or stamped with a different engine
salt as a miss — stale records are never silently returned; ``gc``
deletes them.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from typing import List, Optional

import repro.serialize as _serialize
from repro.runtime.engine import ENGINE_SALT, SCHEMA_VERSION


@dataclass
class StoreEntry:
    """One record's metadata, as listed by :meth:`RunStore.ls`."""

    key: str
    method: str
    platform: str
    space: str
    engine: Optional[str]
    schema_version: int
    created: float
    path: str

    @property
    def stale(self) -> bool:
        """True when the current engine refuses this record."""
        return self.engine != ENGINE_SALT or self.schema_version != SCHEMA_VERSION


class RunStore:
    """Content-addressed store of serialized :class:`SearchResult`\\ s."""

    def __init__(self, root: str) -> None:
        self.root = os.path.abspath(root)

    def path_for(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.json")

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    def get(self, key: str, space=None):
        """The stored result for ``key``, or ``None`` on miss/stale."""
        record = self._read_record(self.path_for(key))
        if record is None or self._is_stale(record):
            return None
        return _serialize.result_from_dict(record["result"], space)

    def __contains__(self, key: str) -> bool:
        record = self._read_record(self.path_for(key))
        return record is not None and not self._is_stale(record)

    def ls(self) -> List[StoreEntry]:
        """All records (including stale ones), sorted by key."""
        entries = []
        for path in self._record_paths():
            record = self._read_record(path)
            if record is None:
                continue
            result = record.get("result", {})
            entries.append(
                StoreEntry(
                    key=record.get("key", os.path.basename(path)[: -len(".json")]),
                    method=result.get("method", "?"),
                    platform=result.get("platform", "?"),
                    space=result.get("arch", {}).get("space", "?"),
                    engine=result.get("engine"),
                    schema_version=result.get("schema_version", 0),
                    created=record.get("created", 0.0),
                    path=path,
                )
            )
        return sorted(entries, key=lambda e: e.key)

    def __len__(self) -> int:
        return sum(1 for _ in self._record_paths())

    # ------------------------------------------------------------------
    # Write side
    # ------------------------------------------------------------------
    def put(self, key: str, result) -> str:
        """Atomically write ``result`` under ``key``; returns the path."""
        path = self.path_for(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        record = {
            "key": key,
            "created": time.time(),
            "result": _serialize.result_to_dict(result),
        }
        tmp = f"{path}.{os.getpid()}.tmp"
        with open(tmp, "w") as handle:
            json.dump(record, handle, indent=1)
        os.replace(tmp, path)
        return path

    def invalidate(self, prefix: str) -> int:
        """Delete records whose key starts with ``prefix``; returns count."""
        if not prefix:
            raise ValueError("empty prefix would invalidate nothing on purpose; "
                             "use clear() to drop the whole store")
        removed = 0
        for path in self._record_paths():
            if os.path.basename(path).startswith(prefix):
                os.remove(path)
                removed += 1
        return removed

    def clear(self) -> int:
        """Delete every record; returns the count."""
        removed = 0
        for path in self._record_paths():
            os.remove(path)
            removed += 1
        return removed

    def gc(self) -> int:
        """Delete stale records (old engine/schema, unreadable, leftover
        temp files); returns the count removed."""
        removed = 0
        if not os.path.isdir(self.root):
            return 0
        for dirpath, _, filenames in os.walk(self.root):
            for name in filenames:
                path = os.path.join(dirpath, name)
                if name.endswith(".tmp"):
                    os.remove(path)
                    removed += 1
                    continue
                if not name.endswith(".json"):
                    continue
                record = self._read_record(path)
                if record is None or self._is_stale(record):
                    os.remove(path)
                    removed += 1
        return removed

    # ------------------------------------------------------------------
    @staticmethod
    def _is_stale(record: dict) -> bool:
        result = record.get("result", {})
        return (
            result.get("schema_version", 0) != SCHEMA_VERSION
            or result.get("engine") != ENGINE_SALT
        )

    @staticmethod
    def _read_record(path: str) -> Optional[dict]:
        try:
            with open(path) as handle:
                return json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None

    def _record_paths(self) -> List[str]:
        if not os.path.isdir(self.root):
            return []
        paths = []
        for dirpath, _, filenames in os.walk(self.root):
            for name in sorted(filenames):
                if name.endswith(".json"):
                    paths.append(os.path.join(dirpath, name))
        return paths
