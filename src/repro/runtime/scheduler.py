"""The run scheduler: dedupe against the store, shard, merge.

Given a manifest (an ordered list of :class:`SearchConfig`), the
scheduler

1. computes each run's content key (:mod:`repro.runtime.keys`) and
   serves every key already in the :class:`RunStore` from disk;
2. groups the misses by the fleet's ``_structure_key`` (only
   structurally identical loss graphs batch together — same rule the
   fleet itself applies);
3. with ``jobs > 1``, splits each group into deterministic sub-batches
   of ``ceil(len(group) / jobs)`` runs and executes the sub-batches
   across worker processes via :class:`ProcessPoolExecutor`;
4. merges everything back in manifest order and writes fresh results
   to the store.

Sharding parity: a sharded execution is **bitwise identical** to a
single-process :func:`repro.core.run_many` over the same manifest.
This is a consequence of the fleet's GEMM layout — every run occupies
its own ``(N, 1, F)`` matmul slot, so splitting a structure group into
sub-batches changes only the Python loop shape, not a single float —
plus exact JSON float round-tripping on the worker boundary.  Pinned
by ``tests/test_runtime.py`` and a CI job.

Worker processes resolve estimators through
``repro.experiments.common.get_estimator`` (the multiprocess-safe disk
cache); the parent warms that cache before spawning workers, and
refuses to shard a manifest whose caller-supplied estimator does not
match the cache (a foreign estimator cannot cross the process
boundary).  Full-fidelity runs and runs with a caller-supplied
surrogate/dataset always execute in the parent process.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import repro.serialize as _serialize
from repro.arch import SearchSpace
from repro.core.coexplore import SearchConfig
from repro.core.fleet import _structure_key, run_many
from repro.core.result import SearchResult
from repro.estimator.estimator import CostEstimator
from repro.runtime.keys import estimator_fingerprint, run_key
from repro.runtime.store import RunStore


@dataclass
class DispatchReport:
    """What one scheduler dispatch did (exposed for tests/CI/CLI)."""

    requested: int = 0
    store_hits: int = 0
    executed: int = 0
    stored: int = 0
    jobs: int = 1
    shards: int = 0
    keys: Dict[int, str] = field(default_factory=dict)

    def summary(self) -> str:
        return (
            f"[runtime] requested={self.requested} hits={self.store_hits} "
            f"executed={self.executed} stored={self.stored} "
            f"jobs={self.jobs} shards={self.shards}"
        )


def _worker_run_shard(space_name: str, configs: List[SearchConfig]) -> List[dict]:
    """Execute one sub-batch in a worker process.

    Results cross the process boundary as serialized dicts — the JSON
    form round-trips every float exactly (shortest-repr), so the
    parent's reconstruction is bitwise identical to an in-process run.
    """
    from repro.experiments.common import get_estimator, get_space

    space = get_space(space_name)
    estimators = {
        platform: get_estimator(space_name, platform=platform)
        for platform in {config.platform for config in configs}
    }
    return [_serialize.result_to_dict(r) for r in run_many(space, estimators, configs)]


class Scheduler:
    """Dedupe a run manifest against the store and execute the misses.

    ``estimator`` may be a single :class:`CostEstimator`, a
    ``{platform: estimator}`` mapping, or ``None`` — in which case
    estimators are resolved per platform from the shared estimator
    cache (``repro.experiments.common.get_estimator``), which is what
    every experiment driver wants and what worker processes use.
    """

    def __init__(
        self,
        space: SearchSpace,
        estimator: Union[CostEstimator, Mapping[str, CostEstimator], None] = None,
        *,
        store: Optional[RunStore] = None,
        jobs: int = 1,
        rerun: bool = False,
        surrogate=None,
        dataset=None,
    ) -> None:
        self.space = space
        self.estimator = estimator
        self.store = store
        self.jobs = max(1, int(jobs))
        self.rerun = rerun
        self.surrogate = surrogate
        self.dataset = dataset
        self.last_report: Optional[DispatchReport] = None
        self._fingerprints: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Estimator resolution
    # ------------------------------------------------------------------
    def _estimator_for(self, platform: str) -> CostEstimator:
        if self.estimator is None:
            from repro.experiments.common import get_estimator

            return get_estimator(self.space.name, platform=platform)
        if isinstance(self.estimator, Mapping):
            try:
                return self.estimator[platform]
            except KeyError:
                raise ValueError(
                    f"no estimator supplied for platform {platform!r}; "
                    f"have {sorted(self.estimator)}"
                ) from None
        return self.estimator

    def _fingerprint(self, platform: str) -> str:
        if platform not in self._fingerprints:
            self._fingerprints[platform] = estimator_fingerprint(
                self._estimator_for(platform)
            )
        return self._fingerprints[platform]

    # ------------------------------------------------------------------
    # The dispatch
    # ------------------------------------------------------------------
    def run(self, configs: Sequence[SearchConfig]) -> List[SearchResult]:
        """Execute the manifest; results come back in manifest order."""
        configs = list(configs)
        # Fail the whole dispatch up front on a workload/space mismatch
        # (or an unregistered workload) instead of mid-shard in a
        # worker process.
        from repro.core.coexplore import resolve_workload

        for config in configs:
            resolve_workload(self.space, config)
        report = DispatchReport(requested=len(configs), jobs=self.jobs)
        results: List[Optional[SearchResult]] = [None] * len(configs)
        keys: List[Optional[str]] = [None] * len(configs)
        pending: List[int] = []

        for index, config in enumerate(configs):
            if self._cacheable(config):
                key = run_key(
                    config,
                    space=self.space.name,
                    estimator_fingerprint=self._fingerprint(config.platform),
                )
                keys[index] = key
                report.keys[index] = key
                if not self.rerun:
                    hit = self.store.get(key, space=self.space)
                    if hit is not None:
                        results[index] = hit
                        report.store_hits += 1
                        continue
            pending.append(index)

        report.executed = len(pending)
        if pending:
            executed = self._execute([configs[i] for i in pending], report)
            for index, result in zip(pending, executed):
                results[index] = result
                if keys[index] is not None:
                    self.store.put(keys[index], result)
                    report.stored += 1

        self.last_report = report
        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]

    def _cacheable(self, config: SearchConfig) -> bool:
        """Only canonical surrogate-fidelity runs are content-addressed.

        A caller-supplied surrogate or dataset perturbs the result in
        ways the key does not cover, and full-fidelity runs depend on
        the training data — those always execute and are never stored.
        """
        return (
            self.store is not None
            and self.surrogate is None
            and self.dataset is None
            and config.fidelity == "surrogate"
        )

    # ------------------------------------------------------------------
    # Execution (single-process or sharded)
    # ------------------------------------------------------------------
    def _execute(
        self, configs: List[SearchConfig], report: DispatchReport
    ) -> List[SearchResult]:
        platforms = {c.platform for c in configs}
        if self.jobs > 1 and self.estimator is None:
            # Cold estimator caches are the dominant multi-platform
            # cold-start cost; pre-train the missing ones in parallel
            # workers (file-locked, atomic) before the parent loads them.
            from repro.experiments.common import warm_estimator_caches

            warm_estimator_caches(
                self.space.name, platforms=sorted(platforms), jobs=self.jobs
            )
        estimators = {
            platform: self._estimator_for(platform) for platform in platforms
        }
        shardable = [
            i
            for i, c in enumerate(configs)
            if c.fidelity == "surrogate"
            and self.surrogate is None
            and self.dataset is None
        ]
        shards = self._plan_shards([configs[i] for i in shardable])
        if self.jobs <= 1 or len(shards) <= 1:
            report.shards = min(1, len(configs))
            return run_many(
                self.space,
                estimators,
                configs,
                surrogate=self.surrogate,
                dataset=self.dataset,
            )

        self._check_estimators_shardable(estimators)
        results: List[Optional[SearchResult]] = [None] * len(configs)

        # Full-fidelity / custom-context stragglers stay in the parent.
        shardable_set = set(shardable)
        local = [i for i in range(len(configs)) if i not in shardable_set]
        if local:
            for i, result in zip(
                local,
                run_many(
                    self.space,
                    estimators,
                    [configs[i] for i in local],
                    surrogate=self.surrogate,
                    dataset=self.dataset,
                ),
            ):
                results[i] = result

        report.shards = len(shards) + (1 if local else 0)
        from repro.runtime import worker_pool

        with worker_pool(self.jobs, len(shards)) as pool:
            futures = [
                pool.submit(
                    _worker_run_shard,
                    self.space.name,
                    [configs[shardable[j]] for j in shard],
                )
                for shard in shards
            ]
            for shard, future in zip(shards, futures):
                for j, payload in zip(shard, future.result()):
                    results[shardable[j]] = _serialize.result_from_dict(
                        payload, self.space
                    )
        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]

    def _plan_shards(self, configs: List[SearchConfig]) -> List[List[int]]:
        """Deterministic sub-batches: group by structure, chunk by jobs.

        Groups keep first-appearance order; each group is split into
        contiguous chunks of ``ceil(len(group) / jobs)`` runs, so the
        plan depends only on the manifest and the job count.
        """
        groups: Dict[Tuple, List[int]] = {}
        for index, config in enumerate(configs):
            groups.setdefault(_structure_key(config), []).append(index)
        shards: List[List[int]] = []
        for members in groups.values():
            chunk = max(1, math.ceil(len(members) / self.jobs))
            for start in range(0, len(members), chunk):
                shards.append(members[start : start + chunk])
        return shards

    def _check_estimators_shardable(
        self, estimators: Mapping[str, CostEstimator]
    ) -> None:
        """Sharded workers rebuild estimators from the shared cache;
        refuse if the caller's estimator is not the cached one."""
        if self.estimator is None:
            return
        from repro.experiments.common import get_estimator

        for platform, estimator in estimators.items():
            cached = get_estimator(self.space.name, platform=platform)
            if cached is estimator:
                continue
            if estimator_fingerprint(cached) != estimator_fingerprint(estimator):
                raise ValueError(
                    f"jobs={self.jobs} requires estimators from the shared "
                    f"estimator cache (worker processes rebuild them via "
                    f"get_estimator), but the supplied {platform!r} estimator "
                    f"differs from the cached one; pass estimator=None or "
                    f"run with jobs=1"
                )
