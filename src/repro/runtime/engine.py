"""Engine identity constants shared by run keys and serialization.

This is deliberately a leaf module (no repro imports): both
:mod:`repro.serialize` and the runtime layer need these constants, and
keeping them dependency-free avoids an import cycle between the two.

``ENGINE_SALT`` names the *numerical behaviour* of the search engine.
Two runs with identical :class:`~repro.core.SearchConfig`, platform,
and estimator weights still produce different results if the engine's
math changed between them — so the salt is part of every run key and
is stamped into every serialized :class:`~repro.core.SearchResult`.

Bump rule (see DESIGN.md "Runtime layer"): bump the salt whenever a
change alters what a search *computes* without changing the
``SearchConfig`` schema or the estimator weights — i.e. whenever any
row of the DESIGN.md mirror table is touched (scalar/fleet search
math, estimator/generator forwards, the surrogate, decode repair, the
analytical cost model, a platform definition).  Do NOT bump for pure
refactors, new config fields (the key covers every field already), or
driver/CLI changes.  A bump makes the run store refuse every existing
entry (they become stale-engine records, removable with
``repro runs gc``).
"""

#: Version tag of the search engine's numerical behaviour.
ENGINE_SALT = "hdx-engine-v1"

#: Version of the serialized SearchResult JSON schema.  Files written
#: before the field existed load as version 0 (no history, no engine
#: stamp); the run store only trusts records at the current version
#: carrying the current ``ENGINE_SALT``.
SCHEMA_VERSION = 1

#: Version of the run-key payload layout itself (field encoding, hash
#: construction).  Changing how keys are computed bumps this, which —
#: like an engine-salt bump — orphans existing store entries.
RUN_KEY_VERSION = 1
