"""Canonical, process-stable run keys.

A *run key* is the content address of one search run: a SHA-256 over a
canonical JSON encoding of everything the run's result depends on —

* every field of the :class:`~repro.core.SearchConfig` (walked via
  ``dataclasses.fields``, so a newly added knob automatically enters
  the key and old keys go stale instead of aliasing) — with one
  deliberate exception: the ``workload`` field is omitted while it is
  the derived default (empty, or equal to the dispatching space's
  name), because the ``space`` entry below *is* the workload identity
  (workload name == space name by registry invariant).  Keys written
  before the workload layer existed therefore stay valid, and an
  explicit ``workload="cifar10"`` hits the same record as the derived
  form;
* the search-space name (== workload name) and the target platform;
* the estimator fingerprint (a hash of the trained weights, buffers,
  space, and platform — a re-trained estimator changes every key);
* the engine salt and key-layout version from
  :mod:`repro.runtime.engine`.

Keys must be stable across interpreter restarts and machines, so the
encoding never uses Python ``hash()``: floats are rendered with
``float.hex()`` (exact, locale-independent), dicts are sorted, and the
JSON is dumped with sorted keys and fixed separators.  Golden-hash
tests in ``tests/test_runtime.py`` pin the layout.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import fields
from typing import Dict

import numpy as np

from repro.core.constraints import ConstraintSet
from repro.core.coexplore import SearchConfig
from repro.runtime.engine import ENGINE_SALT, RUN_KEY_VERSION


def _canonical(value):
    """JSON-safe, deterministic encoding of one config field value."""
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        return float(value).hex()
    if isinstance(value, ConstraintSet):
        # Constraint order is structural (it fixes the loss-graph term
        # order), so it is preserved, not sorted.
        return [[c.metric, float(c.bound).hex()] for c in value]
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    raise TypeError(
        f"cannot canonicalize {type(value).__name__!r} for a run key; "
        f"teach repro.runtime.keys._canonical about it"
    )


def config_payload(config: SearchConfig) -> Dict:
    """Canonical dict of every ``SearchConfig`` field.

    The ``workload`` field is skipped while empty (the derived
    default): the run key's top-level ``space`` entry already names the
    workload, and omitting the default keeps every pre-workload-layer
    key valid.  :func:`run_key` additionally drops an explicit workload
    that merely restates the space, so both spellings share one key.
    """
    payload = {}
    for f in fields(config):
        value = getattr(config, f.name)
        if f.name == "workload" and not value:
            continue
        payload[f.name] = _canonical(value)
    return payload


def estimator_fingerprint(estimator) -> str:
    """Content hash of a trained estimator (weights + buffers + binding).

    Covers the search space name, the platform the estimator was fit
    to, and every array in ``state_dict()`` (parameters and the target
    normalization buffers), so re-training, re-seeding, or re-binding
    the estimator yields a different fingerprint — and therefore
    different run keys.
    """
    digest = hashlib.sha256()
    digest.update(
        f"space={estimator.space.name};platform={estimator.platform};".encode()
    )
    for name, array in sorted(estimator.state_dict().items()):
        array = np.ascontiguousarray(array)
        digest.update(f"{name}:{array.dtype.str}:{array.shape};".encode())
        digest.update(array.tobytes())
    return digest.hexdigest()[:16]


def run_key(config: SearchConfig, space: str, estimator_fingerprint: str) -> str:
    """The content address of one search run (64 hex chars)."""
    cfg_payload = config_payload(config)
    if cfg_payload.get("workload") == space:
        # An explicit workload equal to the space is the derived
        # default spelled out; normalize so both produce one key.
        del cfg_payload["workload"]
    payload = {
        "run_key_version": RUN_KEY_VERSION,
        "engine": ENGINE_SALT,
        "space": space,
        "platform": config.platform,
        "estimator": estimator_fingerprint,
        "config": cfg_payload,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()
