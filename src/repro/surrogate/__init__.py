"""Differentiable accuracy surrogate for benchmark-scale searches.

The authors spend GPU-hours training the supernet per search; the
benchmark harness replays their experiments hundreds of times, so it
swaps the supernet loss for a calibrated differentiable surrogate of
``Loss_NAS(alpha)`` while keeping every other code path (estimator,
generator, gradient manipulation, optimizers) identical.
"""

from repro.surrogate.accuracy import AccuracySurrogate, AccuracySurrogateFleet

__all__ = ["AccuracySurrogate", "AccuracySurrogateFleet"]
