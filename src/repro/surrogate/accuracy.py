"""Calibrated accuracy / NAS-loss surrogate.

The surrogate maps an architecture distribution to an expected
classification error through a smooth capacity model:

* each (layer, candidate) pair has a capacity score — larger kernels
  and expand ratios score higher, skip scores zero, and layers carry
  seeded heterogeneous importance weights;
* expected error decays with total capacity with diminishing returns
  (a scaled sigmoid), calibrated so CIFAR errors land in the paper's
  ~4-8% band and ImageNet-like errors in the ~24-30% band;
* ``Loss_NAS`` is an affine map of expected error calibrated against
  the paper's reported loss values (~0.62-0.65 CIFAR, ~2.0 ImageNet).

The gradient field rewards capacity, which conflicts with hardware
cost — exactly the tension the HDX gradient manipulation resolves.

The surrogate is **platform-independent by construction**: it models
classification accuracy, a property of the network alone, so the same
surrogate (and the same fleet stack) serves searches against every
registered hardware platform.  The platform enters the loss only
through the estimator's Cost_HW term and the constraint pass.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence, Union

import numpy as np

from repro.autodiff import Tensor, as_tensor
from repro.arch import NetworkArch, SearchSpace
from repro.arch.encoding import arch_features_from_indices

KERNEL_GAIN = {0: 0.0, 3: 1.0, 5: 1.30, 7: 1.50}
EXPAND_GAIN = {0: 0.0, 3: 1.0, 6: 1.35}


class AccuracySurrogate:
    """Differentiable ``Loss_NAS`` and expected-error model over alpha."""

    def __init__(
        self,
        space: SearchSpace,
        seed: int = 0,
        landscape_jitter: float = 0.0,
        jitter_seed: int = 0,
        calibration: Optional[Mapping[str, float]] = None,
    ) -> None:
        """``seed`` fixes the canonical task; ``landscape_jitter`` adds a
        per-search perturbation of the score table, emulating how each
        real search run sees a slightly different empirical loss
        landscape (init, minibatch order, augmentation).

        The error/loss calibration comes from the workload registry
        (:mod:`repro.workload`), keyed by the space's name — an
        unregistered name is a loud error, not a silent CIFAR-10
        fallback.  Pass ``calibration`` explicitly to build a surrogate
        over an unregistered space (ad-hoc experiments, tests).
        """
        self.space = space
        if calibration is None:
            from repro.workload import workload_calibration

            calibration = workload_calibration(space.name)
        self.calibration = calibration
        rng = np.random.default_rng(seed)
        # Heterogeneous layer importance: some layers matter more.
        layer_weight = rng.uniform(0.5, 1.5, size=space.num_layers)
        scores = np.zeros((space.num_layers, space.num_choices))
        for li, spec in enumerate(space.layers):
            for ci, choice in enumerate(spec.candidates()):
                base = KERNEL_GAIN[choice.kernel] * EXPAND_GAIN[choice.expand]
                # Mild per-slot idiosyncrasy so rankings are not uniform.
                jitter = rng.uniform(0.9, 1.1)
                scores[li, ci] = layer_weight[li] * base * jitter
        if landscape_jitter > 0:
            jrng = np.random.default_rng(jitter_seed)
            scores = scores * (
                1.0 + landscape_jitter * jrng.uniform(-1.0, 1.0, size=scores.shape)
            )
        self._scores = scores
        self._max_capacity = float(
            np.sum([scores[li].max() for li in range(space.num_layers)])
        )

    # ------------------------------------------------------------------
    def capacity(self, probs: Union[Tensor, np.ndarray]) -> Tensor:
        """Expected capacity of an architecture distribution (L*C flat)."""
        probs = as_tensor(probs)
        weighted = probs.reshape(self.space.num_layers, self.space.num_choices) * self._scores
        return weighted.sum()

    def expected_error(self, probs: Union[Tensor, np.ndarray]) -> Tensor:
        """Expected test error (%) — differentiable, sigmoid-saturating."""
        cal = self.calibration
        cap = self.capacity(probs)
        midpoint = cal["cap_frac"] * self._max_capacity
        scale = cal["cap_scale"] * self._max_capacity
        # err = floor + spread * sigmoid(-(cap - mid)/scale)
        z = (cap - midpoint) * (1.0 / scale)
        return cal["err_floor"] + cal["err_spread"] * (-z).sigmoid()

    def loss_nas(self, probs: Union[Tensor, np.ndarray]) -> Tensor:
        """Differentiable surrogate of the supernet validation loss."""
        cal = self.calibration
        return self.expected_error(probs) * cal["loss_scale"] + cal["loss_bias"]

    # ------------------------------------------------------------------
    # Discrete-architecture reporting helpers
    # ------------------------------------------------------------------
    def _one_hot(self, arch: NetworkArch) -> np.ndarray:
        return arch_features_from_indices(self.space, arch.to_indices())

    def error_of(self, arch: NetworkArch) -> float:
        """Noise-free expected error of a discrete architecture."""
        return float(self.expected_error(self._one_hot(arch)).item())

    def trained_error(self, arch: NetworkArch, seed: int = 0) -> float:
        """Simulated from-scratch training outcome: expected error plus
        seeded training noise (the paper reports +/- ~0.1)."""
        rng = np.random.default_rng(hash((arch.choices, seed)) % (2**32))
        return self.error_of(arch) + rng.normal(0.0, self.calibration["noise_std"])

    def loss_of(self, arch: NetworkArch) -> float:
        return float(self.loss_nas(self._one_hot(arch)).item())


class AccuracySurrogateFleet:
    """Run-axis batched ``Loss_NAS`` over N per-run jittered surrogates.

    Each search run sees its own jittered loss landscape (see
    :class:`AccuracySurrogate`); the fleet stacks the per-run score
    tables and evaluates all runs in one pass.  Capacity reduces over
    trailing axes and everything else is elementwise, so each run's
    loss (and gradient) is bitwise identical to its scalar surrogate.
    """

    def __init__(self, surrogates: Sequence[AccuracySurrogate]) -> None:
        if not surrogates:
            raise ValueError("AccuracySurrogateFleet needs at least one surrogate")
        self.space = surrogates[0].space
        self.calibration = surrogates[0].calibration
        self._scores = np.stack([s._scores for s in surrogates])  # (N, L, C)
        self._max_capacity = np.array([s._max_capacity for s in surrogates])

    def capacity(self, probs: Union[Tensor, np.ndarray]) -> Tensor:
        """Expected capacities of N architecture distributions (N, L*C)."""
        probs = as_tensor(probs)
        n = probs.shape[0]
        weighted = (
            probs.reshape(n, self.space.num_layers, self.space.num_choices)
            * self._scores
        )
        return weighted.sum(axis=(1, 2))

    def expected_error(self, probs: Union[Tensor, np.ndarray]) -> Tensor:
        """Expected test errors (%), shape (N,) — differentiable."""
        cal = self.calibration
        cap = self.capacity(probs)
        midpoint = cal["cap_frac"] * self._max_capacity
        scale = cal["cap_scale"] * self._max_capacity
        z = (cap - midpoint) * (1.0 / scale)
        return cal["err_floor"] + cal["err_spread"] * (-z).sigmoid()

    def loss_nas(self, probs: Union[Tensor, np.ndarray]) -> Tensor:
        """Per-run differentiable surrogate losses, shape (N,)."""
        cal = self.calibration
        return self.expected_error(probs) * cal["loss_scale"] + cal["loss_bias"]
