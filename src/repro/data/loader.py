"""Mini-batch iteration and dataset splitting."""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro.data.synthetic import SyntheticImageDataset
from repro.data.augment import RandomAugment


def train_val_split(
    dataset: SyntheticImageDataset,
    val_fraction: float = 0.5,
    seed: int = 0,
) -> Tuple[SyntheticImageDataset, SyntheticImageDataset]:
    """Shuffle and split into train/validation subsets.

    Differentiable NAS uses the train split for supernet weights ``w``
    and the validation split for architecture parameters ``alpha``.
    """
    if not 0.0 < val_fraction < 1.0:
        raise ValueError("val_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(dataset))
    n_val = int(len(dataset) * val_fraction)
    return dataset.subset(order[n_val:]), dataset.subset(order[:n_val])


class DataLoader:
    """Shuffling mini-batch iterator with optional augmentation."""

    def __init__(
        self,
        dataset: SyntheticImageDataset,
        batch_size: int = 64,
        shuffle: bool = True,
        augment: Optional[RandomAugment] = None,
        seed: int = 0,
        drop_last: bool = False,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.augment = augment
        self.drop_last = drop_last
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        order = (
            self._rng.permutation(len(self.dataset))
            if self.shuffle
            else np.arange(len(self.dataset))
        )
        for start in range(0, len(order), self.batch_size):
            idx = order[start : start + self.batch_size]
            if self.drop_last and len(idx) < self.batch_size:
                return
            images = self.dataset.images[idx]
            if self.augment is not None:
                images = self.augment(images)
            yield images, self.dataset.labels[idx]
