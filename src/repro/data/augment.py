"""Train-time augmentation — AutoAugment substitute.

The paper augments with AutoAugment policies; offline we compose the
standard primitives those policies are built from (flip, shifted crop,
cutout, brightness jitter) with random strengths.
"""

from __future__ import annotations

import numpy as np


class RandomAugment:
    """Randomly composed augmentation applied to an NCHW batch."""

    def __init__(
        self,
        flip_prob: float = 0.5,
        max_shift: int = 2,
        cutout_size: int = 4,
        cutout_prob: float = 0.5,
        brightness: float = 0.1,
        seed: int = 0,
    ) -> None:
        self.flip_prob = flip_prob
        self.max_shift = max_shift
        self.cutout_size = cutout_size
        self.cutout_prob = cutout_prob
        self.brightness = brightness
        self._rng = np.random.default_rng(seed)

    def __call__(self, images: np.ndarray) -> np.ndarray:
        rng = self._rng
        out = images.copy()
        n, _, h, w = out.shape
        for i in range(n):
            if rng.random() < self.flip_prob:
                out[i] = out[i, :, :, ::-1]
            if self.max_shift > 0:
                dy, dx = rng.integers(-self.max_shift, self.max_shift + 1, size=2)
                out[i] = np.roll(np.roll(out[i], dy, axis=1), dx, axis=2)
            if self.cutout_size > 0 and rng.random() < self.cutout_prob:
                cy = rng.integers(0, h)
                cx = rng.integers(0, w)
                half = self.cutout_size // 2
                y0, y1 = max(0, cy - half), min(h, cy + half)
                x0, x1 = max(0, cx - half), min(w, cx + half)
                out[i, :, y0:y1, x0:x1] = 0.0
            if self.brightness > 0:
                out[i] += rng.uniform(-self.brightness, self.brightness)
        return out
