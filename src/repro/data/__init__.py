"""Synthetic image-classification datasets (CIFAR/ImageNet substitutes).

Real CIFAR-10/ImageNet are unavailable offline, so these generators
produce class-conditional textured images that a small convolutional
network can learn but a linear model cannot master — preserving the
accuracy-vs-capacity trade-off that drives the NAS loss.
"""

from repro.data.synthetic import (
    SyntheticImageDataset,
    cifar10_like,
    imagenet_like,
    synthetic_dataset,
)
from repro.data.loader import DataLoader, train_val_split
from repro.data.augment import RandomAugment

__all__ = [
    "SyntheticImageDataset",
    "cifar10_like",
    "imagenet_like",
    "synthetic_dataset",
    "DataLoader",
    "train_val_split",
    "RandomAugment",
]
