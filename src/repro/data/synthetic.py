"""Class-conditional synthetic image generators.

Each class is defined by a set of oriented sinusoidal gratings plus a
class-specific colour bias; samples perturb phase, position, and add
pixel noise.  The signal is spatially structured, so convolutions with
appropriate receptive fields help — mirroring how kernel size / depth
affect accuracy on natural images.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np


@dataclass
class SyntheticImageDataset:
    """A fixed array dataset of images and integer labels.

    Attributes
    ----------
    images:
        Array of shape (N, C, H, W), roughly standardized.
    labels:
        Integer array of shape (N,).
    num_classes:
        Number of distinct labels.
    name:
        Human-readable identifier ("cifar10-like", ...).
    """

    images: np.ndarray
    labels: np.ndarray
    num_classes: int
    name: str = "synthetic"

    def __post_init__(self) -> None:
        if len(self.images) != len(self.labels):
            raise ValueError("images and labels must have equal length")

    def __len__(self) -> int:
        return len(self.labels)

    @property
    def image_shape(self) -> Tuple[int, int, int]:
        return tuple(self.images.shape[1:])

    def subset(self, indices: np.ndarray) -> "SyntheticImageDataset":
        return SyntheticImageDataset(
            self.images[indices], self.labels[indices], self.num_classes, self.name
        )


def _class_prototypes(
    num_classes: int,
    channels: int,
    size: int,
    rng: np.random.Generator,
    gratings_per_class: int = 2,
) -> np.ndarray:
    """Build one prototype image per class from oriented gratings."""
    yy, xx = np.mgrid[0:size, 0:size].astype(np.float64) / size
    prototypes = np.zeros((num_classes, channels, size, size))
    for cls in range(num_classes):
        image = np.zeros((channels, size, size))
        for _ in range(gratings_per_class):
            theta = rng.uniform(0, np.pi)
            freq = rng.uniform(2.0, 5.0)
            phase = rng.uniform(0, 2 * np.pi)
            wave = np.sin(2 * np.pi * freq * (np.cos(theta) * xx + np.sin(theta) * yy) + phase)
            colour = rng.uniform(-1.0, 1.0, size=channels)
            image += colour[:, None, None] * wave
        # Class-specific blob: localized Gaussian bump.
        cy, cx = rng.uniform(0.2, 0.8, size=2)
        sigma = rng.uniform(0.1, 0.25)
        bump = np.exp(-(((yy - cy) ** 2 + (xx - cx) ** 2) / (2 * sigma**2)))
        colour = rng.uniform(-1.5, 1.5, size=channels)
        image += colour[:, None, None] * bump
        prototypes[cls] = image
    return prototypes


def _generate(
    n_samples: int,
    num_classes: int,
    channels: int,
    size: int,
    noise: float,
    seed: int,
    name: str,
) -> SyntheticImageDataset:
    rng = np.random.default_rng(seed)
    prototypes = _class_prototypes(num_classes, channels, size, rng)
    labels = rng.integers(0, num_classes, size=n_samples)
    images = np.empty((n_samples, channels, size, size))
    for i, cls in enumerate(labels):
        base = prototypes[cls]
        # Random circular shift emulates object translation.
        dy, dx = rng.integers(-size // 4, size // 4 + 1, size=2)
        shifted = np.roll(np.roll(base, dy, axis=1), dx, axis=2)
        images[i] = shifted + rng.standard_normal(base.shape) * noise
    # Standardize globally so training starts well-conditioned.
    images -= images.mean()
    images /= images.std() + 1e-12
    return SyntheticImageDataset(images, labels, num_classes, name)


def synthetic_dataset(
    n_samples: int,
    num_classes: int,
    size: int,
    noise: float,
    seed: int,
    name: str = "synthetic",
    channels: int = 3,
) -> SyntheticImageDataset:
    """Generic class-conditional generator, parameterized per workload.

    ``cifar10_like``/``imagenet_like`` are fixed instantiations of
    this; the workload registry (:mod:`repro.workload`) calls it with
    each workload's class count, training resolution, and noise/seed
    constants, so registering a new workload needs no new generator
    function here.
    """
    return _generate(n_samples, num_classes, channels, size, noise, seed, name)


def cifar10_like(
    n_samples: int = 2000,
    size: int = 16,
    noise: float = 0.6,
    seed: int = 0,
) -> SyntheticImageDataset:
    """CIFAR-10 substitute: 10 classes, 3 channels, small images.

    Default spatial size is 16 (instead of 32) to keep offline CPU
    training fast; pass ``size=32`` for the full-fidelity shape.
    """
    return _generate(n_samples, 10, 3, size, noise, seed, "cifar10-like")


def imagenet_like(
    n_samples: int = 2000,
    size: int = 24,
    num_classes: int = 20,
    noise: float = 0.7,
    seed: int = 1,
) -> SyntheticImageDataset:
    """ImageNet substitute: more classes and larger images than CIFAR.

    The real dataset has 1000 classes at 224x224; this keeps the
    relative relationship (harder task, bigger inputs) at offline scale.
    """
    return _generate(n_samples, num_classes, 3, size, noise, seed, "imagenet-like")
