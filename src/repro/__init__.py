"""HDX reproduction: hard-constrained differentiable co-exploration.

Reproduces "Enabling Hard Constraints in Differentiable Neural Network
and Accelerator Co-Exploration" (Hong et al., DAC 2022) from scratch in
NumPy: autodiff engine, NN library, NAS supernet, a registry of
hardware platforms (Eyeriss-style default plus edge and TPU-like
targets) with per-platform analytical cost models, a registry of
workloads (the paper's CIFAR-10/ImageNet plus CIFAR-100 and
keyword-spotting spaces — ``repro/workload.py``), learned
estimator/generator, the HDX gradient manipulation, baselines, and the
full experiment/benchmark harness, topped by an experiment runtime
(content-addressed run store, multiprocess fleet sharding, resumable
drivers — ``repro/runtime/``) and a workload x platform campaign
driver.

See README.md for usage and DESIGN.md for the system inventory.
"""

__version__ = "1.0.0"
