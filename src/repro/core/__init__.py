"""HDX core: hard-constrained differentiable co-exploration.

The package implements the paper's contribution (Sec. 4):

* :mod:`repro.core.constraints` — hard-constraint definitions and the
  constraint loss ``Const = sum_i max(t_i - T_i, 0)`` (Eqs. 5/9);
* :mod:`repro.core.gradmanip` — the conditional gradient manipulation
  and minimum-norm correction ``m*`` (Eqs. 4/7/8);
* :mod:`repro.core.delta` — the delta schedule driven by the pulling
  magnitude ``p`` (grow by ``1+p`` while violated, reset on success);
* :mod:`repro.core.coexplore` — the co-exploration loop tying the
  supernet / surrogate, generator, and estimator together.
"""

from repro.core.constraints import Constraint, ConstraintSet
from repro.core.delta import DeltaPolicy
from repro.core.gradmanip import (
    flatten_gradients,
    manipulate_gradient,
    minimum_norm_correction,
    unflatten_gradient,
)
from repro.core.coexplore import CoExplorer, SearchConfig
from repro.core.fleet import SearchFleet, run_many
from repro.core.result import EpochRecord, SearchResult

__all__ = [
    "SearchFleet",
    "run_many",
    "Constraint",
    "ConstraintSet",
    "DeltaPolicy",
    "manipulate_gradient",
    "minimum_norm_correction",
    "flatten_gradients",
    "unflatten_gradient",
    "CoExplorer",
    "SearchConfig",
    "SearchResult",
    "EpochRecord",
]
