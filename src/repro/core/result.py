"""Search result and history records."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.accelerator import AcceleratorConfig, HardwareMetrics
from repro.arch import NetworkArch
from repro.core.constraints import ConstraintSet


@dataclass
class EpochRecord:
    """One co-exploration epoch of telemetry (drives Fig. 4)."""

    epoch: int
    loss_nas: float
    cost_hw: float
    global_loss: float
    predicted_latency_ms: float
    predicted_energy_mj: float
    predicted_area_mm2: float
    delta: float
    violated: bool
    manipulated_alpha: bool
    manipulated_v: bool


@dataclass
class SearchResult:
    """Outcome of one co-exploration run.

    ``metrics`` are ground-truth values from the analytical oracle
    (the paper's "direct evaluation from Timeloop and Accelergy"),
    never the estimator's predictions.
    """

    arch: NetworkArch
    config: AcceleratorConfig
    metrics: HardwareMetrics
    error_percent: float
    loss_nas: float
    cost: float
    constraints: ConstraintSet
    in_constraint: bool
    history: List[EpochRecord] = field(default_factory=list)
    method: str = "HDX"
    #: Hardware platform the search targeted (and the metrics refer to).
    platform: str = "eyeriss"

    def summary(self) -> str:
        flag = "OK " if self.in_constraint else "VIOL"
        target = "" if self.platform == "eyeriss" else f" @ {self.platform}"
        return (
            f"[{self.method}] {flag} {self.metrics} | err {self.error_percent:.2f}% "
            f"| cost {self.cost:.2f} | loss {self.loss_nas:.3f} | {self.config}{target}"
        )
