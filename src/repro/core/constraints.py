"""Hard-constraint definitions and the differentiable constraint loss."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Sequence

import numpy as np

from repro.accelerator import HardwareMetrics
from repro.accelerator.cost import REFERENCE_SCALES
from repro.autodiff import Tensor, ops
from repro.estimator.estimator import METRIC_INDEX

_METRIC_REF = {
    "latency": REFERENCE_SCALES["latency_ms"],
    "energy": REFERENCE_SCALES["energy_mj"],
    "area": REFERENCE_SCALES["area_mm2"],
}


@dataclass(frozen=True)
class Constraint:
    """A hard upper bound on one hardware metric.

    ``metric`` is 'latency' (ms), 'energy' (mJ), or 'area' (mm^2);
    ``bound`` is the target value ``T`` of Eq. 2.
    """

    metric: str
    bound: float

    def __post_init__(self) -> None:
        if self.metric not in METRIC_INDEX:
            raise ValueError(f"unknown metric {self.metric!r}")
        if self.bound <= 0:
            raise ValueError("constraint bound must be positive")

    def violation(self, value: float) -> float:
        """Raw violation ``max(t - T, 0)`` for a measured value."""
        return max(value - self.bound, 0.0)

    def satisfied_by(self, metrics: HardwareMetrics) -> bool:
        return metrics.metric(self.metric) <= self.bound

    def __str__(self) -> str:
        unit = {"latency": "ms", "energy": "mJ", "area": "mm2"}[self.metric]
        return f"{self.metric} <= {self.bound:g} {unit}"


class ConstraintSet:
    """An (possibly empty) collection of hard constraints (Eqs. 8/9)."""

    def __init__(self, constraints: Iterable[Constraint] = ()) -> None:
        self.constraints: List[Constraint] = list(constraints)

    @classmethod
    def latency(cls, bound_ms: float) -> "ConstraintSet":
        return cls([Constraint("latency", bound_ms)])

    @classmethod
    def from_dict(cls, bounds: Dict[str, float]) -> "ConstraintSet":
        return cls([Constraint(m, b) for m, b in bounds.items()])

    def __len__(self) -> int:
        return len(self.constraints)

    def __iter__(self) -> Iterator[Constraint]:
        return iter(self.constraints)

    def __bool__(self) -> bool:
        return bool(self.constraints)

    # ------------------------------------------------------------------
    def constraint_loss(self, predicted_metrics: Tensor) -> Tensor:
        """Differentiable ``Const = sum_i max(t_i - T_i, 0)`` (Eq. 9).

        ``predicted_metrics`` is the estimator's (latency, energy, area)
        3-vector.  Each term is normalized by the metric's reference
        scale so multi-constraint gradients are comparable.
        """
        terms = []
        for constraint in self.constraints:
            index = METRIC_INDEX[constraint.metric]
            t = predicted_metrics[np.array([index])].reshape(())
            excess = ops.maximum(t - constraint.bound, 0.0)
            terms.append(excess * (1.0 / _METRIC_REF[constraint.metric]))
        if not terms:
            return Tensor(0.0)
        total = terms[0]
        for term in terms[1:]:
            total = total + term
        return total

    def violated(self, values: Sequence[float]) -> bool:
        """True when any constraint is exceeded by the (lat, E, A) values."""
        return any(
            values[METRIC_INDEX[c.metric]] > c.bound for c in self.constraints
        )

    def all_satisfied(self, metrics: HardwareMetrics) -> bool:
        return all(c.satisfied_by(metrics) for c in self.constraints)

    def __str__(self) -> str:
        if not self.constraints:
            return "unconstrained"
        return " & ".join(str(c) for c in self.constraints)


# ----------------------------------------------------------------------
# Array-of-runs variant used by the search fleet
# ----------------------------------------------------------------------
def batched_violated(
    values: np.ndarray, metrics: Sequence[str], bounds: np.ndarray
) -> np.ndarray:
    """Per-run violation flags (N,) for (N, 3) metric values.

    ``bounds`` has shape (K, N): one row of per-run bounds for each
    constrained metric in ``metrics``.  Mirrors
    :meth:`ConstraintSet.violated` elementwise over the run axis.
    """
    flags = np.zeros(len(values), dtype=bool)
    for k, name in enumerate(metrics):
        flags |= values[:, METRIC_INDEX[name]] > bounds[k]
    return flags
