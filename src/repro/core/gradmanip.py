"""Gradient manipulation — Eqs. 4, 7, and 8 of the paper.

When the constrained metric violates its target and the global-loss
gradient ``g_loss`` disagrees with the constraint gradient ``g_const``
(negative dot product), we add the minimum-norm correction

    m* = -((g_loss . g_const) + delta) / ||g_const||^2 * g_const

which guarantees ``(m* + g_loss) . g_const = delta >= 0`` — i.e. the
gradient-descent step reduces the constraint violation by at least a
margin controlled by ``delta`` — while perturbing ``g_loss`` as little
as possible (pseudoinverse / least-squares solution).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np


def flatten_gradients(grads: Sequence[Optional[np.ndarray]], like: Sequence[np.ndarray]) -> np.ndarray:
    """Concatenate per-parameter gradients into one vector.

    ``like`` provides shapes for parameters whose gradient is None
    (treated as zeros).
    """
    parts = []
    for grad, ref in zip(grads, like):
        parts.append(np.zeros_like(ref).reshape(-1) if grad is None else grad.reshape(-1))
    return np.concatenate(parts) if parts else np.zeros(0)


def unflatten_gradient(flat: np.ndarray, like: Sequence[np.ndarray]) -> List[np.ndarray]:
    """Split a flat vector back into per-parameter arrays."""
    out = []
    offset = 0
    for ref in like:
        n = ref.size
        out.append(flat[offset : offset + n].reshape(ref.shape))
        offset += n
    if offset != flat.size:
        raise ValueError("flat gradient size does not match parameter sizes")
    return out


def minimum_norm_correction(
    g_loss: np.ndarray,
    g_const: np.ndarray,
    delta: float,
    max_norm: Optional[float] = None,
) -> np.ndarray:
    """The pseudoinverse solution ``m*`` of Eq. 7.

    ``max_norm`` optionally caps ``||m*||_2``: when ``g_const`` is tiny
    (e.g. flowing through a saturated softmax) the exact solution
    explodes; the capped correction keeps the same direction, trading
    the per-step guarantee for stability.
    """
    norm_sq = float(g_const @ g_const)
    if norm_sq <= 1e-30:
        return np.zeros_like(g_loss)
    dot = float(g_loss @ g_const)
    correction = (-(dot) + delta) / norm_sq * g_const
    if max_norm is not None:
        norm = float(np.linalg.norm(correction))
        if norm > max_norm:
            correction = correction * (max_norm / norm)
    return correction


def manipulate_gradient(
    g_loss: np.ndarray,
    g_const: np.ndarray,
    violated: bool,
    delta: float,
    max_norm: Optional[float] = None,
    force: bool = False,
) -> Tuple[np.ndarray, bool]:
    """Apply Eq. 4 / Eq. 8: returns (gradient, manipulation_applied).

    * constraint satisfied  -> ``g_loss`` unchanged;
    * violated but agreeing (``g_loss . g_const >= 0``) -> unchanged;
    * violated and disagreeing -> ``m* + g_loss``.

    ``force=True`` skips the agreement shortcut (ablation: apply the
    correction on every violated step regardless of the dot product).
    """
    if not violated:
        return g_loss, False
    dot = float(g_loss @ g_const)
    if dot >= 0.0 and not force:
        return g_loss, False
    correction = minimum_norm_correction(g_loss, g_const, delta, max_norm=max_norm)
    return g_loss + correction, True


def manipulate_gradient_batch(
    g_loss: np.ndarray,
    g_const: np.ndarray,
    violated: np.ndarray,
    delta: np.ndarray,
    max_norm: Optional[np.ndarray] = None,
    force: Optional[np.ndarray] = None,
    enabled: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Array-of-runs :func:`manipulate_gradient` over (N, D) gradients.

    Applies the scalar rule independently per run (``delta``,
    ``max_norm``, ``force`` are per-run arrays); runs where ``enabled``
    is False pass through untouched (the ``manipulate_generator=False``
    ablation).  Implemented as a per-run loop over the scalar function
    rather than row-wise einsum dots: the 1-D BLAS dot is what the
    scalar engine computes, and reusing it keeps every run bitwise
    identical to a solo search (the fleet parity contract).
    """
    n = len(g_loss)
    out = g_loss.copy()
    applied = np.zeros(n, dtype=bool)
    for i in range(n):
        if enabled is not None and not enabled[i]:
            continue
        out[i], applied[i] = manipulate_gradient(
            g_loss[i],
            g_const[i],
            bool(violated[i]),
            float(delta[i]),
            max_norm=None if max_norm is None else float(max_norm[i]),
            force=False if force is None else bool(force[i]),
        )
    return out, applied
