"""Batched co-exploration: run many searches as one NumPy program.

Every headline experiment (Fig. 1 sweep, Fig. 3 constrained runs,
Table 1 meta-search, the ablations) runs many *independent*
surrogate-fidelity searches.  The scalar :class:`~repro.core.CoExplorer`
spends its time in Python-level autodiff dispatch over (L, C)-sized
tensors, one run at a time; :class:`SearchFleet` stacks N runs on a
leading run axis — alpha as ``(N, L, C)``, per-run generator weights as
stacked kernels, one shared frozen estimator — and advances all of them
lock-step with hand-written forward/VJP passes, so both the Python
graph overhead and the per-op dispatch are paid once for the whole
fleet instead of once per run.

Parity contract (enforced by ``tests/test_fleet_parity.py``): for
surrogate fidelity the fleet reproduces the scalar engine **seed for
seed** — same per-epoch telemetry, same RNG draws, same final
architecture/accelerator/metrics.  This works because

* elementwise ops and trailing-axis reductions are bitwise identical
  under batching;
* matmuls go through stacked ``(N, 1, F)`` layouts, which NumPy
  executes as one GEMM per run — the exact scalar arithmetic (a flat
  ``(N, F)`` GEMM would differ in the last ulp and the divergence
  compounds over epochs);
* the hand-written VJPs mirror the autodiff ops' formulas *and* the
  engine's gradient-accumulation order at every fan-out node (feats
  receives its contributions in cap -> ext -> summary -> generator
  order, the predicted metrics in construction order — measured off
  the real engine's reverse-topological traversal);
* per-run ``numpy`` Generators reproduce the scalar engine's draw
  sequence exactly;
* gradient manipulation, the delta schedule, and decode repair reuse
  the scalar functions per run.

Any change to ``CoExplorer.search()``, the estimator/generator
forwards, or the surrogate must be mirrored here (and vice versa) or
the parity test fails — see DESIGN.md.

Runs whose loss graphs differ structurally (generator vs direct beta,
cost term on/off, different constraint sets, ...) cannot share one
vectorized program; :class:`SearchFleet` transparently groups runs by
graph structure and batches within each group.  Full-fidelity runs
(real supernet training) fall back to the scalar engine.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.accelerator import evaluate_network
from repro.accelerator.cost import COST_WEIGHTS, REFERENCE_SCALES, cost_hw
from repro.arch import NetworkArch, SearchSpace
from repro.arch.encoding import (
    _choice_stats,
    arch_features_from_alpha_batch,
    arch_features_from_indices_batch,
    candidate_mask,
    extended_features_from_indices_batch,
    summary_from_probs_batch,
)
from repro.core.coexplore import (
    LAMBDA_COST_SCALE,
    CoExplorer,
    SearchConfig,
    decode_repair_scan,
    resolve_workload,
)
from repro.core.constraints import _METRIC_REF, batched_violated
from repro.core.delta import DeltaPolicyArray
from repro.core.gradmanip import manipulate_gradient_batch
from repro.core.result import EpochRecord, SearchResult
from repro.estimator.estimator import CostEstimator, METRIC_INDEX
from repro.estimator.generator import (
    HardwareGeneratorFleet,
    accelerator_head_forward,
    accelerator_head_vjp,
)
from repro.surrogate import AccuracySurrogate, AccuracySurrogateFleet


def _structure_key(config: SearchConfig) -> Tuple:
    """Hashable description of a run's loss-graph structure.

    Runs with the same key build isomorphic loss graphs and can be
    batched together; everything else about a config (seed, lambdas,
    bounds, learning rates, ablation flags applied per-run) is data,
    not structure.  The platform is structural: each batch shares one
    frozen estimator and one design space to decode into, so only
    same-platform runs may share a batch.  The workload is structural
    for the same reason on the software side — one batch shares one
    space, one surrogate stack, and one cost normalization — so only
    same-workload runs may batch (the empty string means "derived from
    the dispatching space", which is uniform within a manifest).
    """
    return (
        config.workload,
        config.platform,
        config.fidelity,
        config.epochs,
        config.use_generator,
        config.include_cost_term,
        config.use_edp_cost,
        config.size_penalty_lambda > 0,
        config.soft_lambda > 0 and bool(config.constraints),
        config.hard_constraints and bool(config.constraints),
        tuple(c.metric for c in config.constraints),
    )


class _DirectBetaFleet:
    """Run-axis stack of :class:`~repro.core.coexplore._DirectBeta`.

    The raw (N, 6) parameter stack is the training state; forward and
    VJP mirror the scalar module (sigmoid over the first three slots,
    softmax over the dataflow slots, features ignored).
    """

    def __init__(self, betas: Sequence) -> None:
        platforms = {b.platform for b in betas}
        if len(platforms) != 1:
            raise ValueError(
                f"fleet betas must share one platform, got {sorted(platforms)}"
            )
        self.platform = betas[0].platform
        self.raw = np.stack([b.raw.data for b in betas])

    def params(self) -> List[np.ndarray]:
        return [self.raw]

    def forward(self, arch_features: np.ndarray, want_cache: bool = True):
        beta, size_part, dataflow_part = accelerator_head_forward(self.raw)
        cache = (size_part, dataflow_part) if want_cache else None
        return beta, cache

    def backward(self, cache, d_beta, need_input=True, need_weights=False):
        size_part, dataflow_part = cache
        d_raw = accelerator_head_vjp(d_beta, size_part, dataflow_part)
        grads = [d_raw] if need_weights else None
        return None, grads  # no gradient flows to the features

    def discretize_all(self, arch_features: np.ndarray):
        from repro.accelerator.config import AcceleratorConfig

        vectors, _ = self.forward(arch_features, want_cache=False)
        return [
            AcceleratorConfig.from_vector(v, platform=self.platform) for v in vectors
        ]


class _FleetGroup:
    """One structurally homogeneous batch of surrogate-fidelity runs."""

    def __init__(
        self,
        space: SearchSpace,
        estimator: CostEstimator,
        configs: Sequence[SearchConfig],
        surrogate: Optional[AccuracySurrogate] = None,
    ) -> None:
        if not estimator.frozen:
            raise ValueError("estimator must be pre-trained and frozen before search")
        from repro.accelerator.platform import as_platform

        cfg0 = configs[0]
        if cfg0.fidelity != "surrogate":
            raise ValueError("_FleetGroup only batches surrogate-fidelity runs")
        self.space = space
        self.estimator = estimator
        self.configs = list(configs)
        self.workload = resolve_workload(space, cfg0)
        self.platform = as_platform(cfg0.platform)
        est_platform = getattr(estimator, "platform", "eyeriss")
        if est_platform != self.platform.name:
            raise ValueError(
                f"estimator is pre-trained for platform {est_platform!r} but the "
                f"batch targets {self.platform.name!r}"
            )
        self.n = len(self.configs)
        n = self.n

        # Canonical surrogate for reporting; per-run jittered copies for
        # search (each run perturbs the loss landscape with its own seed,
        # exactly as the scalar engine does).
        self.surrogate = surrogate or AccuracySurrogate(space, seed=0)
        search_fleet = AccuracySurrogateFleet(
            [
                AccuracySurrogate(
                    space,
                    seed=0,
                    landscape_jitter=c.landscape_jitter,
                    jitter_seed=c.seed,
                )
                for c in self.configs
            ]
        )
        cal = search_fleet.calibration
        self._scores = search_fleet._scores  # (N, L, C)
        self._sur_mid = cal["cap_frac"] * search_fleet._max_capacity
        self._sur_inv_scale = 1.0 / (cal["cap_scale"] * search_fleet._max_capacity)
        self._err_floor = cal["err_floor"]
        self._err_spread = cal["err_spread"]
        self._loss_scale = cal["loss_scale"]
        self._loss_bias = cal["loss_bias"]

        self.alpha = np.zeros((n, space.num_layers, space.num_choices))
        if cfg0.use_generator:
            from repro.estimator.generator import HardwareGenerator

            self.generator = HardwareGeneratorFleet(
                [
                    HardwareGenerator(
                        space, seed=c.seed + 1, platform=self.platform.name
                    )
                    for c in self.configs
                ]
            )
        else:
            from repro.core.coexplore import _DirectBeta

            self.generator = _DirectBetaFleet(
                [
                    _DirectBeta(seed=c.seed + 1, platform=self.platform.name)
                    for c in self.configs
                ]
            )
        self._gen_params = self.generator.params()
        self._est_kernel = estimator.fleet_kernel()
        self._t_std = estimator.target_std
        self._t_mean = estimator.target_mean

        self.rngs = [np.random.default_rng(c.seed) for c in self.configs]
        self.delta_policy = DeltaPolicyArray(
            np.array([c.delta0 for c in self.configs]),
            np.array([c.p for c in self.configs]),
        )

        # --- Structure flags (identical across the group) --------------
        self._use_generator = cfg0.use_generator
        self._include_cost = cfg0.include_cost_term
        self._use_edp = cfg0.use_edp_cost
        self._has_size_pen = cfg0.size_penalty_lambda > 0
        self._has_soft = cfg0.soft_lambda > 0 and bool(cfg0.constraints)
        self._has_hard = cfg0.hard_constraints and bool(cfg0.constraints)
        # Violation telemetry is recorded whenever constraints exist,
        # even if manipulation (hard constraints) is off — the scalar
        # engine checks violation against the tightened bounds first
        # and gates only Pass C on ``hard_constraints``.
        self._has_constraints = bool(cfg0.constraints)
        self._epochs = cfg0.epochs
        self._metric_names = [c.metric for c in cfg0.constraints]
        self._metric_idx = [METRIC_INDEX[m] for m in self._metric_names]
        self._inv_refs = [1.0 / _METRIC_REF[m] for m in self._metric_names]

        # --- Per-run data arrays ---------------------------------------
        cost_norm = self.workload.cost_normalization()
        self._cost_coef = np.array(
            [c.lambda_cost * LAMBDA_COST_SCALE * cost_norm for c in self.configs]
        )
        self._size_pen = np.array([c.size_penalty_lambda for c in self.configs])
        self._soft_lambda = np.array([c.soft_lambda for c in self.configs])
        self._alpha_lr = np.array([c.alpha_lr for c in self.configs]).reshape(n, 1, 1)
        self._v_lr = np.array([c.v_lr for c in self.configs])
        self._max_norm = np.array([c.max_correction_norm for c in self.configs])
        self._force = np.array([c.manipulate_always for c in self.configs])
        self._manip_v = np.array([c.manipulate_generator for c in self.configs])
        # True bounds (soft term) and internally tightened bounds (hard
        # constraints + violation telemetry), both (K, N); the tightening
        # mirrors CoExplorer's per-metric margin rule exactly.
        n_metrics = len(self._metric_names)
        self._true_inv_bounds = np.array(
            [[1.0 / c.bound for c in cfg.constraints] for cfg in self.configs]
        ).T.reshape(n_metrics, n)
        self._internal_bounds = np.array(
            [
                [
                    c.bound
                    * (
                        1.0
                        - (
                            min(cfg.constraint_margin, 0.02)
                            if c.metric == "area"
                            else cfg.constraint_margin
                        )
                    )
                    for c in cfg.constraints
                ]
                for cfg in self.configs
            ]
        ).T.reshape(n_metrics, n)
        # Per-metric Eq. 10 weight/reference coefficients.
        weight_dicts = [c.cost_weights or COST_WEIGHTS for c in self.configs]
        self._w_lat = np.array(
            [w["latency"] / REFERENCE_SCALES["latency_ms"] for w in weight_dicts]
        )
        self._w_energy = np.array(
            [w["energy"] / REFERENCE_SCALES["energy_mj"] for w in weight_dicts]
        )
        self._w_area = np.array(
            [w["area"] / REFERENCE_SCALES["area_mm2"] for w in weight_dicts]
        )
        self._edp_scale = 1.0 / (
            REFERENCE_SCALES["latency_ms"] * REFERENCE_SCALES["energy_mj"]
        )
        self._valid_mask = candidate_mask(space)
        self._stats = _choice_stats(space)  # (3, L, C)
        self._n_layers = space.num_layers
        self._lc = space.num_layers * space.num_choices
        self._noise = [c.nas_grad_noise for c in self.configs]

    # ------------------------------------------------------------------
    # Batched numeric helpers (each mirrors its scalar graph op-for-op)
    # ------------------------------------------------------------------
    def _summary_vjp(self, d_summary: np.ndarray) -> np.ndarray:
        """VJP of ``summary_from_probs_batch``: (N, 3+L) -> (N, L, C).

        Contributions accumulate in the engine's order: the three
        global stats then the per-layer MACs term.
        """
        n, l, c = len(d_summary), self._n_layers, self._scores.shape[2]
        shape = (n, l, c)
        acc = np.broadcast_to(d_summary[:, 0].reshape(n, 1, 1), shape) * self._stats[0]
        acc = acc + np.broadcast_to(d_summary[:, 1].reshape(n, 1, 1), shape) * self._stats[1]
        acc = acc + np.broadcast_to(d_summary[:, 2].reshape(n, 1, 1), shape) * self._stats[2]
        d_pl_sum = d_summary[:, 3:] * float(self._n_layers)
        acc = acc + np.broadcast_to(d_pl_sum[:, :, None], shape) * self._stats[0]
        return acc

    def _estimator_forward(self, feat_all: np.ndarray, want_cache: bool = True):
        """(N, D) features -> (N, 3) denormalized metrics (+ cache)."""
        n = len(feat_all)
        out, cache = self._est_kernel.forward(
            feat_all.reshape(n, 1, -1), want_cache=want_cache
        )
        normalized = out.reshape(n, -1)
        metrics = np.exp(normalized * self._t_std + self._t_mean)
        return metrics, cache

    def _estimator_vjp(self, cache, metrics: np.ndarray, d_metrics: np.ndarray):
        """d metrics (N, 3) -> d features (N, D)."""
        n = len(metrics)
        d_pre = d_metrics * metrics  # exp
        d_norm = d_pre * self._t_std
        d_x, _ = self._est_kernel.backward(
            cache, d_norm.reshape(n, 1, -1), need_input=True
        )
        return d_x.reshape(n, -1)

    def _metrics_vjp_hw(self, metrics: np.ndarray, d_hw, soft_pre) -> np.ndarray:
        """d metrics of the hardware objective for cotangent ``d_hw``.

        Scatter order matches the engine: the cost getitems in
        construction order, then the soft-term getitems.
        """
        n = len(metrics)
        d_met = np.zeros((n, 3))
        if self._use_edp:
            t = d_hw * 10.0
            t = t * self._edp_scale
            d_met[:, 0] += t * metrics[:, 1]
            d_met[:, 1] += t * metrics[:, 0]
        else:
            d_met[:, 0] += d_hw * self._w_lat
            d_met[:, 1] += d_hw * self._w_energy
            d_met[:, 2] += d_hw * self._w_area
        if self._has_soft:
            d_soft_sum = d_hw * self._soft_lambda
            for k, idx in enumerate(self._metric_idx):
                mask = (soft_pre[k] >= 0.0).astype(float)
                d_met[:, idx] += (d_soft_sum * mask) * self._true_inv_bounds[k]
        return d_met

    def _alpha_vjp(self, d_f0: np.ndarray, p3: np.ndarray, inv_tau: np.ndarray):
        """d feats (N, L*C) -> d alpha (N, L, C) through softmax/temper."""
        d_p3 = d_f0.reshape(p3.shape)
        dot = (d_p3 * p3).sum(axis=-1, keepdims=True)
        d_b = p3 * (d_p3 - dot)
        return d_b * inv_tau

    def _dominant_indices(self) -> np.ndarray:
        """(N, L) argmax choice per layer, mirroring ``dominant_arch``."""
        probs = arch_features_from_alpha_batch(self.space, self.alpha)
        probs = probs.reshape(self.alpha.shape)
        masked = np.where(self._valid_mask, probs, -1.0)
        return masked.argmax(axis=-1)

    def _predict_dominant_metrics(self) -> np.ndarray:
        """(N, 3) estimator metrics of each run's argmax architecture."""
        indices = self._dominant_indices()
        one_hot = arch_features_from_indices_batch(self.space, indices)
        beta, _ = self.generator.forward(one_hot, want_cache=False)
        features = np.concatenate(
            [extended_features_from_indices_batch(self.space, indices), beta], axis=1
        )
        return self.estimator.predict_numpy(features)

    # ------------------------------------------------------------------
    # The lock-step search loop
    # ------------------------------------------------------------------
    def search_all(self) -> List[SearchResult]:
        n = self.n
        lc = self._lc
        histories: List[List[EpochRecord]] = [[] for _ in range(n)]
        inv_taus = self._inv_tau_schedule()
        for epoch in range(self._epochs):
            inv_tau = inv_taus[epoch]

            # --- Shared forward on the tempered relaxation -------------
            f0 = arch_features_from_alpha_batch(self.space, self.alpha * inv_tau)
            p3 = f0.reshape(self.alpha.shape)
            # Surrogate Loss_NAS.
            cap = (p3 * self._scores).sum(axis=(1, 2))
            z = (cap - self._sur_mid) * self._sur_inv_scale
            nz = -z
            sg = 1.0 / (1.0 + np.exp(-nz))
            err = self._err_floor + self._err_spread * sg
            loss_nas = err * self._loss_scale + self._loss_bias
            summary = summary_from_probs_batch(self.space, f0)
            beta, gen_cache = self.generator.forward(f0, want_cache=True)
            feat_all = np.concatenate([f0, summary, beta], axis=1)
            metrics, est_cache = self._estimator_forward(feat_all)
            if self._use_edp:
                cost = (
                    metrics[:, 0] * metrics[:, 1] * self._edp_scale * 10.0
                )
            else:
                cost = (
                    metrics[:, 0] * self._w_lat
                    + metrics[:, 1] * self._w_energy
                    + metrics[:, 2] * self._w_area
                )
            soft_pre = None
            hw = cost
            if self._has_soft:
                soft_pre = [
                    metrics[:, idx] * self._true_inv_bounds[k] - 1.0
                    for k, idx in enumerate(self._metric_idx)
                ]
                soft_sum = np.maximum(soft_pre[0], 0.0)
                for pre in soft_pre[1:]:
                    soft_sum = soft_sum + np.maximum(pre, 0.0)
                hw = cost + soft_sum * self._soft_lambda
            global_loss = loss_nas
            if self._include_cost:
                global_loss = global_loss + hw * self._cost_coef
            if self._has_size_pen:
                global_loss = global_loss + summary[:, 0] * self._size_pen

            # --- Pass A: d global_loss / d alpha -----------------------
            # feats contributions in engine order: cap, ext, summary, gen.
            d_cap = -(
                ((self._loss_scale * self._err_spread) * sg) * (1.0 - sg)
            ) * self._sur_inv_scale
            d_f0 = (
                np.broadcast_to(d_cap.reshape(n, 1, 1), p3.shape) * self._scores
            ).reshape(n, lc)
            if self._include_cost:
                d_met = self._metrics_vjp_hw(metrics, self._cost_coef, soft_pre)
                d_feat = self._estimator_vjp(est_cache, metrics, d_met)
                d_f0 = d_f0 + d_feat[:, :lc]
                d_summary = d_feat[:, lc : lc + summary.shape[1]]
                if self._has_size_pen:
                    d_summary = d_summary.copy()
                    d_summary[:, 0] += self._size_pen
                d_f0 = d_f0 + self._summary_vjp(d_summary).reshape(n, lc)
                if self._use_generator:
                    d_beta = d_feat[:, lc + summary.shape[1] :]
                    d_xg, _ = self.generator.backward(
                        gen_cache, d_beta, need_input=True
                    )
                    d_f0 = d_f0 + d_xg
            elif self._has_size_pen:
                d_summary = np.zeros_like(summary)
                d_summary[:, 0] += self._size_pen
                d_f0 = d_f0 + self._summary_vjp(d_summary).reshape(n, lc)
            g_loss_alpha = self._alpha_vjp(d_f0, p3, inv_tau)

            noise_mean = np.abs(g_loss_alpha).mean(axis=(1, 2))
            for i, noise in enumerate(self._noise):
                if noise > 0:
                    scale = noise * float(noise_mean[i])
                    g_loss_alpha[i] = g_loss_alpha[i] + self.rngs[i].normal(
                        0.0, scale, size=g_loss_alpha[i].shape
                    )

            # --- Pass B: d hw_objective / d generator weights ----------
            g_v: Optional[List[np.ndarray]] = None
            if self._include_cost:
                d_met = self._metrics_vjp_hw(metrics, 1.0, soft_pre)
                d_feat = self._estimator_vjp(est_cache, metrics, d_met)
                d_beta = d_feat[:, lc + summary.shape[1] :]
                _, g_v = self.generator.backward(
                    gen_cache, d_beta, need_input=False, need_weights=True
                )

            # --- Violation check on the dominant architectures ---------
            hard_metrics = self._predict_dominant_metrics()
            if self._has_constraints:
                violated = batched_violated(
                    hard_metrics, self._metric_names, self._internal_bounds
                )
            else:
                violated = np.zeros(n, dtype=bool)
            manipulated_alpha = np.zeros(n, dtype=bool)
            manipulated_v = np.zeros(n, dtype=bool)
            if self._has_hard:
                if violated.any():
                    # Pass C: d constraint_loss / d (alpha, v), then the
                    # minimum-norm correction per violated run.
                    g_loss_alpha, g_v, manipulated_alpha, manipulated_v = (
                        self._constraint_pass(
                            metrics,
                            est_cache,
                            gen_cache,
                            p3,
                            inv_tau,
                            summary.shape[1],
                            g_loss_alpha,
                            g_v,
                            violated,
                        )
                    )
                self.delta_policy.update(violated)

            # --- Updates (plain SGD, per-run learning rates) -----------
            self.alpha -= self._alpha_lr * g_loss_alpha
            if self._include_cost:
                for param, grad in zip(self._gen_params, g_v):
                    lr = self._v_lr.reshape((n,) + (1,) * (param.ndim - 1))
                    param -= lr * grad

            deltas = self.delta_policy.delta
            for i in range(n):
                histories[i].append(
                    EpochRecord(
                        epoch=epoch,
                        loss_nas=float(loss_nas[i]),
                        cost_hw=float(cost[i]),
                        global_loss=float(global_loss[i]),
                        predicted_latency_ms=float(hard_metrics[i, 0]),
                        predicted_energy_mj=float(hard_metrics[i, 1]),
                        predicted_area_mm2=float(hard_metrics[i, 2]),
                        delta=float(deltas[i]),
                        violated=bool(violated[i]),
                        manipulated_alpha=bool(manipulated_alpha[i]),
                        manipulated_v=bool(manipulated_v[i]),
                    )
                )
        return self._finalize(histories)

    def _inv_tau_schedule(self) -> List[np.ndarray]:
        """Per-epoch (N, 1, 1) reciprocal temperatures, scalar formula."""
        schedule = []
        for epoch in range(self._epochs):
            progress = min(1.0, epoch / max(0.6 * (self._epochs - 1), 1))
            schedule.append(
                np.array(
                    [
                        1.0 / (c.tau_start * (c.tau_end / c.tau_start) ** progress)
                        for c in self.configs
                    ]
                ).reshape(self.n, 1, 1)
            )
        return schedule

    def _constraint_pass(
        self,
        metrics: np.ndarray,
        est_cache,
        gen_cache,
        p3: np.ndarray,
        inv_tau: np.ndarray,
        summary_dim: int,
        g_loss_alpha: np.ndarray,
        g_v: Optional[List[np.ndarray]],
        violated: np.ndarray,
    ):
        """Backward through Const = sum max(t - T, 0) and Eq. 4/7/8."""
        n, lc = self.n, self._lc
        d_met = np.zeros((n, 3))
        for k, idx in enumerate(self._metric_idx):
            mask = (metrics[:, idx] - self._internal_bounds[k] >= 0.0).astype(float)
            d_met[:, idx] += self._inv_refs[k] * mask
        d_feat = self._estimator_vjp(est_cache, metrics, d_met)
        d_xg, g_const_v = self.generator.backward(
            gen_cache,
            d_feat[:, lc + summary_dim :],
            need_input=True,
            need_weights=True,
        )
        # feats contributions in engine order: ext, summary, gen.
        d_f0 = d_feat[:, :lc]
        d_f0 = d_f0 + self._summary_vjp(d_feat[:, lc : lc + summary_dim]).reshape(n, lc)
        if d_xg is not None:
            d_f0 = d_f0 + d_xg
        g_const_alpha = self._alpha_vjp(d_f0, p3, inv_tau)

        delta = self.delta_policy.delta
        new_alpha, manipulated_alpha = manipulate_gradient_batch(
            g_loss_alpha.reshape(n, -1),
            g_const_alpha.reshape(n, -1),
            violated,
            delta,
            max_norm=self._max_norm,
            force=self._force,
        )
        g_loss_alpha = new_alpha.reshape(g_loss_alpha.shape)

        manipulated_v = np.zeros(n, dtype=bool)
        if g_v is None:
            g_v = [np.zeros_like(p) for p in self._gen_params]
        # Flatten only the violated runs' generator gradients (the flat
        # vectors are ~20k floats per run; clean runs pass through
        # untouched, exactly as the scalar engine leaves them).
        active = np.flatnonzero(violated)
        if len(active):
            flat_v = np.concatenate(
                [g[active].reshape(len(active), -1) for g in g_v], axis=1
            )
            flat_cv = np.concatenate(
                [g[active].reshape(len(active), -1) for g in g_const_v], axis=1
            )
            new_v, applied = manipulate_gradient_batch(
                flat_v,
                flat_cv,
                violated[active],
                delta[active],
                max_norm=self._max_norm[active],
                force=self._force[active],
                enabled=self._manip_v[active],
            )
            manipulated_v[active] = applied
            if applied.any():
                g_v = [g.copy() for g in g_v]
                offset = 0
                for grad in g_v:
                    size = grad[0].size
                    grad[active] = new_v[:, offset : offset + size].reshape(
                        (len(active),) + grad.shape[1:]
                    )
                    offset += size
        return g_loss_alpha, g_v, manipulated_alpha, manipulated_v

    # ------------------------------------------------------------------
    def _finalize(self, histories: List[List[EpochRecord]]) -> List[SearchResult]:
        indices = self._dominant_indices()
        one_hot = arch_features_from_indices_batch(self.space, indices)
        hw_configs = self.generator.discretize_all(one_hot)
        table = self.platform.energy_table
        results: List[SearchResult] = []
        for i, cfg in enumerate(self.configs):
            arch = NetworkArch.from_indices(self.space, [int(x) for x in indices[i]])
            config = hw_configs[i]
            metrics = evaluate_network(arch, config, table, self.platform)
            if cfg.decode_repair:
                config, metrics = decode_repair_scan(
                    arch,
                    config,
                    metrics,
                    cfg.constraints,
                    cost_weights=cfg.cost_weights,
                    energy_table=table,
                    platform=self.platform,
                )
            error = self.surrogate.trained_error(arch, seed=cfg.seed)
            results.append(
                SearchResult(
                    arch=arch,
                    config=config,
                    metrics=metrics,
                    error_percent=error,
                    loss_nas=self.surrogate.loss_of(arch),
                    cost=cost_hw(metrics, cfg.cost_weights),
                    constraints=cfg.constraints,
                    in_constraint=cfg.constraints.all_satisfied(metrics),
                    history=histories[i],
                    method=cfg.method_name,
                    platform=self.platform.name,
                )
            )
        return results


class SearchFleet:
    """Run N co-exploration searches as batched vectorized programs.

    Groups the given configs by loss-graph structure, runs each group
    through :class:`_FleetGroup`, and falls back to the scalar
    :class:`CoExplorer` for full-fidelity runs.  Results come back in
    input order and are seed-for-seed identical to running each config
    through ``CoExplorer(space, estimator, config).search()``.

    ``estimator`` is either one :class:`CostEstimator` (all configs
    must target its platform) or a ``{platform_name: CostEstimator}``
    mapping for cross-platform fleets — the structural grouping already
    keys on the platform, so each batch resolves exactly one estimator.
    """

    def __init__(
        self,
        space: SearchSpace,
        estimator: Union[CostEstimator, Mapping[str, CostEstimator]],
        configs: Sequence[SearchConfig],
        surrogate: Optional[AccuracySurrogate] = None,
        dataset=None,
    ) -> None:
        self.space = space
        self.estimator = estimator
        self.configs = list(configs)
        self.surrogate = surrogate
        self.dataset = dataset

    def _estimator_for(self, config: SearchConfig) -> CostEstimator:
        if isinstance(self.estimator, Mapping):
            try:
                return self.estimator[config.platform]
            except KeyError:
                raise ValueError(
                    f"no estimator supplied for platform {config.platform!r}; "
                    f"have {sorted(self.estimator)}"
                ) from None
        return self.estimator

    def search_all(self) -> List[SearchResult]:
        results: List[Optional[SearchResult]] = [None] * len(self.configs)
        groups: Dict[Tuple, List[int]] = {}
        for index, config in enumerate(self.configs):
            if config.fidelity == "surrogate":
                groups.setdefault(_structure_key(config), []).append(index)
            else:
                results[index] = CoExplorer(
                    self.space,
                    self._estimator_for(config),
                    config,
                    surrogate=self.surrogate,
                    dataset=self.dataset,
                ).search()
        for indices in groups.values():
            group = _FleetGroup(
                self.space,
                self._estimator_for(self.configs[indices[0]]),
                [self.configs[i] for i in indices],
                surrogate=self.surrogate,
            )
            for index, result in zip(indices, group.search_all()):
                results[index] = result
        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]


def run_many(
    space: SearchSpace,
    estimator: Union[CostEstimator, Mapping[str, CostEstimator]],
    configs: Sequence[SearchConfig],
    surrogate: Optional[AccuracySurrogate] = None,
    dataset=None,
) -> List[SearchResult]:
    """Run N searches, batching surrogate-fidelity runs into a fleet.

    Drop-in replacement for a loop of ``CoExplorer(...).search()``
    calls: same results (seed for seed), one vectorized program per
    structural group instead of N sequential scalar searches.  Pass a
    ``{platform: estimator}`` mapping to run a cross-platform fleet
    (same network space, K hardware targets) in one call.

    Results always come back in **request order**, however the configs
    scatter across structure groups — the runtime scheduler's merge
    step (``repro/runtime/scheduler.py``) and every driver rely on
    this; ``tests/test_runtime.py`` pins it with a structure-shuffled
    manifest.
    """
    return SearchFleet(
        space, estimator, configs, surrogate=surrogate, dataset=dataset
    ).search_all()
