"""The co-exploration loop (paper Secs. 4.2-4.4).

:class:`CoExplorer` runs differentiable network/accelerator co-search.
With ``hard_constraints=True`` it is HDX; the same loop with different
switches realizes the baselines:

* ``hard_constraints=False``                       -> DANCE
* ``... + soft_lambda > 0``                        -> DANCE + soft constraint
* ``use_generator=False``                          -> Auto-NBA-style direct
  hardware-parameter search (no generator network)
* ``include_cost_term=False``                      -> plain differentiable NAS
  (the network half of NAS->HW)

Two fidelities share every search-relevant code path; they differ only
in where ``Loss_NAS`` comes from (trained supernet vs calibrated
surrogate) — see DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro import nn
from repro.accelerator import evaluate_network
from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.cost import COST_WEIGHTS, REFERENCE_SCALES, cost_hw
from repro.arch import NetworkArch, SearchSpace, SuperNet
from repro.arch.encoding import (
    alpha_bias,
    arch_features_from_alpha,
    arch_features_from_indices,
    summary_from_probs,
)
from repro.autodiff import Tensor, ops
from repro.core.constraints import ConstraintSet
from repro.core.delta import DeltaPolicy
from repro.core.gradmanip import manipulate_gradient
from repro.core.result import EpochRecord, SearchResult
from repro.estimator.estimator import CostEstimator, METRIC_INDEX
from repro.estimator.generator import HardwareGenerator
from repro.surrogate import AccuracySurrogate


#: Internal rescaling of the Cost_HW term so that the paper's quoted
#: lambda_cost range [0.001, 0.010] spans loss-dominated to
#: cost-dominated search in *our* units.  The paper's Cost_HW (~20) and
#: per-layer loss landscape differ from this reproduction's; this
#: constant calibrates the gradient-magnitude ratio, not the semantics.
LAMBDA_COST_SCALE = 12.0

# The per-workload typical-Cost_HW table that used to live here
# (``TYPICAL_COST``) moved into the workload registry: each
# :class:`repro.workload.Workload` owns its typical cost, and
# ``Workload.cost_normalization()`` is the quotient both engines
# multiply into ``lambda_cost``.  An unregistered space name now
# raises a clear error instead of silently normalizing like CIFAR-10.


@dataclass
class SearchConfig:
    """All knobs of one co-exploration run."""

    lambda_cost: float = 0.003
    constraints: ConstraintSet = field(default_factory=ConstraintSet)
    hard_constraints: bool = True
    soft_lambda: float = 0.0
    use_generator: bool = True
    include_cost_term: bool = True
    #: Differentiable size-proxy penalty (lambda * expected normalized
    #: MACs) added to the loss.  This is the "simple latency model"
    #: network-only constraint handling of the paper's refs [2, 23],
    #: used as the control parameter for the NAS->HW baseline.
    size_penalty_lambda: float = 0.0
    p: float = 1e-2
    delta0: float = 1e-2
    epochs: int = 150
    alpha_lr: float = 0.6
    v_lr: float = 0.05
    w_lr: float = 0.05
    w_steps_per_epoch: int = 4
    batch_size: int = 32
    fidelity: str = "surrogate"  # "surrogate" | "full"
    seed: int = 0
    #: Relative std of gradient noise injected on the Loss_NAS gradient
    #: in surrogate mode, emulating the minibatch/path-sampling noise of
    #: real supernet training (source of the per-search variance the
    #: paper's Sec. 3 motivation hinges on).  Full fidelity has genuine
    #: minibatch noise and ignores this.
    nas_grad_noise: float = 0.6
    #: Softmax temperature annealed geometrically from start to end over
    #: the run.  Sharpening the relaxation closes the gap between the
    #: soft architecture the estimator scores during search and the
    #: discrete argmax architecture reported at the end.
    tau_start: float = 1.5
    tau_end: float = 0.08
    #: Per-search perturbation of the surrogate loss landscape (see
    #: AccuracySurrogate.landscape_jitter); the second variance source
    #: behind the paper's Fig. 1 inconsistency.  Reporting always uses
    #: the canonical (unjittered) surrogate.
    landscape_jitter: float = 0.15
    cost_weights: Optional[Dict[str, float]] = None
    #: Internal tightening of constraint bounds compensating estimator
    #: error (the estimator is ~95-99% accurate; the paper relies on
    #: >99%).  Ground-truth reporting always uses the true bounds.
    constraint_margin: float = 0.07
    #: L2 cap on the manipulation correction ``m*`` (see
    #: ``minimum_norm_correction``), preventing explosions when the
    #: constraint gradient flows through a saturated softmax.
    max_correction_norm: float = 1.0
    # --- Ablation switches (DESIGN.md Sec. 5) ------------------------
    #: Apply the correction on every violated epoch, skipping the
    #: dot-product agreement test of Eq. 4.
    manipulate_always: bool = False
    #: Replace the Eq. 10 weighted sum by the EDP product cost the
    #: paper argues against.
    use_edp_cost: bool = False
    #: Whether the generator update also receives manipulated
    #: gradients (the paper's choice) or plain g_CostHW.
    manipulate_generator: bool = True
    #: Discretization-aware decode: after snapping the generator output
    #: to the nearest discrete accelerator, scan its local neighbourhood
    #: and prefer the cheapest *ground-truth-feasible* configuration.
    #: Compensates rounding at the relaxed->discrete boundary (the
    #: architecture is never changed by this step).
    decode_repair: bool = True
    method_name: str = "HDX"
    #: Registered hardware platform the run targets.  The estimator must
    #: be pre-trained against the same platform; the generator decodes
    #: into, and decode repair / ground-truth reporting evaluate with,
    #: this platform's design space and analytical model.
    platform: str = "eyeriss"
    #: Registered workload the run belongs to.  The empty string (the
    #: default) means "derive from the search space's name", which is
    #: what every legacy caller does; multi-workload manifest builders
    #: (the campaign driver) set it explicitly so structural grouping
    #: and run keys can tell workloads apart without the space object.
    #: When set, it must match the space the run is dispatched with.
    workload: str = ""


def resolve_workload(space: SearchSpace, config: "SearchConfig"):
    """The :class:`~repro.workload.Workload` of one run.

    ``config.workload`` (when set) must agree with the space the run is
    dispatched with — a mismatch means a manifest was built against the
    wrong space and would silently search the wrong problem.  Both
    engines (and the scheduler's early validation) resolve through
    here, so the error reads the same everywhere.
    """
    from repro.workload import as_workload

    if config.workload and config.workload != space.name:
        raise ValueError(
            f"config targets workload {config.workload!r} but the search "
            f"space is {space.name!r}; dispatch the config with its own "
            f"workload's space (repro.workload.get_workload("
            f"{config.workload!r}).space())"
        )
    return as_workload(space.name)


class _DirectBeta(nn.Module):
    """Auto-NBA-style free hardware parameters (no generator network)."""

    def __init__(self, seed: int = 0, platform: str = "eyeriss") -> None:
        super().__init__()
        from repro.accelerator.platform import as_platform

        self.platform = as_platform(platform).name
        rng = np.random.default_rng(seed)
        self.raw = nn.Parameter(rng.normal(0.0, 0.1, size=AcceleratorConfig.vector_dim()))

    def forward(self, arch_features: Tensor) -> Tensor:  # features unused
        size_part = ops.sigmoid(self.raw[np.arange(3)])
        dataflow_part = ops.softmax(self.raw[np.arange(3, 6)], axis=-1)
        return ops.concat([size_part, dataflow_part], axis=0)

    def discretize(self, arch_features: Tensor) -> AcceleratorConfig:
        from repro.autodiff import no_grad

        with no_grad():
            return AcceleratorConfig.from_vector(
                self.forward(arch_features).data, platform=self.platform
            )


def neighbourhood_configs(config: AcceleratorConfig, platform=None):
    """Discrete configs near ``config`` (the decode-repair scan set).

    The neighbourhood is clipped to the config's platform design space
    (or an explicitly passed platform's).
    """
    from repro.accelerator.config import DATAFLOWS
    from repro.accelerator.platform import as_platform

    plat = as_platform(platform if platform is not None else config.platform)
    rows_range, cols_range = plat.pe_rows_range, plat.pe_cols_range
    rf_options = plat.rf_bytes_options
    rf_index = rf_options.index(config.rf_bytes)
    rows_opts = [
        r for r in (config.pe_rows - 1, config.pe_rows, config.pe_rows + 1)
        if rows_range[0] <= r <= rows_range[-1]
    ]
    cols_opts = [
        c for c in (config.pe_cols - 2, config.pe_cols, config.pe_cols + 2)
        if cols_range[0] <= c <= cols_range[-1]
    ]
    rf_opts = [
        rf_options[i]
        for i in (rf_index - 1, rf_index, rf_index + 1)
        if 0 <= i < len(rf_options)
    ]
    for rows in rows_opts:
        for cols in cols_opts:
            for rf in rf_opts:
                for df in DATAFLOWS:
                    yield AcceleratorConfig(rows, cols, rf, df, platform=plat.name)


def decode_repair_scan(
    arch: NetworkArch,
    config: AcceleratorConfig,
    metrics,
    constraints: ConstraintSet,
    cost_weights: Optional[Dict[str, float]] = None,
    energy_table=None,
    platform=None,
):
    """Discretization-aware decode repair (shared by both engines).

    If ``metrics`` violates ``constraints``, scans the ~81-config
    neighbourhood with the vectorized subset evaluator and returns the
    cheapest ground-truth-feasible neighbour (metrics recomputed with
    the scalar oracle so reported numbers stay bit-identical to
    ``evaluate_network``).  ``platform`` defaults to the config's own;
    both the scan set and the evaluators are per-platform.  Both
    :class:`CoExplorer` and the fleet engine must call this one
    function — a private reimplementation in either engine breaks
    seed-for-seed parity (DESIGN.md).
    """
    from repro.accelerator.batch import evaluate_network_batch
    from repro.accelerator.platform import as_platform

    plat = as_platform(platform if platform is not None else config.platform)
    if not constraints or constraints.all_satisfied(metrics):
        return config, metrics
    neighbours = list(neighbourhood_configs(config, plat))
    evaluation = evaluate_network_batch(arch, neighbours, energy_table, plat)
    metric_arrays = {
        "latency": evaluation.latency_ms,
        "energy": evaluation.energy_mj,
        "area": evaluation.area_mm2,
    }
    feasible = np.ones(len(neighbours), dtype=bool)
    for constraint in constraints:
        feasible &= metric_arrays[constraint.metric] <= constraint.bound
    if not feasible.any():
        return config, metrics
    costs = np.where(feasible, evaluation.cost_hw(cost_weights), np.inf)
    chosen = neighbours[int(np.argmin(costs))]
    return chosen, evaluate_network(arch, chosen, energy_table, plat)


def differentiable_edp(metrics: Tensor) -> Tensor:
    """Normalized energy-delay product — the ablation cost function."""
    lat = metrics[np.array([METRIC_INDEX["latency"]])].reshape(())
    energy = metrics[np.array([METRIC_INDEX["energy"]])].reshape(())
    return (
        lat
        * energy
        * (1.0 / (REFERENCE_SCALES["latency_ms"] * REFERENCE_SCALES["energy_mj"]))
        * 10.0  # keep the magnitude comparable to cost_hw
    )


def differentiable_cost_hw(metrics: Tensor, weights: Optional[Dict[str, float]] = None) -> Tensor:
    """Eq. 10 on an estimator output tensor (3,), differentiable."""
    w = weights or COST_WEIGHTS
    lat = metrics[np.array([METRIC_INDEX["latency"]])].reshape(())
    energy = metrics[np.array([METRIC_INDEX["energy"]])].reshape(())
    area = metrics[np.array([METRIC_INDEX["area"]])].reshape(())
    return (
        lat * (w["latency"] / REFERENCE_SCALES["latency_ms"])
        + energy * (w["energy"] / REFERENCE_SCALES["energy_mj"])
        + area * (w["area"] / REFERENCE_SCALES["area_mm2"])
    )


class CoExplorer:
    """Differentiable network/accelerator co-exploration engine."""

    def __init__(
        self,
        space: SearchSpace,
        estimator: CostEstimator,
        config: SearchConfig,
        surrogate: Optional[AccuracySurrogate] = None,
        dataset=None,
    ) -> None:
        if not estimator.frozen:
            raise ValueError("estimator must be pre-trained and frozen before search")
        from repro.accelerator.platform import as_platform

        self.space = space
        self.estimator = estimator
        self.config = config
        self.workload = resolve_workload(space, config)
        self.platform = as_platform(config.platform)
        est_platform = getattr(estimator, "platform", "eyeriss")
        if est_platform != self.platform.name:
            raise ValueError(
                f"estimator is pre-trained for platform {est_platform!r} but the "
                f"search targets {self.platform.name!r}; pre-train one per platform "
                f"(see experiments.common.get_estimator)"
            )
        self.rng = np.random.default_rng(config.seed)

        if config.fidelity == "surrogate":
            # Canonical surrogate for reporting; jittered copy for search.
            self.surrogate = surrogate or AccuracySurrogate(space, seed=0)
            self._search_surrogate = AccuracySurrogate(
                space,
                seed=0,
                landscape_jitter=config.landscape_jitter,
                jitter_seed=config.seed,
            )
            self.supernet = None
            self.alpha = nn.Parameter(np.zeros((space.num_layers, space.num_choices)))
            self._train_loader = None
            self._val_loader = None
        elif config.fidelity == "full":
            if dataset is None:
                raise ValueError("full fidelity requires a dataset")
            from repro.data import DataLoader, train_val_split

            self.surrogate = surrogate or AccuracySurrogate(space, seed=0)
            self.supernet = SuperNet(space, seed=config.seed)
            self.alpha = self.supernet.alpha
            train_ds, val_ds = train_val_split(dataset, 0.5, seed=config.seed)
            self._train_loader = DataLoader(
                train_ds, batch_size=config.batch_size, seed=config.seed
            )
            self._val_loader = DataLoader(
                val_ds, batch_size=config.batch_size, seed=config.seed + 1
            )
            self._w_optimizer = nn.SGD(
                self.supernet.weight_parameters(),
                lr=config.w_lr,
                momentum=0.9,
                nesterov=True,
                weight_decay=1e-3,
            )
        else:
            raise ValueError(f"unknown fidelity {config.fidelity!r}")

        if config.use_generator:
            self.generator = HardwareGenerator(
                space, seed=config.seed + 1, platform=self.platform.name
            )
        else:
            self.generator = _DirectBeta(
                seed=config.seed + 1, platform=self.platform.name
            )

        self.delta_policy = DeltaPolicy(delta0=config.delta0, p=config.p)
        self._alpha_opt = nn.SGD([self.alpha], lr=config.alpha_lr)
        self._v_opt = nn.SGD(self.generator.parameters(), lr=config.v_lr)
        # Internally tightened bounds (see SearchConfig.constraint_margin).
        # Area uses a smaller margin: it is coarsely quantized and the
        # estimator predicts it to ~99%, so a large margin can push the
        # internal bound below the design-space floor (permanent,
        # unfixable violation that wrecks the search).
        self._internal_constraints = ConstraintSet.from_dict(
            {
                c.metric: c.bound
                * (
                    1.0
                    - (
                        min(config.constraint_margin, 0.02)
                        if c.metric == "area"
                        else config.constraint_margin
                    )
                )
                for c in config.constraints
            }
        )

    # ------------------------------------------------------------------
    # Loss pieces
    # ------------------------------------------------------------------
    def _loss_nas(self, feats: Tensor) -> Tensor:
        if self.config.fidelity == "surrogate":
            return self._search_surrogate.loss_nas(feats)
        images, labels = next(iter(self._val_loader))
        path = self.supernet.sample_path(self.rng)
        logits = self.supernet(Tensor(images), path=path)
        return nn.cross_entropy(logits, labels)

    def _train_supernet_weights(self) -> None:
        for (images, labels), _ in zip(
            self._train_loader, range(self.config.w_steps_per_epoch)
        ):
            self._w_optimizer.zero_grad()
            path = self.supernet.sample_path(self.rng)
            logits = self.supernet(Tensor(images), path=path)
            nn.cross_entropy(logits, labels).backward()
            self._w_optimizer.step()

    # ------------------------------------------------------------------
    # The search loop
    # ------------------------------------------------------------------
    def search(self) -> SearchResult:
        cfg = self.config
        history: List[EpochRecord] = []
        for epoch in range(cfg.epochs):
            if self.supernet is not None:
                self._train_supernet_weights()

            # Anneal over the first 60% of the run, then hold, so the
            # final phase operates in a near-discrete regime.
            progress = min(1.0, epoch / max(0.6 * (cfg.epochs - 1), 1))
            tau = cfg.tau_start * (cfg.tau_end / cfg.tau_start) ** progress

            # Build the shared forward graph on the tempered relaxation.
            sharpened = self.alpha * (1.0 / tau)
            feats = arch_features_from_alpha(self.space, sharpened)
            loss_nas = self._loss_nas(feats)
            summary = summary_from_probs(self.space, feats)
            ext_feats = ops.concat([feats, summary], axis=0)
            beta = self.generator(feats)
            metrics_pred = self.estimator.predict_metrics(ext_feats, beta)
            if cfg.use_edp_cost:
                cost = differentiable_edp(metrics_pred)
            else:
                cost = differentiable_cost_hw(metrics_pred, cfg.cost_weights)

            soft_term = None
            if cfg.soft_lambda > 0 and cfg.constraints:
                # lambda_soft * sum max(t/T - 1, 0), the TF-NAS-style
                # penalty used for the DANCE+Soft baseline.
                terms = []
                for constraint in cfg.constraints:
                    idx = METRIC_INDEX[constraint.metric]
                    t = metrics_pred[np.array([idx])].reshape(())
                    terms.append(ops.maximum(t * (1.0 / constraint.bound) - 1.0, 0.0))
                soft_term = terms[0]
                for term in terms[1:]:
                    soft_term = soft_term + term
                soft_term = soft_term * cfg.soft_lambda

            hw_objective = cost if soft_term is None else cost + soft_term
            global_loss = loss_nas
            if cfg.include_cost_term:
                cost_norm = self.workload.cost_normalization()
                global_loss = global_loss + hw_objective * (
                    cfg.lambda_cost * LAMBDA_COST_SCALE * cost_norm
                )
            if cfg.size_penalty_lambda > 0:
                total_macs = summary[np.array([0])].reshape(())
                global_loss = global_loss + total_macs * cfg.size_penalty_lambda

            # Pass A: global loss -> g_loss for alpha.
            self._zero_all()
            global_loss.backward()
            g_loss_alpha = self._grad_of(self.alpha)
            if cfg.fidelity == "surrogate" and cfg.nas_grad_noise > 0:
                scale = cfg.nas_grad_noise * float(np.abs(g_loss_alpha).mean())
                g_loss_alpha = g_loss_alpha + self.rng.normal(
                    0.0, scale, size=g_loss_alpha.shape
                )

            # Pass B: hardware objective -> gradient for the generator
            # weights v (paper: "use g_CostHW in place of g_Loss").
            self._zero_all()
            if cfg.include_cost_term:
                hw_objective.backward()
            g_v = [self._grad_of(p) for p in self.generator.parameters()]

            # Violation is checked on the *dominant* (argmax) architecture,
            # straight-through style: the soft relaxation underestimates
            # hardware cost while alpha is diffuse, which would otherwise
            # hide violations until too late in the run.
            hard_metrics = self._predict_dominant_metrics()
            violated = bool(
                self._internal_constraints
                and self._internal_constraints.violated(hard_metrics)
            )
            manipulated_alpha = manipulated_v = False
            if cfg.hard_constraints and self._internal_constraints:
                # Pass C: constraint loss -> g_const for alpha and v.
                self._zero_all()
                const_loss = self._internal_constraints.constraint_loss(metrics_pred)
                if const_loss.requires_grad:
                    const_loss.backward()
                g_const_alpha = self._grad_of(self.alpha)
                g_const_v = [self._grad_of(p) for p in self.generator.parameters()]

                delta = self.delta_policy.delta
                new_alpha, manipulated_alpha = manipulate_gradient(
                    g_loss_alpha.reshape(-1),
                    g_const_alpha.reshape(-1),
                    violated,
                    delta,
                    max_norm=cfg.max_correction_norm,
                    force=cfg.manipulate_always,
                )
                g_loss_alpha = new_alpha.reshape(self.alpha.shape)

                flat_v = np.concatenate([g.reshape(-1) for g in g_v]) if g_v else np.zeros(0)
                flat_cv = (
                    np.concatenate([g.reshape(-1) for g in g_const_v]) if g_const_v else np.zeros(0)
                )
                if cfg.manipulate_generator:
                    new_v, manipulated_v = manipulate_gradient(
                        flat_v,
                        flat_cv,
                        violated,
                        delta,
                        max_norm=cfg.max_correction_norm,
                        force=cfg.manipulate_always,
                    )
                else:
                    new_v, manipulated_v = flat_v, False
                offset = 0
                for i, g in enumerate(g_v):
                    n = g.size
                    g_v[i] = new_v[offset : offset + n].reshape(g.shape)
                    offset += n
                self.delta_policy.update(violated)

            # Updates.
            self.alpha.grad = g_loss_alpha
            self._alpha_opt.step()
            if cfg.include_cost_term:
                for p, g in zip(self.generator.parameters(), g_v):
                    p.grad = g
                self._v_opt.step()

            history.append(
                EpochRecord(
                    epoch=epoch,
                    loss_nas=loss_nas.item(),
                    cost_hw=cost.item(),
                    global_loss=global_loss.item(),
                    predicted_latency_ms=float(hard_metrics[0]),
                    predicted_energy_mj=float(hard_metrics[1]),
                    predicted_area_mm2=float(hard_metrics[2]),
                    delta=self.delta_policy.delta,
                    violated=violated,
                    manipulated_alpha=manipulated_alpha,
                    manipulated_v=manipulated_v,
                )
            )
        return self._finalize(history)

    # ------------------------------------------------------------------
    def _zero_all(self) -> None:
        self.alpha.zero_grad()
        for p in self.generator.parameters():
            p.zero_grad()
        if self.supernet is not None:
            self.supernet.zero_grad()

    @staticmethod
    def _grad_of(param) -> np.ndarray:
        return np.zeros_like(param.data) if param.grad is None else param.grad.copy()

    def _predict_dominant_metrics(self) -> np.ndarray:
        """Estimator metrics of the current argmax architecture with the
        generator's hardware for it (no gradients)."""
        from repro.arch.encoding import extended_features_from_indices
        from repro.autodiff import no_grad

        arch = self.dominant_arch()
        one_hot = arch_features_from_indices(self.space, arch.to_indices())
        with no_grad():
            beta = self.generator(Tensor(one_hot)).data
        features = np.concatenate(
            [extended_features_from_indices(self.space, arch.to_indices()), beta]
        )
        return self.estimator.predict_numpy(features.reshape(1, -1))[0]

    def dominant_arch(self) -> NetworkArch:
        probs = ops.softmax(self.alpha + alpha_bias(self.space), axis=-1).data
        indices = []
        for li, spec in enumerate(self.space.layers):
            n_valid = len(spec.candidates())
            indices.append(int(probs[li, :n_valid].argmax()))
        return NetworkArch.from_indices(self.space, indices)

    def _finalize(self, history: List[EpochRecord]) -> SearchResult:
        arch = self.dominant_arch()
        hard_feats = Tensor(arch_features_from_indices(self.space, arch.to_indices()))
        config = self.generator.discretize(hard_feats)
        table = self.platform.energy_table
        metrics = evaluate_network(arch, config, table, self.platform)
        if self.config.decode_repair:
            config, metrics = decode_repair_scan(
                arch,
                config,
                metrics,
                self.config.constraints,
                cost_weights=self.config.cost_weights,
                energy_table=table,
                platform=self.platform,
            )
        error = self.surrogate.trained_error(arch, seed=self.config.seed)
        return SearchResult(
            arch=arch,
            config=config,
            metrics=metrics,
            error_percent=error,
            loss_nas=self.surrogate.loss_of(arch),
            cost=cost_hw(metrics, self.config.cost_weights),
            constraints=self.config.constraints,
            in_constraint=self.config.constraints.all_satisfied(metrics),
            history=history,
            method=self.config.method_name,
            platform=self.platform.name,
        )
