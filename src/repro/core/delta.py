"""The delta schedule controlling the pulling magnitude (Sec. 4.3).

delta starts at ``delta0``; every step where the target metric still
violates the constraint multiplies it by ``(1 + p)``; once the
constraint is satisfied it resets to ``delta0``.  ``p`` is the paper's
only hyper-parameter (default 1e-2, studied in Fig. 4).
"""

from __future__ import annotations

import numpy as np


class DeltaPolicy:
    """Stateful delta update rule."""

    def __init__(self, delta0: float = 1e-4, p: float = 1e-2) -> None:
        if delta0 <= 0:
            raise ValueError("delta0 must be positive")
        if p <= 0:
            raise ValueError("p must be positive")
        self.delta0 = float(delta0)
        self.p = float(p)
        self.delta = float(delta0)

    def update(self, violated: bool) -> float:
        """Advance one step; returns the delta to use next."""
        if violated:
            self.delta *= 1.0 + self.p
        else:
            self.delta = self.delta0
        return self.delta

    def reset(self) -> None:
        self.delta = self.delta0

    def __repr__(self) -> str:
        return f"DeltaPolicy(delta={self.delta:.3e}, p={self.p})"


class DeltaPolicyArray:
    """Array-of-runs :class:`DeltaPolicy` for the search fleet.

    Holds one delta per run; ``update`` advances all runs at once with
    the same grow-by-``(1+p)`` / reset rule, elementwise (bitwise
    identical per run to the scalar policy).
    """

    def __init__(self, delta0, p) -> None:
        self.delta0 = np.asarray(delta0, dtype=float).copy()
        self.p = np.asarray(p, dtype=float).copy()
        if np.any(self.delta0 <= 0):
            raise ValueError("delta0 must be positive")
        if np.any(self.p <= 0):
            raise ValueError("p must be positive")
        self.delta = self.delta0.copy()

    def update(self, violated) -> np.ndarray:
        """Advance one step for every run; returns the new deltas."""
        violated = np.asarray(violated, dtype=bool)
        self.delta = np.where(violated, self.delta * (1.0 + self.p), self.delta0)
        return self.delta

    def reset(self) -> None:
        self.delta = self.delta0.copy()

    def __repr__(self) -> str:
        return f"DeltaPolicyArray(n={self.delta.size})"
