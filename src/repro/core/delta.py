"""The delta schedule controlling the pulling magnitude (Sec. 4.3).

delta starts at ``delta0``; every step where the target metric still
violates the constraint multiplies it by ``(1 + p)``; once the
constraint is satisfied it resets to ``delta0``.  ``p`` is the paper's
only hyper-parameter (default 1e-2, studied in Fig. 4).
"""

from __future__ import annotations


class DeltaPolicy:
    """Stateful delta update rule."""

    def __init__(self, delta0: float = 1e-4, p: float = 1e-2) -> None:
        if delta0 <= 0:
            raise ValueError("delta0 must be positive")
        if p <= 0:
            raise ValueError("p must be positive")
        self.delta0 = float(delta0)
        self.p = float(p)
        self.delta = float(delta0)

    def update(self, violated: bool) -> float:
        """Advance one step; returns the delta to use next."""
        if violated:
            self.delta *= 1.0 + self.p
        else:
            self.delta = self.delta0
        return self.delta

    def reset(self) -> None:
        self.delta = self.delta0

    def __repr__(self) -> str:
        return f"DeltaPolicy(delta={self.delta:.3e}, p={self.p})"
