"""Trainable MBConv blocks and full-network assembly.

Blocks follow MobileNetV2: pointwise expand + BN + ReLU6, depthwise
kxk + BN + ReLU6, pointwise project + BN, with a residual connection
when shapes allow.  Widths use the search space's reduced
``train_channels`` so CPU training stays feasible.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import nn
from repro.autodiff import Tensor
from repro.arch.network import NetworkArch
from repro.arch.space import LayerSpec, MBConvChoice


class MBConvBlock(nn.Module):
    """Inverted-residual block with configurable kernel and expansion."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int,
        expand: int,
        stride: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        mid = in_channels * expand
        self.use_residual = stride == 1 and in_channels == out_channels
        self.expand_conv = (
            None
            if expand == 1
            else nn.Conv2d(in_channels, mid, 1, rng=rng)
        )
        self.expand_bn = None if expand == 1 else nn.BatchNorm2d(mid)
        self.dw_conv = nn.Conv2d(
            mid, mid, kernel, stride=stride, padding=kernel // 2, groups=mid, rng=rng
        )
        self.dw_bn = nn.BatchNorm2d(mid)
        self.project_conv = nn.Conv2d(mid, out_channels, 1, rng=rng)
        self.project_bn = nn.BatchNorm2d(out_channels)
        self.act = nn.ReLU6()

    def forward(self, x: Tensor) -> Tensor:
        out = x
        if self.expand_conv is not None:
            out = self.act(self.expand_bn(self.expand_conv(out)))
        out = self.act(self.dw_bn(self.dw_conv(out)))
        out = self.project_bn(self.project_conv(out))
        if self.use_residual:
            out = out + x
        return out


class _Stem(nn.Module):
    """Fixed (3, 1) stem: 3x3 conv + BN + ReLU6."""

    def __init__(self, out_channels: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.conv = nn.Conv2d(3, out_channels, 3, padding=1, rng=rng)
        self.bn = nn.BatchNorm2d(out_channels)
        self.act = nn.ReLU6()

    def forward(self, x: Tensor) -> Tensor:
        return self.act(self.bn(self.conv(x)))


class _Head(nn.Module):
    """Global average pool + linear classifier."""

    def __init__(self, in_channels: int, num_classes: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.pool = nn.GlobalAvgPool2d()
        self.fc = nn.Linear(in_channels, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.fc(self.pool(x))


def make_block(
    spec: LayerSpec, choice: MBConvChoice, rng: np.random.Generator
) -> nn.Module:
    """Instantiate the trainable module for one layer candidate."""
    if choice.is_skip:
        return nn.Identity()
    return MBConvBlock(
        spec.train_in_channels,
        spec.train_out_channels,
        choice.kernel,
        choice.expand,
        spec.stride,
        rng=rng,
    )


def build_network_module(arch: NetworkArch, seed: int = 0) -> nn.Module:
    """Build the standalone trainable network for a discrete architecture.

    Used for final from-scratch training of searched solutions.
    """
    rng = np.random.default_rng(seed)
    space = arch.space
    blocks = [_Stem(space.train_stem_channels, rng)]
    for spec, choice in zip(space.layers, arch.choices):
        blocks.append(make_block(spec, choice, rng))
    blocks.append(_Head(space.train_final_channels, space.num_classes, rng))
    return nn.Sequential(*blocks)
