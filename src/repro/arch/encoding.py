"""Architecture feature encodings shared by estimator and generator.

A network is encoded layer-by-layer as a distribution over the
candidate set (one-hot for discrete architectures, softmax(alpha) for
the relaxed supernet).  Both produce the same flattened layout, so the
estimator trained on discrete samples accepts relaxed inputs during
differentiable search.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.autodiff import Tensor, ops
from repro.arch.space import SearchSpace


def arch_feature_dim(space: SearchSpace) -> int:
    """Dimensionality of the flattened architecture encoding."""
    return space.num_layers * space.num_choices


_MASK_CACHE: dict = {}
_BIAS_CACHE: dict = {}


def candidate_mask(space: SearchSpace) -> np.ndarray:
    """(L, C) boolean mask of valid candidate slots per layer.

    Memoized per space (callers treat it as read-only): it sits on the
    per-epoch search path of both engines.  Keyed on the space object
    itself — an ``id()`` key would collide when a freed space's address
    is reused; pinning the handful of spaces a process creates is the
    cheaper failure mode.
    """
    if space not in _MASK_CACHE:
        mask = np.zeros((space.num_layers, space.num_choices), dtype=bool)
        for i, spec in enumerate(space.layers):
            mask[i, : len(spec.candidates())] = True
        _MASK_CACHE[space] = mask
    return _MASK_CACHE[space]


def alpha_bias(space: SearchSpace, fill: float = -1e9) -> np.ndarray:
    """Additive bias that removes invalid slots from a masked softmax.

    Memoized per (space, fill) — same per-epoch-path rationale (and
    same object-keying) as :func:`candidate_mask`; callers must not
    mutate the result.
    """
    key = (space, fill)
    if key not in _BIAS_CACHE:
        bias = np.zeros((space.num_layers, space.num_choices))
        bias[~candidate_mask(space)] = fill
        _BIAS_CACHE[key] = bias
    return _BIAS_CACHE[key]


def arch_features_from_indices(space: SearchSpace, indices: Sequence[int]) -> np.ndarray:
    """One-hot encoding of a discrete architecture, flattened to 1-D."""
    feats = np.zeros((space.num_layers, space.num_choices))
    for i, idx in enumerate(indices):
        n_valid = len(space.layers[i].candidates())
        feats[i, int(idx) % n_valid] = 1.0
    return feats.reshape(-1)


def arch_features_from_alpha(space: SearchSpace, alpha: Tensor) -> Tensor:
    """Differentiable soft encoding: masked softmax of ``alpha`` rows.

    ``alpha`` has shape (num_layers, num_choices); invalid slots get a
    large negative bias so their probability is exactly ~0.
    """
    if alpha.shape != (space.num_layers, space.num_choices):
        raise ValueError(
            f"alpha shape {alpha.shape} does not match space "
            f"({space.num_layers}, {space.num_choices})"
        )
    biased = alpha + alpha_bias(space)
    probs = ops.softmax(biased, axis=-1)
    return probs.reshape(-1)


# ----------------------------------------------------------------------
# Engineered summary features (linear in the choice probabilities)
# ----------------------------------------------------------------------
_STATS_CACHE: dict = {}

#: Number of global engineered summary features (total macs, weights,
#: depthwise macs); per-layer expected MACs are appended on top.
GLOBAL_SUMMARY_DIM = 3


def summary_dim(space: SearchSpace) -> int:
    """Global summaries plus one expected-MACs feature per layer."""
    return GLOBAL_SUMMARY_DIM + space.num_layers


def _choice_stats(space: SearchSpace) -> np.ndarray:
    """(3, L, C) per-choice MACs, weights, depthwise MACs (normalized).

    These are properties of each candidate block at paper-scale widths;
    their expectation under the architecture distribution is linear in
    the probabilities, so the summary stays differentiable.
    """
    if space in _STATS_CACHE:
        return _STATS_CACHE[space]

    stats = np.zeros((3, space.num_layers, space.num_choices))
    for li, spec in enumerate(space.layers):
        for ci, choice in enumerate(spec.candidates()):
            if choice.is_skip:
                continue
            mid = spec.in_channels * choice.expand
            macs = weights = dw = 0.0
            if choice.expand != 1:
                expand_macs = spec.in_channels * mid * spec.in_size**2
                macs += expand_macs
                weights += spec.in_channels * mid
            dw_macs = mid * choice.kernel**2 * spec.out_size**2
            macs += dw_macs
            dw += dw_macs
            weights += mid * choice.kernel**2
            proj_macs = mid * spec.out_channels * spec.out_size**2
            macs += proj_macs
            weights += mid * spec.out_channels
            stats[0, li, ci] = macs
            stats[1, li, ci] = weights
            stats[2, li, ci] = dw
    # Normalize each stat by the max-network total, keeping values O(1).
    for s in range(3):
        total_max = sum(stats[s, li].max() for li in range(space.num_layers))
        if total_max > 0:
            stats[s] /= total_max
    _STATS_CACHE[space] = stats
    return stats


def summary_from_probs(space: SearchSpace, probs_flat) -> Tensor:
    """Expected workload summary — differentiable.

    Layout: [total_macs, total_weights, total_dw_macs, macs_layer_0,
    ..., macs_layer_{L-1}], all normalized to O(1).  The per-layer MAC
    expectations give the estimator a nearly linear handle on the
    compute-bound latency component.
    """
    from repro.autodiff import as_tensor

    stats = _choice_stats(space)
    probs = as_tensor(probs_flat).reshape(space.num_layers, space.num_choices)
    parts = [
        (probs * stats[s]).sum().reshape(1) for s in range(GLOBAL_SUMMARY_DIM)
    ]
    per_layer_macs = (probs * stats[0]).sum(axis=1) * space.num_layers
    parts.append(per_layer_macs)
    return ops.concat(parts, axis=0)


def extended_features_from_alpha(space: SearchSpace, alpha: Tensor) -> Tensor:
    """One-hot-soft block plus engineered summary, differentiable."""
    probs = arch_features_from_alpha(space, alpha)
    return ops.concat([probs, summary_from_probs(space, probs)], axis=0)


def extended_features_from_indices(space: SearchSpace, indices: Sequence[int]) -> np.ndarray:
    """Discrete counterpart of :func:`extended_features_from_alpha`."""
    one_hot = arch_features_from_indices(space, indices)
    summary = summary_from_probs(space, one_hot).data
    return np.concatenate([one_hot, summary])


def extended_feature_dim(space: SearchSpace) -> int:
    return arch_feature_dim(space) + summary_dim(space)


# ----------------------------------------------------------------------
# Batched (run-axis) encodings for the search fleet
# ----------------------------------------------------------------------
# These mirror the scalar functions above with a leading run axis; all
# arithmetic is elementwise or reduces over trailing axes, so every row
# is bitwise identical to the scalar path (the fleet parity contract,
# see DESIGN.md).  They work on raw arrays — the fleet sits inside a
# three-backward-passes-per-epoch hot loop and hand-writes the VJPs, so
# wrapping these forwards in autodiff tensors would only add dispatch
# cost.  ``tests/test_fleet_parity.py`` pins each of them against its
# scalar twin.


def arch_features_from_alpha_batch(space: SearchSpace, alpha: np.ndarray) -> np.ndarray:
    """Batched masked-softmax encoding: (N, L, C) -> (N, L*C), raw arrays."""
    alpha = np.asarray(alpha)
    if alpha.shape[1:] != (space.num_layers, space.num_choices):
        raise ValueError(
            f"alpha shape {alpha.shape} does not match space "
            f"(N, {space.num_layers}, {space.num_choices})"
        )
    biased = alpha + alpha_bias(space)
    shifted = biased - biased.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    probs = exp / exp.sum(axis=-1, keepdims=True)
    return probs.reshape(alpha.shape[0], -1)


def arch_features_from_indices_batch(space: SearchSpace, indices: np.ndarray) -> np.ndarray:
    """One-hot encodings of N discrete architectures: (N, L) -> (N, L*C)."""
    indices = np.asarray(indices, dtype=int)
    n = indices.shape[0]
    n_valid = np.array([len(spec.candidates()) for spec in space.layers])
    feats = np.zeros((n, space.num_layers, space.num_choices))
    rows = np.arange(n)[:, None]
    layers = np.arange(space.num_layers)[None, :]
    feats[rows, layers, indices % n_valid] = 1.0
    return feats.reshape(n, -1)


def summary_from_probs_batch(space: SearchSpace, probs_flat: np.ndarray) -> np.ndarray:
    """Batched expected workload summary: (N, L*C) -> (N, 3 + L), raw arrays.

    The per-layer MACs term reuses the ``stats[0]`` product (the scalar
    graph recomputes it as a separate node; the values are identical).
    """
    stats = _choice_stats(space)
    probs = np.asarray(probs_flat)
    n = probs.shape[0]
    probs = probs.reshape(n, space.num_layers, space.num_choices)
    weighted0 = probs * stats[0]
    parts = [
        weighted0.sum(axis=(1, 2)).reshape(n, 1),
        (probs * stats[1]).sum(axis=(1, 2)).reshape(n, 1),
        (probs * stats[2]).sum(axis=(1, 2)).reshape(n, 1),
        weighted0.sum(axis=2) * space.num_layers,
    ]
    return np.concatenate(parts, axis=1)


def extended_features_from_indices_batch(
    space: SearchSpace, indices: np.ndarray
) -> np.ndarray:
    """Batched discrete extended features: (N, L) -> (N, L*C + 3 + L)."""
    one_hot = arch_features_from_indices_batch(space, indices)
    summary = summary_from_probs_batch(space, one_hot)
    return np.concatenate([one_hot, summary], axis=1)
