"""DARTS-style supernet: continuous mixture over all candidates.

The paper notes HDX "is orthogonal to the NAS implementation and has
the flexibility to choose from any differentiable NAS algorithms, such
as DARTS or OFA".  This module provides the DARTS-style relaxation as
an alternative to the ProxylessNAS path-sampling supernet: every
candidate block runs on every forward pass and outputs are blended by
softmax(alpha), giving exact (not estimated) gradients to alpha at a
higher compute cost.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro import nn
from repro.autodiff import Tensor, ops
from repro.arch.blocks import _Head, _Stem, make_block
from repro.arch.encoding import alpha_bias, arch_features_from_alpha
from repro.arch.network import NetworkArch
from repro.arch.space import SearchSpace


class DartsSuperNet(nn.Module):
    """Weight-sharing supernet with DARTS mixed operations."""

    def __init__(self, space: SearchSpace, seed: int = 0) -> None:
        super().__init__()
        self.space = space
        rng = np.random.default_rng(seed)
        self.stem = _Stem(space.train_stem_channels, rng)
        self.layer_candidates: List[List[nn.Module]] = []
        for li, spec in enumerate(space.layers):
            candidates = []
            for ci, choice in enumerate(spec.candidates()):
                block = make_block(spec, choice, rng)
                setattr(self, f"l{li}_c{ci}", block)
                candidates.append(block)
            self.layer_candidates.append(candidates)
        self.head = _Head(space.train_final_channels, space.num_classes, rng)
        self.alpha = nn.Parameter(np.zeros((space.num_layers, space.num_choices)))
        self._alpha_bias = alpha_bias(space)

    # ------------------------------------------------------------------
    def weight_parameters(self) -> List[nn.Parameter]:
        return [p for _, p in self.named_parameters() if p is not self.alpha]

    def arch_parameters(self) -> List[nn.Parameter]:
        return [self.alpha]

    def alpha_probs(self) -> Tensor:
        return ops.softmax(self.alpha + self._alpha_bias, axis=-1)

    def arch_features(self) -> Tensor:
        return arch_features_from_alpha(self.space, self.alpha)

    def dominant_arch(self) -> NetworkArch:
        probs = self.alpha_probs().data
        indices = []
        for li, spec in enumerate(self.space.layers):
            n_valid = len(spec.candidates())
            indices.append(int(probs[li, :n_valid].argmax()))
        return NetworkArch.from_indices(self.space, indices)

    # ------------------------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:
        """Blend every candidate's output by its softmax(alpha) weight."""
        probs = self.alpha_probs()
        out = self.stem(x)
        for li, candidates in enumerate(self.layer_candidates):
            n_valid = len(self.space.layers[li].candidates())
            mixed: Optional[Tensor] = None
            for ci in range(n_valid):
                weight = probs[(np.array([li]), np.array([ci]))].reshape(1, 1, 1, 1)
                term = candidates[ci](out) * weight
                mixed = term if mixed is None else mixed + term
            out = mixed
        return self.head(out)
