"""Definition of the MBConv search space.

Two channel widths exist side by side:

* ``channels`` — paper-scale widths fed to the hardware cost model, so
  latency/energy land in the ranges the paper reports (tens of ms).
* ``train_channels`` — reduced widths used to instantiate trainable
  modules so supernet training is feasible on offline CPUs.

Both describe the *same* architecture decisions (kernel size, expand
ratio, depth); only the width scale differs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class MBConvChoice:
    """One candidate operation for a searchable layer.

    ``kernel == 0`` encodes the identity (skip) candidate used for
    depth search.
    """

    kernel: int
    expand: int

    @property
    def is_skip(self) -> bool:
        return self.kernel == 0

    def __str__(self) -> str:
        return "skip" if self.is_skip else f"({self.kernel},{self.expand})"


SKIP = MBConvChoice(kernel=0, expand=0)

#: The paper's candidate set: kernel {3,5,7} x expand {3,6}.
CANDIDATES: Tuple[MBConvChoice, ...] = tuple(
    MBConvChoice(k, e) for k in (3, 5, 7) for e in (3, 6)
)


@dataclass(frozen=True)
class LayerSpec:
    """Static configuration of one searchable layer position."""

    in_channels: int
    out_channels: int
    stride: int
    in_size: int  # input spatial resolution (paper scale)
    train_in_channels: int
    train_out_channels: int
    allow_skip: bool

    @property
    def out_size(self) -> int:
        return self.in_size // self.stride

    def candidates(self) -> Tuple[MBConvChoice, ...]:
        if self.allow_skip:
            return CANDIDATES + (SKIP,)
        return CANDIDATES


class SearchSpace:
    """A stack of searchable MBConv layers plus a fixed stem/head.

    The stem is the fixed (3, 1) block shown in the paper's Figure 5;
    the head is a global-average-pool + linear classifier.
    """

    def __init__(
        self,
        name: str,
        input_size: int,
        train_input_size: int,
        num_classes: int,
        stem_channels: int,
        train_stem_channels: int,
        stage_plan: Sequence[Tuple[int, int, int, int]],
    ) -> None:
        """``stage_plan`` rows are (paper_width, train_width, n_layers, stride)."""
        self.name = name
        self.input_size = input_size
        self.train_input_size = train_input_size
        self.num_classes = num_classes
        self.stem_channels = stem_channels
        self.train_stem_channels = train_stem_channels

        self.layers: List[LayerSpec] = []
        in_ch, t_in_ch = stem_channels, train_stem_channels
        size = input_size  # stem keeps resolution (stride 1, pad 1)
        for width, t_width, n_layers, stride in stage_plan:
            for i in range(n_layers):
                layer_stride = stride if i == 0 else 1
                # Skip is only valid when the block could be an identity:
                # same channels and stride 1.
                allow_skip = layer_stride == 1 and in_ch == width
                self.layers.append(
                    LayerSpec(
                        in_channels=in_ch,
                        out_channels=width,
                        stride=layer_stride,
                        in_size=size,
                        train_in_channels=t_in_ch,
                        train_out_channels=t_width,
                        allow_skip=allow_skip,
                    )
                )
                in_ch, t_in_ch = width, t_width
                size //= layer_stride
        self.final_channels = in_ch
        self.train_final_channels = t_in_ch
        self.final_size = size

    # ------------------------------------------------------------------
    @property
    def num_layers(self) -> int:
        return len(self.layers)

    @property
    def num_choices(self) -> int:
        """Maximum number of candidates across layers (skip included)."""
        return len(CANDIDATES) + 1

    def choices_for(self, layer_index: int) -> Tuple[MBConvChoice, ...]:
        return self.layers[layer_index].candidates()

    def candidate_counts(self) -> List[int]:
        return [len(spec.candidates()) for spec in self.layers]

    def candidate_count_array(self):
        """Per-layer candidate counts as a cached int64 array.

        The batched samplers and encoders index with this on every
        call; the array is created once per space and must be treated
        as read-only by callers.
        """
        if not hasattr(self, "_candidate_count_array"):
            import numpy as np

            self._candidate_count_array = np.asarray(
                self.candidate_counts(), dtype=np.int64
            )
        return self._candidate_count_array

    def total_architectures(self) -> int:
        total = 1
        for count in self.candidate_counts():
            total *= count
        return total

    def __repr__(self) -> str:
        return (
            f"SearchSpace({self.name}, layers={self.num_layers}, "
            f"archs={self.total_architectures():.3e})"
        )


def cifar_space(train_scale: int = 4) -> SearchSpace:
    """18-layer CIFAR-10 space (paper Sec. 4.4).

    Paper-scale widths follow a MobileNetV2-like progression; training
    widths divide them by ``2**train_scale``-ish factors via the plan
    below.
    """
    return SearchSpace(
        name="cifar10",
        input_size=32,
        train_input_size=16,
        num_classes=10,
        stem_channels=40,
        train_stem_channels=8,
        stage_plan=[
            # (paper_width, train_width, n_layers, first_stride)
            (40, 8, 4, 1),
            (80, 12, 5, 2),
            (160, 16, 5, 2),
            (320, 24, 4, 2),
        ],
    )


def imagenet_space() -> SearchSpace:
    """21-layer ImageNet space (paper Sec. 4.4)."""
    return SearchSpace(
        name="imagenet",
        input_size=64,
        train_input_size=24,
        num_classes=20,
        stem_channels=56,
        train_stem_channels=8,
        stage_plan=[
            (56, 8, 4, 1),
            (112, 12, 5, 2),
            (224, 16, 5, 2),
            (448, 20, 4, 2),
            (640, 24, 3, 2),
        ],
    )


def cifar100_space() -> SearchSpace:
    """20-layer CIFAR-100-scale space (not in the paper).

    Same 32x32 inputs as the CIFAR-10 space but a 100-way head and a
    deeper, wider stage plan: fine-grained classification needs more
    capacity, so the space leans on a 6-layer middle stage and a wider
    final stage than :func:`cifar_space`.
    """
    return SearchSpace(
        name="cifar100",
        input_size=32,
        train_input_size=16,
        num_classes=100,
        stem_channels=48,
        train_stem_channels=8,
        stage_plan=[
            (48, 8, 4, 1),
            (96, 12, 5, 2),
            (192, 16, 6, 2),
            (384, 24, 5, 2),
        ],
    )


def speech_space() -> SearchSpace:
    """12-layer small-input keyword-spotting space (not in the paper).

    Models an always-on audio/edge-vision workload: 24x24 inputs
    (spectrogram patches), 12 output classes, and a shallow, narrow
    layout — the depth/width profile is deliberately unlike the CIFAR
    and ImageNet spaces so per-workload cost normalization and
    surrogate calibration actually matter.
    """
    return SearchSpace(
        name="speech",
        input_size=24,
        train_input_size=12,
        num_classes=12,
        stem_channels=24,
        train_stem_channels=8,
        stage_plan=[
            (24, 8, 3, 1),
            (48, 12, 4, 2),
            (96, 16, 3, 2),
            (192, 24, 2, 2),
        ],
    )
