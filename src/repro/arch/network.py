"""Discrete network architectures and their convolution-layer expansion.

A :class:`NetworkArch` is a per-layer choice of MBConv candidate.  The
hardware cost model does not see MBConv blocks directly — it sees the
individual convolutions each block expands to (expand 1x1, depthwise
kxk, project 1x1), described by :class:`ConvLayerDesc`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.arch.space import MBConvChoice, SearchSpace, SKIP


@dataclass(frozen=True)
class ConvLayerDesc:
    """One convolution as consumed by the accelerator model.

    ``groups == in_channels == out_channels`` marks a depthwise layer.
    """

    in_channels: int
    out_channels: int
    kernel: int
    stride: int
    in_size: int
    groups: int = 1

    @property
    def out_size(self) -> int:
        return self.in_size // self.stride

    @property
    def macs(self) -> int:
        """Multiply-accumulate count for one inference."""
        per_output = (self.in_channels // self.groups) * self.kernel * self.kernel
        return self.out_channels * self.out_size * self.out_size * per_output

    @property
    def weight_count(self) -> int:
        return (
            self.out_channels * (self.in_channels // self.groups) * self.kernel * self.kernel
        )

    @property
    def input_count(self) -> int:
        return self.in_channels * self.in_size * self.in_size

    @property
    def output_count(self) -> int:
        return self.out_channels * self.out_size * self.out_size


class NetworkArch:
    """A concrete architecture: one candidate chosen per layer."""

    def __init__(self, space: SearchSpace, choices: Sequence[MBConvChoice]) -> None:
        if len(choices) != space.num_layers:
            raise ValueError(
                f"expected {space.num_layers} choices, got {len(choices)}"
            )
        for spec, choice in zip(space.layers, choices):
            if choice.is_skip and not spec.allow_skip:
                raise ValueError("skip chosen for a layer that cannot be skipped")
        self.space = space
        self.choices = tuple(choices)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_indices(cls, space: SearchSpace, indices: Sequence[int]) -> "NetworkArch":
        choices = []
        for spec, idx in zip(space.layers, indices):
            candidates = spec.candidates()
            choices.append(candidates[int(idx) % len(candidates)])
        return cls(space, choices)

    @classmethod
    def random(cls, space: SearchSpace, rng: np.random.Generator) -> "NetworkArch":
        indices = [rng.integers(0, len(spec.candidates())) for spec in space.layers]
        return cls.from_indices(space, indices)

    def to_indices(self) -> List[int]:
        out = []
        for spec, choice in zip(self.space.layers, self.choices):
            out.append(spec.candidates().index(choice))
        return out

    # ------------------------------------------------------------------
    # Properties consumed by the cost model
    # ------------------------------------------------------------------
    def conv_layers(self) -> List[ConvLayerDesc]:
        """Expand stem + MBConv blocks into individual convolutions."""
        space = self.space
        layers: List[ConvLayerDesc] = [
            # Fixed (3, 1) stem: plain 3x3 convolution.
            ConvLayerDesc(3, space.stem_channels, 3, 1, space.input_size)
        ]
        for spec, choice in zip(space.layers, self.choices):
            if choice.is_skip:
                continue
            mid = spec.in_channels * choice.expand
            if choice.expand != 1:
                layers.append(
                    ConvLayerDesc(spec.in_channels, mid, 1, 1, spec.in_size)
                )
            layers.append(
                ConvLayerDesc(mid, mid, choice.kernel, spec.stride, spec.in_size, groups=mid)
            )
            layers.append(
                ConvLayerDesc(mid, spec.out_channels, 1, 1, spec.out_size)
            )
        return layers

    def total_macs(self) -> int:
        return sum(layer.macs for layer in self.conv_layers())

    def total_weights(self) -> int:
        return sum(layer.weight_count for layer in self.conv_layers())

    def depth(self) -> int:
        """Number of non-skip MBConv blocks."""
        return sum(1 for c in self.choices if not c.is_skip)

    def __repr__(self) -> str:
        inner = " ".join(str(c) for c in self.choices)
        return f"NetworkArch[{self.space.name}: {inner}]"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, NetworkArch)
            and self.space is other.space
            and self.choices == other.choices
        )

    def __hash__(self) -> int:
        return hash((id(self.space), self.choices))
