"""Discrete network architectures and their convolution-layer expansion.

A :class:`NetworkArch` is a per-layer choice of MBConv candidate.  The
hardware cost model does not see MBConv blocks directly — it sees the
individual convolutions each block expands to (expand 1x1, depthwise
kxk, project 1x1), described by :class:`ConvLayerDesc`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.arch.space import MBConvChoice, SearchSpace, SKIP


@dataclass(frozen=True)
class ConvLayerDesc:
    """One convolution as consumed by the accelerator model.

    ``groups == in_channels == out_channels`` marks a depthwise layer.
    """

    in_channels: int
    out_channels: int
    kernel: int
    stride: int
    in_size: int
    groups: int = 1

    @property
    def out_size(self) -> int:
        return self.in_size // self.stride

    @property
    def macs(self) -> int:
        """Multiply-accumulate count for one inference."""
        per_output = (self.in_channels // self.groups) * self.kernel * self.kernel
        return self.out_channels * self.out_size * self.out_size * per_output

    @property
    def weight_count(self) -> int:
        return (
            self.out_channels * (self.in_channels // self.groups) * self.kernel * self.kernel
        )

    @property
    def input_count(self) -> int:
        return self.in_channels * self.in_size * self.in_size

    @property
    def output_count(self) -> int:
        return self.out_channels * self.out_size * self.out_size


class NetworkArch:
    """A concrete architecture: one candidate chosen per layer."""

    def __init__(self, space: SearchSpace, choices: Sequence[MBConvChoice]) -> None:
        if len(choices) != space.num_layers:
            raise ValueError(
                f"expected {space.num_layers} choices, got {len(choices)}"
            )
        for spec, choice in zip(space.layers, choices):
            if choice.is_skip and not spec.allow_skip:
                raise ValueError("skip chosen for a layer that cannot be skipped")
        self.space = space
        self.choices = tuple(choices)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_indices(cls, space: SearchSpace, indices: Sequence[int]) -> "NetworkArch":
        choices = []
        for spec, idx in zip(space.layers, indices):
            candidates = spec.candidates()
            choices.append(candidates[int(idx) % len(candidates)])
        return cls(space, choices)

    @classmethod
    def random(cls, space: SearchSpace, rng: np.random.Generator) -> "NetworkArch":
        indices = [rng.integers(0, len(spec.candidates())) for spec in space.layers]
        return cls.from_indices(space, indices)

    @classmethod
    def random_batch(
        cls, space: SearchSpace, n: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Sample ``n`` architectures as one ``(n, L)`` index matrix.

        Stream-equivalent to ``n`` sequential :meth:`random` calls with
        the same generator: row ``i`` equals
        ``NetworkArch.random(space, rng).to_indices()`` of the ``i``-th
        sequential call, and the generator ends in the same state
        (see :mod:`repro.rng`).  Rows feed :meth:`from_indices` and the
        batched encoders/oracle directly — no per-sample objects.
        """
        from repro.rng import bounded_integers_batch

        counts = space.candidate_count_array()
        bounds = np.broadcast_to(counts, (n, space.num_layers))
        return bounded_integers_batch(rng, bounds)

    def to_indices(self) -> List[int]:
        out = []
        for spec, choice in zip(self.space.layers, self.choices):
            out.append(spec.candidates().index(choice))
        return out

    # ------------------------------------------------------------------
    # Properties consumed by the cost model
    # ------------------------------------------------------------------
    def conv_layers(self) -> List[ConvLayerDesc]:
        """Expand stem + MBConv blocks into individual convolutions."""
        space = self.space
        layers: List[ConvLayerDesc] = [
            # Fixed (3, 1) stem: plain 3x3 convolution.
            ConvLayerDesc(3, space.stem_channels, 3, 1, space.input_size)
        ]
        for spec, choice in zip(space.layers, self.choices):
            if choice.is_skip:
                continue
            mid = spec.in_channels * choice.expand
            if choice.expand != 1:
                layers.append(
                    ConvLayerDesc(spec.in_channels, mid, 1, 1, spec.in_size)
                )
            layers.append(
                ConvLayerDesc(mid, mid, choice.kernel, spec.stride, spec.in_size, groups=mid)
            )
            layers.append(
                ConvLayerDesc(mid, spec.out_channels, 1, 1, spec.out_size)
            )
        return layers

    def total_macs(self) -> int:
        return sum(layer.macs for layer in self.conv_layers())

    def total_weights(self) -> int:
        return sum(layer.weight_count for layer in self.conv_layers())

    def depth(self) -> int:
        """Number of non-skip MBConv blocks."""
        return sum(1 for c in self.choices if not c.is_skip)

    def __repr__(self) -> str:
        inner = " ".join(str(c) for c in self.choices)
        return f"NetworkArch[{self.space.name}: {inner}]"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, NetworkArch)
            and self.space is other.space
            and self.choices == other.choices
        )

    def __hash__(self) -> int:
        return hash((id(self.space), self.choices))


# ----------------------------------------------------------------------
# Vectorized conv-layer expansion (the pair-batch oracle's front end)
# ----------------------------------------------------------------------
# ``conv_layers`` materializes ConvLayerDesc objects one architecture at
# a time; the pair-batch oracle needs the same expansion for thousands
# of architectures with zero per-sample Python.  Every candidate choice
# expands to a fixed, space-static list of at most three convolutions
# (expand 1x1, depthwise kxk, project 1x1), so the expansion of a whole
# batch is a table lookup: precompute per (layer, choice) the stacked
# base parameters of its convolutions, then gather with the index
# matrix.  Row order per architecture mirrors ``conv_layers`` exactly:
# stem first, then each layer's convolutions in expansion order —
# the accumulation-order half of the pair-oracle parity contract.

#: Column layout of a conv-parameter row (all exact small integers).
CONV_FIELDS = ("in_channels", "out_channels", "kernel", "in_size", "out_size", "groups")
_MAX_CONVS_PER_CHOICE = 3

_CONV_TABLE_CACHE: dict = {}


def _conv_row(layer: ConvLayerDesc) -> List[float]:
    return [
        layer.in_channels,
        layer.out_channels,
        layer.kernel,
        layer.in_size,
        layer.out_size,
        layer.groups,
    ]


def conv_layer_table(space: SearchSpace):
    """``(stem_row, table, counts)`` describing every choice's expansion.

    ``stem_row`` is the fixed stem convolution's parameter row (6,);
    ``table`` is ``(L, C, 3, 6)`` with choice ``(li, ci)``'s convolution
    rows stacked in expansion order (zero-padded); ``counts`` is
    ``(L, C)`` with the number of valid rows (0 for skip).  Memoized
    per space (read-only), like the encoding caches.
    """
    if space in _CONV_TABLE_CACHE:
        return _CONV_TABLE_CACHE[space]
    n_fields = len(CONV_FIELDS)
    table = np.zeros(
        (space.num_layers, space.num_choices, _MAX_CONVS_PER_CHOICE, n_fields)
    )
    counts = np.zeros((space.num_layers, space.num_choices), dtype=np.int64)
    for li, spec in enumerate(space.layers):
        for ci, choice in enumerate(spec.candidates()):
            if choice.is_skip:
                continue
            mid = spec.in_channels * choice.expand
            rows: List[List[float]] = []
            if choice.expand != 1:
                rows.append(
                    _conv_row(ConvLayerDesc(spec.in_channels, mid, 1, 1, spec.in_size))
                )
            rows.append(
                _conv_row(
                    ConvLayerDesc(
                        mid, mid, choice.kernel, spec.stride, spec.in_size, groups=mid
                    )
                )
            )
            rows.append(
                _conv_row(ConvLayerDesc(mid, spec.out_channels, 1, 1, spec.out_size))
            )
            table[li, ci, : len(rows)] = rows
            counts[li, ci] = len(rows)
    stem = np.asarray(
        _conv_row(ConvLayerDesc(3, space.stem_channels, 3, 1, space.input_size))
    )
    _CONV_TABLE_CACHE[space] = (stem, table, counts)
    return _CONV_TABLE_CACHE[space]


def conv_rows_from_indices(space: SearchSpace, indices: np.ndarray):
    """Expand an ``(N, L)`` index matrix into flattened conv-param rows.

    Returns ``(params, pair_index)``: ``params`` is ``(R, 6)`` with one
    row per convolution (columns as in :data:`CONV_FIELDS`), and
    ``pair_index`` maps each row to its architecture.  Rows of one
    architecture are contiguous and ordered exactly as its
    ``conv_layers()`` list; index values are taken modulo the per-layer
    candidate count, matching :meth:`NetworkArch.from_indices`.
    """
    indices = np.asarray(indices, dtype=np.int64)
    n, n_layers = indices.shape
    if n_layers != space.num_layers:
        raise ValueError(
            f"index matrix has {n_layers} layers, space has {space.num_layers}"
        )
    stem, table, counts = conv_layer_table(space)
    idx = indices % space.candidate_count_array()
    layer_axis = np.arange(space.num_layers)
    chosen = table[layer_axis[None, :], idx]  # (N, L, 3, 6)
    chosen_counts = counts[layer_axis[None, :], idx]  # (N, L)
    valid = (
        np.arange(_MAX_CONVS_PER_CHOICE)[None, None, :] < chosen_counts[:, :, None]
    )  # (N, L, 3)

    slots_per_arch = 1 + space.num_layers * _MAX_CONVS_PER_CHOICE
    all_rows = np.concatenate(
        [
            np.broadcast_to(stem, (n, 1, len(CONV_FIELDS))),
            chosen.reshape(n, -1, len(CONV_FIELDS)),
        ],
        axis=1,
    )  # (N, slots, 6)
    mask = np.concatenate(
        [np.ones((n, 1), dtype=bool), valid.reshape(n, -1)], axis=1
    )  # (N, slots)
    flat_mask = mask.reshape(-1)
    params = all_rows.reshape(-1, len(CONV_FIELDS))[flat_mask]
    pair_index = np.repeat(np.arange(n), slots_per_arch)[flat_mask]
    return params, pair_index
