"""Neural architecture search space and supernet (ProxylessNAS-style).

The space follows the paper's Section 4.4: MBConv blocks with kernel
size in {3, 5, 7} and expand ratio in {3, 6} (plus an identity/skip
candidate for depth search), 18 layers for CIFAR-10 and 21 for
ImageNet, with a fixed (3, 1) stem block.
"""

from repro.arch.space import (
    CANDIDATES,
    LayerSpec,
    MBConvChoice,
    SearchSpace,
    SKIP,
    cifar100_space,
    cifar_space,
    imagenet_space,
    speech_space,
)
from repro.arch.network import ConvLayerDesc, NetworkArch
from repro.arch.blocks import MBConvBlock, build_network_module
from repro.arch.supernet import SuperNet
from repro.arch.encoding import (
    arch_feature_dim,
    arch_features_from_alpha,
    arch_features_from_indices,
    extended_feature_dim,
    extended_features_from_alpha,
    extended_features_from_indices,
)

__all__ = [
    "MBConvChoice",
    "SKIP",
    "CANDIDATES",
    "LayerSpec",
    "SearchSpace",
    "cifar_space",
    "imagenet_space",
    "cifar100_space",
    "speech_space",
    "NetworkArch",
    "ConvLayerDesc",
    "MBConvBlock",
    "build_network_module",
    "SuperNet",
    "arch_feature_dim",
    "arch_features_from_alpha",
    "arch_features_from_indices",
    "extended_feature_dim",
    "extended_features_from_alpha",
    "extended_features_from_indices",
]
