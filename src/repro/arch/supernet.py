"""ProxylessNAS-style supernet with single-path sampling.

Every searchable layer holds all candidate blocks; a forward pass
samples one path from ``softmax(alpha)`` and executes only that block.
The executed output is scaled by ``p_i / stop_grad(p_i)``, which leaves
the forward value unchanged while letting gradients reach ``alpha``
through the sampled path's probability — the standard single-path
estimator used by differentiable NAS at scale.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro import nn
from repro.autodiff import Tensor, ops
from repro.arch.blocks import _Head, _Stem, make_block
from repro.arch.encoding import alpha_bias, arch_features_from_alpha
from repro.arch.network import NetworkArch
from repro.arch.space import SearchSpace


class SuperNet(nn.Module):
    """Weight-sharing supernet over a :class:`SearchSpace`."""

    def __init__(self, space: SearchSpace, seed: int = 0) -> None:
        super().__init__()
        self.space = space
        rng = np.random.default_rng(seed)
        self.stem = _Stem(space.train_stem_channels, rng)
        self.layer_candidates: List[List[nn.Module]] = []
        for li, spec in enumerate(space.layers):
            candidates = []
            for ci, choice in enumerate(spec.candidates()):
                block = make_block(spec, choice, rng)
                setattr(self, f"l{li}_c{ci}", block)
                candidates.append(block)
            self.layer_candidates.append(candidates)
        self.head = _Head(space.train_final_channels, space.num_classes, rng)
        # Architecture parameters: one row per layer, masked softmax.
        self.alpha = nn.Parameter(np.zeros((space.num_layers, space.num_choices)))
        self._alpha_bias = alpha_bias(space)
        self._path_rng = np.random.default_rng(seed + 1)

    # ------------------------------------------------------------------
    # Parameter partitions
    # ------------------------------------------------------------------
    def weight_parameters(self) -> List[nn.Parameter]:
        """All parameters except the architecture parameters ``alpha``."""
        return [p for _, p in self.named_parameters() if p is not self.alpha]

    def arch_parameters(self) -> List[nn.Parameter]:
        return [self.alpha]

    # ------------------------------------------------------------------
    # Architecture distribution
    # ------------------------------------------------------------------
    def alpha_probs(self) -> Tensor:
        """(L, C) differentiable candidate probabilities."""
        return ops.softmax(self.alpha + self._alpha_bias, axis=-1)

    def alpha_probs_numpy(self) -> np.ndarray:
        return self.alpha_probs().data

    def arch_features(self) -> Tensor:
        """Flattened soft encoding consumed by estimator/generator."""
        return arch_features_from_alpha(self.space, self.alpha)

    def sample_path(self, rng: Optional[np.random.Generator] = None) -> List[int]:
        """Sample one candidate index per layer from softmax(alpha)."""
        rng = rng or self._path_rng
        probs = self.alpha_probs_numpy()
        indices = []
        for li, spec in enumerate(self.space.layers):
            n_valid = len(spec.candidates())
            p = probs[li, :n_valid]
            p = p / p.sum()
            indices.append(int(rng.choice(n_valid, p=p)))
        return indices

    def dominant_indices(self) -> List[int]:
        """Most probable candidate per layer (the ``net(alpha)`` of Eq. 2)."""
        probs = self.alpha_probs_numpy()
        indices = []
        for li, spec in enumerate(self.space.layers):
            n_valid = len(spec.candidates())
            indices.append(int(probs[li, :n_valid].argmax()))
        return indices

    def dominant_arch(self) -> NetworkArch:
        return NetworkArch.from_indices(self.space, self.dominant_indices())

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------
    def forward(self, x: Tensor, path: Optional[Sequence[int]] = None) -> Tensor:
        """Run the supernet along ``path`` (sampled when omitted).

        Gradients reach ``alpha`` via the probability-ratio gate on each
        executed block.
        """
        if path is None:
            path = self.sample_path()
        probs = self.alpha_probs()
        out = self.stem(x)
        for li, idx in enumerate(path):
            block_out = self.layer_candidates[li][idx](out)
            gate = probs[(np.array([li]), np.array([idx]))]
            scale = gate / float(gate.data[0])
            out = block_out * scale.reshape(1, 1, 1, 1)
        return self.head(out)
