"""Network-level hardware metrics and the paper's cost function.

``evaluate_network`` plays the role of "direct evaluation on the
designed hardware from Timeloop and Accelergy" (paper Sec. 5.1): it is
the ground truth for estimator pre-training and for all reported
numbers.

``cost_hw`` implements Eq. 10, ``Cost_HW = C_E E + C_L L + C_A A``
with the paper's constants C_E=2.9, C_L=6.2, C_A=1.0.  The paper
chooses the constants so "the difference scale of each metric [is]
approximately the same"; reverse-engineering Table 2 shows the metrics
are normalized by reference scales (~49 ms, ~10 mJ, ~1 mm^2) before
weighting, which we adopt.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from repro.accelerator.area import area_mm2
from repro.accelerator.config import AcceleratorConfig, DesignSpace
from repro.accelerator.energy import EnergyTable, default_energy_table
from repro.accelerator.platform import Platform, as_platform
from repro.accelerator.timeloop import map_layer
from repro.arch.network import ConvLayerDesc, NetworkArch

#: Eq. 10 weights from the paper (Sec. 5.3).
COST_WEIGHTS = {"energy": 2.9, "latency": 6.2, "area": 1.0}

#: Reference scales making the three metrics comparable (see module doc).
REFERENCE_SCALES = {"latency_ms": 49.2, "energy_mj": 10.2, "area_mm2": 0.98}


@dataclass(frozen=True)
class HardwareMetrics:
    """Latency / energy / area of one network on one accelerator."""

    latency_ms: float
    energy_mj: float
    area_mm2: float

    def as_tuple(self) -> Tuple[float, float, float]:
        return (self.latency_ms, self.energy_mj, self.area_mm2)

    def metric(self, name: str) -> float:
        """Look up a metric by name ('latency', 'energy', 'area')."""
        return {
            "latency": self.latency_ms,
            "energy": self.energy_mj,
            "area": self.area_mm2,
        }[name]

    def __str__(self) -> str:
        return (
            f"{self.latency_ms:.2f} ms, {self.energy_mj:.2f} mJ, "
            f"{self.area_mm2:.2f} mm2"
        )


def evaluate_layer(
    layer: ConvLayerDesc,
    config: AcceleratorConfig,
    energy_table: Optional[EnergyTable] = None,
    platform: Optional[Platform] = None,
) -> Tuple[float, float]:
    """Return (latency_ms, energy_mj) of one convolution layer.

    ``platform`` defaults to the config's own platform and supplies the
    analytical-model constants and (absent ``energy_table``) the
    per-action energies.
    """
    plat = as_platform(platform if platform is not None else config.platform)
    table = energy_table or plat.energy_table
    mapping = map_layer(layer, config, plat)
    energy_pj = (
        layer.macs * table.mac_pj
        + mapping.rf_accesses * table.rf_access_pj(config.rf_bytes)
        + mapping.buffer_accesses * table.buffer_pj
        + mapping.dram_accesses * table.dram_pj
        + mapping.noc_hops * table.noc_hop_pj
    ) * plat.dataflow_energy_factor[config.dataflow]
    return mapping.latency_ms, energy_pj * 1e-9  # pJ -> mJ


def evaluate_network(
    arch: NetworkArch,
    config: AcceleratorConfig,
    energy_table: Optional[EnergyTable] = None,
    platform: Optional[Platform] = None,
) -> HardwareMetrics:
    """Evaluate a full network: sum latency/energy over layers, plus area."""
    plat = as_platform(platform if platform is not None else config.platform)
    table = energy_table or plat.energy_table
    latency = 0.0
    energy = 0.0
    for layer in arch.conv_layers():
        lat, en = evaluate_layer(layer, config, table, plat)
        latency += lat
        energy += en
    return HardwareMetrics(latency, energy, area_mm2(config, plat))


def cost_hw(metrics: HardwareMetrics, weights: Optional[Dict[str, float]] = None) -> float:
    """Eq. 10: balanced weighted sum over normalized metrics."""
    w = weights or COST_WEIGHTS
    return (
        w["latency"] * metrics.latency_ms / REFERENCE_SCALES["latency_ms"]
        + w["energy"] * metrics.energy_mj / REFERENCE_SCALES["energy_mj"]
        + w["area"] * metrics.area_mm2 / REFERENCE_SCALES["area_mm2"]
    )


def edp(metrics: HardwareMetrics) -> float:
    """Energy-delay product (the alternative cost the paper argues against)."""
    return metrics.energy_mj * metrics.latency_ms


def edap(metrics: HardwareMetrics) -> float:
    """Energy-delay-area product."""
    return metrics.energy_mj * metrics.latency_ms * metrics.area_mm2


def exhaustive_search(
    arch: NetworkArch,
    objective=cost_hw,
    constraints: Optional[Dict[str, float]] = None,
    energy_table: Optional[EnergyTable] = None,
    space: Optional[Iterable[AcceleratorConfig]] = None,
    platform: Optional[Platform] = None,
) -> Tuple[AcceleratorConfig, HardwareMetrics]:
    """Brute-force one platform's accelerator space for a fixed network.

    This is the "HW search" half of the NAS->HW baseline: the paper
    runs Timeloop exhaustively after a plain NAS.  ``constraints`` maps
    metric names to upper bounds; infeasible designs are skipped (and
    if nothing is feasible, the lowest-objective design is returned).

    When searching the full space (``space is None``) the vectorized
    evaluator computes the whole design space at once (~50x faster);
    the objective/constraint semantics are identical.
    """
    plat = as_platform(platform)
    table = energy_table or plat.energy_table
    if space is None:
        from repro.accelerator.batch import evaluate_network_space

        evaluation = evaluate_network_space(arch, table, plat)
        candidates = (
            (
                config,
                HardwareMetrics(
                    evaluation.latency_ms[i],
                    evaluation.energy_mj[i],
                    evaluation.area_mm2[i],
                ),
            )
            for i, config in enumerate(evaluation.configs)
        )
    else:
        # Explicit config subsets resolve per config: each one knows its
        # platform, and the table falls back to that platform's unless
        # the caller pinned one.
        candidates = (
            (config, evaluate_network(arch, config, energy_table, platform))
            for config in space
        )

    best: Optional[Tuple[float, AcceleratorConfig, HardwareMetrics]] = None
    fallback: Optional[Tuple[float, AcceleratorConfig, HardwareMetrics]] = None
    for config, metrics in candidates:
        score = objective(metrics)
        if fallback is None or score < fallback[0]:
            fallback = (score, config, metrics)
        if constraints and any(
            metrics.metric(name) > bound for name, bound in constraints.items()
        ):
            continue
        if best is None or score < best[0]:
            best = (score, config, metrics)
    chosen = best or fallback
    assert chosen is not None
    return chosen[1], chosen[2]
