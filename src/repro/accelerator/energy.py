"""Per-action energy table — the Accelergy substitute.

Accelergy estimates accelerator energy by counting architecture-level
actions (MAC, register-file access, NoC transfer, SRAM access, DRAM
access) and multiplying by per-action energies from a technology
table.  We embed such a table directly, with values following the
well-known relative costs for a ~45 nm node (Horowitz ISSCC'14 /
Eyeriss ISSCC'16): a DRAM access costs ~200x a MAC, an on-chip SRAM
access ~6x, a register-file access ~1x with mild growth in RF size.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class EnergyTable:
    """Energy per action in picojoules."""

    mac_pj: float = 2.2
    rf_base_pj: float = 2.0
    rf_per_log2_byte_pj: float = 0.25  # RF access grows with RF size
    noc_hop_pj: float = 4.0
    buffer_pj: float = 14.0
    dram_pj: float = 450.0

    def rf_access_pj(self, rf_bytes: int) -> float:
        """Register-file access energy, growing log-linearly with size."""
        return self.rf_base_pj + self.rf_per_log2_byte_pj * np.log2(rf_bytes)


@functools.lru_cache(maxsize=1)
def default_energy_table() -> EnergyTable:
    """The table used by all experiments (deterministic).

    Memoized: the table is immutable and this is called on every
    ``evaluate_layer``/``evaluate_network``, which sit inside the
    search hot loops (decode repair, estimator pre-training).
    """
    return EnergyTable()
