"""Pareto-front utilities for design-space exploration.

Used to compare solution sets (paper Fig. 3 right panel) and for the
exhaustive NAS->HW hardware search diagnostics.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Sequence, Tuple, TypeVar

T = TypeVar("T")


def pareto_front(
    items: Iterable[T],
    objectives: Sequence[Callable[[T], float]],
) -> List[T]:
    """Minimizing Pareto front over arbitrary objective callables.

    An item is kept iff no other item is <= on every objective and <
    on at least one.
    """
    pool = list(items)
    scores = [tuple(obj(item) for item in pool) for obj in objectives]
    # Transpose to per-item tuples.
    per_item = list(zip(*scores)) if scores else []
    front: List[T] = []
    for i, item in enumerate(pool):
        dominated = False
        for j in range(len(pool)):
            if i == j:
                continue
            if all(per_item[j][k] <= per_item[i][k] for k in range(len(objectives))) and any(
                per_item[j][k] < per_item[i][k] for k in range(len(objectives))
            ):
                dominated = True
                break
        if not dominated:
            front.append(item)
    return front


def dominates(a: Tuple[float, ...], b: Tuple[float, ...]) -> bool:
    """True when objective vector ``a`` Pareto-dominates ``b`` (minimize)."""
    if len(a) != len(b):
        raise ValueError("objective vectors must have equal length")
    return all(x <= y for x, y in zip(a, b)) and any(x < y for x, y in zip(a, b))


def hypervolume_2d(
    points: Sequence[Tuple[float, float]], reference: Tuple[float, float]
) -> float:
    """2-D hypervolume (area dominated below ``reference``), minimizing.

    A standard scalar measure of front quality: larger is better.
    """
    front = sorted(
        {p for p in points if p[0] <= reference[0] and p[1] <= reference[1]}
    )
    if not front:
        return 0.0
    # Keep only non-dominated points (front is sorted by x ascending).
    filtered: List[Tuple[float, float]] = []
    best_y = float("inf")
    for x, y in front:
        if y < best_y:
            filtered.append((x, y))
            best_y = y
    volume = 0.0
    prev_x = reference[0]
    for x, y in reversed(filtered):
        volume += (prev_x - x) * (reference[1] - y)
        prev_x = x
    return volume
