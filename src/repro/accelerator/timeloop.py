"""Analytical dataflow mapping model — the Timeloop substitute.

Timeloop searches loop-nest mappings and reports per-layer utilization
and per-level access counts.  This module computes the same quantities
in closed form for the three dataflows of the paper's search space.
The model captures the first-order effects that drive co-exploration:

* **Spatial utilization** from how each dataflow maps loop dimensions
  onto the PE array (channels for WS, output pixels for OS, filter
  rows for RS) — including the well-known collapse of weight-stationary
  arrays on depthwise layers (single input channel), which is the
  paper's motivating MobileNet-on-TPU example.
* **Register-file reuse** per operand type, limited by RF capacity, so
  a larger RF cuts global-buffer/DRAM traffic (energy) at an area cost.
* **Bandwidth-limited latency**: cycles are the max of compute cycles
  and buffer/DRAM streaming cycles.

Accesses are word-granular; energies are applied by the cost layer.

Every platform-dependent constant (clock, bandwidths, buffer size,
word width, WS depthwise penalty, dataflow energy factors) comes from
the active :class:`~repro.accelerator.platform.Platform`; the module
constants below are the eyeriss values, kept as the default platform's
definition and for pre-platform callers.
"""

from __future__ import annotations

import math
from builtins import max as builtins_max
from dataclasses import dataclass

from repro.accelerator.config import AcceleratorConfig, Dataflow
from repro.arch.network import ConvLayerDesc

#: PE clock in MHz (Eyeriss-class edge accelerator).
CLOCK_MHZ = 200.0
#: Global-buffer bandwidth in words per cycle.
BUFFER_WORDS_PER_CYCLE = 32.0
#: DRAM bandwidth in words per cycle (LPDDR-class at this clock).
DRAM_WORDS_PER_CYCLE = 8.0
#: Structural efficiency penalty of systolic (WS) arrays on depthwise
#: layers, reflecting single-channel operands starving the array.
WS_DEPTHWISE_PENALTY = 0.25

#: Dataflow-level energy overhead factors (control, clock distribution,
#: multicast machinery), reflecting the cross-dataflow comparisons in
#: the Eyeriss evaluation: RS is the most energy-efficient dataflow,
#: WS pays for operand broadcast, OS sits between.
DATAFLOW_ENERGY_FACTOR = {
    Dataflow.WS: 1.10,
    Dataflow.OS: 1.00,
    Dataflow.RS: 0.78,
}


@dataclass(frozen=True)
class LayerMapping:
    """Mapping result for one convolution layer on one configuration."""

    utilization: float
    compute_cycles: float
    rf_accesses: float
    buffer_accesses: float
    dram_accesses: float
    noc_hops: float
    latency_cycles: float
    clock_mhz: float = CLOCK_MHZ

    @property
    def latency_ms(self) -> float:
        return self.latency_cycles / (self.clock_mhz * 1e3)


def _eff(n: int, lanes: int) -> float:
    """Spatial efficiency of folding a loop of size ``n`` onto ``lanes``."""
    if n <= 0 or lanes <= 0:
        return 1.0
    return n / (math.ceil(n / lanes) * lanes)


def _pe_set_eff(r: int, lanes: int) -> float:
    """Efficiency of packing PE sets of height ``r`` (RS dataflow)."""
    if r > lanes:
        return _eff(r, lanes)
    return (lanes // r) * r / lanes


def _reuse_factors(layer: ConvLayerDesc, config: AcceleratorConfig, rf_words: int):
    """Per-operand effective reuse between buffer and PEs (W, I, O).

    Each factor is ``temporal_rf_reuse x spatial_multicast_reuse``: one
    global-buffer access serves that many MAC-operand references, either
    because the word stays resident in a register file (temporal) or
    because the NoC multicasts it to several PEs at once (spatial).
    """
    r = layer.kernel
    rs = r * r
    oh_ow = layer.out_size * layer.out_size
    rows, cols = config.pe_rows, config.pe_cols
    df = config.dataflow
    channels_per_group = layer.in_channels // layer.groups

    if df is Dataflow.WS:
        # Weights pinned in RFs (temporal); inputs broadcast across the
        # output-channel columns (spatial); psums reduced down the input
        # -channel rows (spatial).
        capacity = min(1.0, rf_words / rs)
        # A bigger RF holds several filters per PE, so each input fetch
        # serves more resident weights before eviction.
        resident_pairs = min(4.0, builtins_max(1, rf_words // rs))
        reuse_w = max(1.0, oh_ow * capacity)
        spatial_i = min(float(layer.out_channels), float(cols))
        reuse_i = min(4.0, float(rs)) * spatial_i * resident_pairs
        reuse_o = min(float(channels_per_group), float(rows))
        if layer.groups > 1:
            # Depthwise: no channel reduction, no useful input broadcast.
            reuse_i = min(4.0, float(rs)) * resident_pairs
            reuse_o = 1.0
    elif df is Dataflow.OS:
        # Psums pinned in RFs for the full accumulation depth; weights
        # broadcast to every active PE (spatial); inputs shared between
        # neighbouring output pixels.
        capacity = max(0.25, min(1.0, rf_words / 8.0))
        reuse_o = max(1.0, channels_per_group * rs * capacity)
        reuse_w = max(1.0, config.num_pes * 0.5)
        reuse_i = min(float(rs), 9.0) * 2.0
    else:  # Dataflow.RS
        # Row-stationary: filter rows reused across output rows
        # (temporal), input rows multicast diagonally (spatial), psums
        # accumulated vertically within each PE set.
        need = 2.0 * rs + r
        capacity = max(0.25, min(1.0, rf_words / need))
        resident_rows = min(4.0, builtins_max(1, int(rf_words // need)))
        reuse_w = max(1.0, 2.0 * layer.out_size * capacity)
        reuse_i = max(1.0, 2.0 * rs * capacity) * r * resident_rows
        fold = min(channels_per_group, 4)
        reuse_o = max(1.0, rs * fold * capacity)
    return reuse_w, reuse_i, reuse_o


def _utilization(
    layer: ConvLayerDesc, config: AcceleratorConfig, ws_depthwise_penalty: float
) -> float:
    """Fraction of PEs doing useful work for this layer."""
    rows, cols = config.pe_rows, config.pe_cols
    df = config.dataflow
    depthwise = layer.groups > 1

    if df is Dataflow.WS:
        if depthwise:
            # Single input channel per group: the reduction dimension the
            # systolic array needs collapses to 1.
            util = _eff(layer.out_channels, cols) * ws_depthwise_penalty
        else:
            util = _eff(layer.in_channels, rows) * _eff(layer.out_channels, cols)
    elif df is Dataflow.OS:
        util = _eff(layer.out_size, rows) * _eff(layer.out_size, cols)
    else:  # RS
        set_eff = _pe_set_eff(layer.kernel, rows)
        # Output rows map onto columns; leftover columns are filled by
        # replicating filters (Eyeriss folding), with control overhead.
        col_work = layer.out_size * min(layer.out_channels, 4)
        util = set_eff * min(1.0, _eff(col_work, cols) * 2.0) * 0.85
    return max(util, 1e-3)


def map_layer(
    layer: ConvLayerDesc, config: AcceleratorConfig, platform=None
) -> LayerMapping:
    """Map one convolution onto the accelerator, Timeloop-style.

    ``platform`` (a name, a Platform, or None) defaults to the config's
    own platform; its clock/bandwidth/buffer constants drive the model.
    """
    from repro.accelerator.platform import as_platform

    plat = as_platform(platform if platform is not None else config.platform)
    macs = float(layer.macs)
    util = _utilization(layer, config, plat.ws_depthwise_penalty)
    compute_cycles = macs / (config.num_pes * util)

    reuse_w, reuse_i, reuse_o = _reuse_factors(
        layer, config, config.rf_bytes // plat.word_bytes
    )
    w_refs, i_refs, o_refs = macs, macs, 2.0 * macs

    volume_w = float(layer.weight_count)
    volume_i = float(layer.input_count)
    volume_o = float(layer.output_count)

    buffer_w = max(w_refs / reuse_w, volume_w)
    buffer_i = max(i_refs / reuse_i, volume_i)
    buffer_o = max(o_refs / reuse_o, volume_o)
    buffer_accesses = buffer_w + buffer_i + buffer_o

    # Every MAC reads two operands and updates one partial sum in the RF.
    rf_accesses = 3.0 * macs

    # DRAM: one pass per operand, multiplied by a refetch factor when the
    # layer's working set exceeds the global buffer.  Square-root growth
    # models the halo overhead of a competent tiling rather than naive
    # full refetch.
    working_set_bytes = (volume_w + volume_i + volume_o) * plat.word_bytes
    refetch = max(1.0, math.sqrt(working_set_bytes / plat.global_buffer_bytes))
    dram_accesses = (volume_w + volume_i) * refetch + volume_o

    # Each buffer access traverses the NoC; average hop count scales with
    # array dimension.
    avg_hops = (config.pe_rows + config.pe_cols) / 8.0
    noc_hops = buffer_accesses * avg_hops * 0.25

    latency_cycles = max(
        compute_cycles,
        buffer_accesses / plat.buffer_words_per_cycle,
        dram_accesses / plat.dram_words_per_cycle,
    )

    return LayerMapping(
        utilization=util,
        compute_cycles=compute_cycles,
        rf_accesses=rf_accesses,
        buffer_accesses=buffer_accesses,
        dram_accesses=dram_accesses,
        noc_hops=noc_hops,
        latency_cycles=latency_cycles,
        clock_mhz=plat.clock_mhz,
    )
