"""Vectorized design-space evaluation.

``evaluate_network`` maps one network onto one accelerator; the
NAS->HW baseline and design-space studies need the same network on all
2295 configurations, and decode repair needs it on an arbitrary
neighbourhood of configurations.  Doing that with the scalar path
costs ~2 s per network for the full space; this module evaluates any
config batch with NumPy array math in a few tens of milliseconds
(``evaluate_network_batch``), with the full space
(``evaluate_network_space``) as the cached special case.

The implementation mirrors :mod:`repro.accelerator.timeloop` exactly —
``test_batch_matches_scalar`` enforces bit-level agreement — so any
change to the analytical model must be applied to both (and to the
fleet engine's finalization; see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.accelerator.config import DATAFLOWS, AcceleratorConfig
from repro.accelerator.cost import COST_WEIGHTS, REFERENCE_SCALES
from repro.accelerator.energy import EnergyTable
from repro.accelerator.platform import Platform, as_platform
from repro.arch.network import ConvLayerDesc, NetworkArch


@dataclass
class SpaceEvaluation:
    """Metrics of one network across the full accelerator space."""

    configs: List[AcceleratorConfig]
    latency_ms: np.ndarray
    energy_mj: np.ndarray
    area_mm2: np.ndarray

    def cost_hw(self, weights: Optional[dict] = None) -> np.ndarray:
        w = weights or COST_WEIGHTS
        return (
            w["latency"] * self.latency_ms / REFERENCE_SCALES["latency_ms"]
            + w["energy"] * self.energy_mj / REFERENCE_SCALES["energy_mj"]
            + w["area"] * self.area_mm2 / REFERENCE_SCALES["area_mm2"]
        )

    def best(
        self,
        objective: Optional[np.ndarray] = None,
        constraints: Optional[dict] = None,
    ) -> Tuple[AcceleratorConfig, int]:
        """Index of the best config under optional metric bounds."""
        score = self.cost_hw() if objective is None else objective
        feasible = np.ones(len(self.configs), dtype=bool)
        if constraints:
            metric_arrays = {
                "latency": self.latency_ms,
                "energy": self.energy_mj,
                "area": self.area_mm2,
            }
            for metric, bound in constraints.items():
                feasible &= metric_arrays[metric] <= bound
        if feasible.any():
            masked = np.where(feasible, score, np.inf)
        else:
            masked = score
        index = int(np.argmin(masked))
        return self.configs[index], index


def _grid(
    platform: Platform,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, List[AcceleratorConfig]]:
    """Flattened (rows, cols, rf, dataflow-index) arrays for one platform."""
    rows, cols, rfs, dfs, configs = [], [], [], [], []
    for r in platform.pe_rows_range:
        for c in platform.pe_cols_range:
            for rf in platform.rf_bytes_options:
                for di, df in enumerate(DATAFLOWS):
                    rows.append(r)
                    cols.append(c)
                    rfs.append(rf)
                    dfs.append(di)
                    configs.append(AcceleratorConfig(r, c, rf, df, platform=platform.name))
    return (
        np.array(rows, dtype=float),
        np.array(cols, dtype=float),
        np.array(rfs, dtype=float),
        np.array(dfs),
        configs,
    )


_GRID_CACHE: dict = {}


def _grid_cached(platform: Platform):
    # Keyed on the Platform object itself (not just the name) so a
    # registry replace of a platform definition invalidates its grid.
    cached = _GRID_CACHE.get(platform.name)
    if cached is None or cached[0] is not platform:
        _GRID_CACHE[platform.name] = (platform, _grid(platform))
        cached = _GRID_CACHE[platform.name]
    return cached[1]


def _eff(n: float, lanes: np.ndarray) -> np.ndarray:
    return n / (np.ceil(n / lanes) * lanes)


def _pe_set_eff(r: int, lanes: np.ndarray) -> np.ndarray:
    small = _eff(r, lanes)  # r > lanes case
    packed = np.floor(lanes / r) * r / lanes
    return np.where(r > lanes, small, packed)


@dataclass(frozen=True)
class _LayerVals:
    """Numeric layer parameters, scalar (one layer, many configs) or
    array (one flattened (pair, layer) row each, matched to per-row
    config arrays).  Every expression consuming them is elementwise, so
    the scalar and array instantiations are bitwise interchangeable."""

    r: object  # kernel size
    rs: object  # kernel^2, float
    macs: object
    oh_ow: object  # out_size^2, float
    channels_per_group: object
    depthwise: object  # bool or bool array
    in_channels: object
    out_channels: object
    out_size: object
    volume_w: object
    volume_i: object
    volume_o: object


def _layer_vals(layer: ConvLayerDesc) -> _LayerVals:
    """Scalar parameters of one layer, converted exactly as the
    pre-refactor code did (int-derived floats are exact)."""
    return _LayerVals(
        r=layer.kernel,
        rs=float(layer.kernel * layer.kernel),
        macs=float(layer.macs),
        oh_ow=float(layer.out_size * layer.out_size),
        channels_per_group=layer.in_channels // layer.groups,
        depthwise=layer.groups > 1,
        in_channels=layer.in_channels,
        out_channels=layer.out_channels,
        out_size=layer.out_size,
        volume_w=float(layer.weight_count),
        volume_i=float(layer.input_count),
        volume_o=float(layer.output_count),
    )


def _layer_vals_from_params(params: np.ndarray) -> _LayerVals:
    """Array parameters from ``(R, 6)`` conv rows (see
    :data:`repro.arch.network.CONV_FIELDS`).  All source values are
    small exact integers, so the float products below equal the scalar
    path's int-arithmetic-then-float conversions bit for bit."""
    in_ch, out_ch, kernel, in_size, out_size, groups = params.T
    cpg = in_ch / groups  # groups divides in_channels by construction
    rs = kernel * kernel
    return _LayerVals(
        r=kernel,
        rs=rs,
        macs=out_ch * out_size * out_size * (cpg * rs),
        oh_ow=out_size * out_size,
        channels_per_group=cpg,
        depthwise=groups > 1,
        in_channels=in_ch,
        out_channels=out_ch,
        out_size=out_size,
        volume_w=out_ch * cpg * rs,
        volume_i=in_ch * in_size * in_size,
        volume_o=out_ch * out_size * out_size,
    )


def _layer_arrays(
    layer: ConvLayerDesc,
    rows: np.ndarray,
    cols: np.ndarray,
    rf_bytes: np.ndarray,
    df_index: np.ndarray,
    table: EnergyTable,
    platform: Platform,
) -> Tuple[np.ndarray, np.ndarray]:
    """(latency_cycles, energy_pj) arrays across the config grid."""
    return _layer_rows(_layer_vals(layer), rows, cols, rf_bytes, df_index, table, platform)


def _layer_rows(
    vals: _LayerVals,
    rows: np.ndarray,
    cols: np.ndarray,
    rf_bytes: np.ndarray,
    df_index: np.ndarray,
    table: EnergyTable,
    platform: Platform,
) -> Tuple[np.ndarray, np.ndarray]:
    """(latency_cycles, energy_pj) arrays, elementwise over rows.

    The generalized core of the mirror contract: with scalar ``vals``
    it is the one-layer-many-configs evaluator, with array ``vals`` it
    is the many-(pair, layer)-rows evaluator of the pair-batch oracle.
    Depthwise/dense branches are both computed and selected per row
    (``np.where``), which picks exactly the values the scalar branch
    would compute.
    """
    r = vals.r
    rs = vals.rs
    macs = vals.macs
    oh_ow = vals.oh_ow
    channels_per_group = vals.channels_per_group
    depthwise = vals.depthwise
    rf_words = rf_bytes / platform.word_bytes
    num_pes = rows * cols

    is_ws = df_index == 0
    is_os = df_index == 1
    is_rs = df_index == 2

    # ------------------------------------------------------------------
    # Utilization (mirrors timeloop._utilization)
    # ------------------------------------------------------------------
    ws_util_dw = _eff(vals.out_channels, cols) * platform.ws_depthwise_penalty
    ws_util_dense = _eff(vals.in_channels, rows) * _eff(vals.out_channels, cols)
    ws_util = np.where(depthwise, ws_util_dw, ws_util_dense)
    os_util = _eff(vals.out_size, rows) * _eff(vals.out_size, cols)
    set_eff = _pe_set_eff(r, rows)
    col_work = vals.out_size * np.minimum(vals.out_channels, 4)
    rs_util = set_eff * np.minimum(1.0, _eff(col_work, cols) * 2.0) * 0.85
    util = np.where(is_ws, ws_util, np.where(is_os, os_util, rs_util))
    util = np.maximum(util, 1e-3)

    # ------------------------------------------------------------------
    # Reuse factors (mirrors timeloop._reuse_factors)
    # ------------------------------------------------------------------
    # WS
    ws_capacity = np.minimum(1.0, rf_words / rs)
    ws_pairs = np.minimum(4.0, np.maximum(1.0, np.floor(rf_words / rs)))
    ws_reuse_w = np.maximum(1.0, oh_ow * ws_capacity)
    spatial_i = np.minimum(vals.out_channels, cols)
    ws_reuse_i = np.where(
        depthwise,
        np.minimum(4.0, rs) * ws_pairs,
        np.minimum(4.0, rs) * spatial_i * ws_pairs,
    )
    ws_reuse_o = np.where(
        depthwise, np.ones_like(rows), np.minimum(channels_per_group, rows)
    )
    # OS
    os_capacity = np.maximum(0.25, np.minimum(1.0, rf_words / 8.0))
    os_reuse_o = np.maximum(1.0, channels_per_group * rs * os_capacity)
    os_reuse_w = np.maximum(1.0, num_pes * 0.5)
    os_reuse_i = np.minimum(rs, 9.0) * 2.0
    # RS
    need = 2.0 * rs + r
    rs_capacity = np.maximum(0.25, np.minimum(1.0, rf_words / need))
    rs_resident = np.minimum(4.0, np.maximum(1.0, np.floor(rf_words / need)))
    rs_reuse_w = np.maximum(1.0, 2.0 * vals.out_size * rs_capacity)
    rs_reuse_i = np.maximum(1.0, 2.0 * rs * rs_capacity) * r * rs_resident
    fold = np.minimum(channels_per_group, 4)
    rs_reuse_o = np.maximum(1.0, rs * fold * rs_capacity)

    reuse_w = np.where(is_ws, ws_reuse_w, np.where(is_os, os_reuse_w, rs_reuse_w))
    reuse_i = np.where(is_ws, ws_reuse_i, np.where(is_os, os_reuse_i, rs_reuse_i))
    reuse_o = np.where(is_ws, ws_reuse_o, np.where(is_os, os_reuse_o, rs_reuse_o))

    # ------------------------------------------------------------------
    # Traffic, latency, energy (mirrors timeloop.map_layer)
    # ------------------------------------------------------------------
    volume_w = vals.volume_w
    volume_i = vals.volume_i
    volume_o = vals.volume_o

    compute_cycles = macs / (num_pes * util)
    buffer_w = np.maximum(macs / reuse_w, volume_w)
    buffer_i = np.maximum(macs / reuse_i, volume_i)
    buffer_o = np.maximum(2.0 * macs / reuse_o, volume_o)
    buffer_accesses = buffer_w + buffer_i + buffer_o

    rf_accesses = 3.0 * macs
    working_set_bytes = (volume_w + volume_i + volume_o) * platform.word_bytes
    refetch = np.maximum(1.0, np.sqrt(working_set_bytes / platform.global_buffer_bytes))
    dram_accesses = (volume_w + volume_i) * refetch + volume_o

    avg_hops = (rows + cols) / 8.0
    noc_hops = buffer_accesses * avg_hops * 0.25

    latency_cycles = np.maximum(
        compute_cycles,
        np.maximum(
            buffer_accesses / platform.buffer_words_per_cycle,
            dram_accesses / platform.dram_words_per_cycle,
        ),
    )

    rf_pj = table.rf_base_pj + table.rf_per_log2_byte_pj * np.log2(rf_bytes)
    df_factor = np.array(
        [platform.dataflow_energy_factor[df] for df in DATAFLOWS]
    )[df_index]
    energy_pj = (
        macs * table.mac_pj
        + rf_accesses * rf_pj
        + buffer_accesses * table.buffer_pj
        + dram_accesses * table.dram_pj
        + noc_hops * table.noc_hop_pj
    ) * df_factor
    return latency_cycles, energy_pj


def _config_arrays(
    configs: Sequence[AcceleratorConfig],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Flattened (rows, cols, rf, dataflow-index) arrays for a subset."""
    rows = np.array([c.pe_rows for c in configs], dtype=float)
    cols = np.array([c.pe_cols for c in configs], dtype=float)
    rfs = np.array([c.rf_bytes for c in configs], dtype=float)
    dfs = np.array([DATAFLOWS.index(c.dataflow) for c in configs])
    return rows, cols, rfs, dfs


def evaluate_network_batch(
    arch: NetworkArch,
    configs: Sequence[AcceleratorConfig],
    energy_table: Optional[EnergyTable] = None,
    platform: Optional[Platform] = None,
) -> SpaceEvaluation:
    """Evaluate ``arch`` on an arbitrary batch of configurations.

    Used by decode repair (the ~81-config neighbourhood scan) and any
    caller holding a config subset; agrees with ``evaluate_network``
    to float precision on every entry.  ``platform`` defaults to the
    batch's own platform (the configs must share one).
    """
    if platform is None:
        if not configs:
            raise ValueError("evaluate_network_batch needs at least one config")
        platform = configs[0].platform
    plat = as_platform(platform)
    mixed = {c.platform for c in configs} - {plat.name}
    if mixed:
        raise ValueError(
            f"config batch mixes platforms {sorted(mixed)} with {plat.name!r}; "
            f"evaluate one platform per batch"
        )
    rows, cols, rf_bytes, df_index = _config_arrays(configs)
    return _evaluate_arrays(
        arch, rows, cols, rf_bytes, df_index, list(configs), energy_table, plat
    )


def evaluate_network_space(
    arch: NetworkArch,
    energy_table: Optional[EnergyTable] = None,
    platform: Optional[Platform] = None,
) -> SpaceEvaluation:
    """Evaluate ``arch`` on a platform's every configuration at once."""
    plat = as_platform(platform)
    rows, cols, rf_bytes, df_index, configs = _grid_cached(plat)
    return _evaluate_arrays(
        arch, rows, cols, rf_bytes, df_index, configs, energy_table, plat
    )


def _evaluate_arrays(
    arch: NetworkArch,
    rows: np.ndarray,
    cols: np.ndarray,
    rf_bytes: np.ndarray,
    df_index: np.ndarray,
    configs: List[AcceleratorConfig],
    energy_table: Optional[EnergyTable],
    platform: Platform,
) -> SpaceEvaluation:
    table = energy_table or platform.energy_table
    total_cycles = np.zeros_like(rows)
    total_pj = np.zeros_like(rows)
    for layer in arch.conv_layers():
        cycles, pj = _layer_arrays(
            layer, rows, cols, rf_bytes, df_index, table, platform
        )
        total_cycles += cycles
        total_pj += pj
    latency_ms = total_cycles / (platform.clock_mhz * 1e3)
    energy_mj = total_pj * 1e-9
    pe_area = rows * cols * (platform.pe_base_mm2 + platform.rf_mm2_per_byte * rf_bytes)
    area = (
        pe_area
        + platform.global_buffer_mm2
        + platform.noc_mm2_per_lane * (rows + cols)
    )
    return SpaceEvaluation(
        configs=configs,
        latency_ms=latency_ms,
        energy_mj=energy_mj,
        area_mm2=area,
    )


# ----------------------------------------------------------------------
# Pair-batch oracle: M (network, accelerator) pairs in one program
# ----------------------------------------------------------------------
# ``evaluate_network_batch`` is one network across many configs; the
# estimator-pretraining dataset is the transposed workload — thousands
# of (network, config) *pairs*, each evaluated once.  The pair oracle
# flattens every pair's conv layers into one row set (vectorized table
# lookup, see ``repro.arch.network.conv_rows_from_indices``), runs
# ``_layer_rows`` once over all of them, and segment-sums per pair.
#
# Parity contract: this path mirrors the *scalar* ``evaluate_network``
# accumulation — per-layer latency is converted to ms and energy to mJ
# **before** summation, in conv-layer order (``np.add.at`` applies its
# additions sequentially in row order) — so every pair is bitwise
# identical to ``evaluate_network(arch, config)`` on every registered
# platform.  Pinned by ``tests/test_accelerator_batch.py`` and
# ``tests/test_estimator.py``; change scalar cost/timeloop, this
# module, and the fleet finalization together (DESIGN.md).


@dataclass
class PairEvaluation:
    """Metrics of M (network, accelerator) pairs, one row each."""

    latency_ms: np.ndarray
    energy_mj: np.ndarray
    area_mm2: np.ndarray

    def __len__(self) -> int:
        return len(self.latency_ms)

    def as_matrix(self) -> np.ndarray:
        """``(M, 3)`` columns (latency_ms, energy_mj, area_mm2) — the
        target layout of :class:`repro.estimator.dataset.CostDataset`."""
        return np.column_stack([self.latency_ms, self.energy_mj, self.area_mm2])


def _evaluate_pair_arrays(
    space,
    indices: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    rf_bytes: np.ndarray,
    df_index: np.ndarray,
    energy_table: Optional[EnergyTable],
    platform: Platform,
) -> PairEvaluation:
    from repro.arch.network import conv_rows_from_indices

    table = energy_table or platform.energy_table
    n_pairs = indices.shape[0]
    params, pair_index = conv_rows_from_indices(space, indices)
    vals = _layer_vals_from_params(params)
    cycles, pj = _layer_rows(
        vals,
        rows[pair_index],
        cols[pair_index],
        rf_bytes[pair_index],
        df_index[pair_index],
        table,
        platform,
    )
    # Scalar accumulation order: ms/mJ per layer, summed in layer order.
    layer_ms = cycles / (platform.clock_mhz * 1e3)
    layer_mj = pj * 1e-9
    latency = np.zeros(n_pairs)
    energy = np.zeros(n_pairs)
    np.add.at(latency, pair_index, layer_ms)
    np.add.at(energy, pair_index, layer_mj)
    pe_area = rows * cols * (platform.pe_base_mm2 + platform.rf_mm2_per_byte * rf_bytes)
    area = pe_area + platform.global_buffer_mm2 + platform.noc_mm2_per_lane * (rows + cols)
    return PairEvaluation(latency_ms=latency, energy_mj=energy, area_mm2=area)


def evaluate_pairs_from_indices(
    space,
    indices: np.ndarray,
    configs: "ConfigBatch",
    energy_table: Optional[EnergyTable] = None,
) -> PairEvaluation:
    """Pair oracle on raw arrays: ``(M, L)`` index matrix + config batch.

    The zero-per-sample-Python entry used by the dataset builder; pair
    ``i`` is bitwise identical to
    ``evaluate_network(NetworkArch.from_indices(space, indices[i]),
    configs.configs()[i])``.
    """
    indices = np.asarray(indices, dtype=np.int64)
    if indices.shape[0] != len(configs):
        raise ValueError(
            f"{indices.shape[0]} architectures vs {len(configs)} configs; "
            f"the pair oracle wants one config per network"
        )
    plat = as_platform(configs.platform)
    return _evaluate_pair_arrays(
        space,
        indices,
        configs.pe_rows.astype(float),
        configs.pe_cols.astype(float),
        configs.rf_bytes.astype(float),
        np.asarray(configs.df_index, dtype=np.int64),
        energy_table,
        plat,
    )


def evaluate_pairs(
    archs: Sequence[NetworkArch],
    configs: Sequence[AcceleratorConfig],
    energy_table: Optional[EnergyTable] = None,
    platform: Optional[Platform] = None,
) -> PairEvaluation:
    """Pair oracle on objects: ``archs[i]`` on ``configs[i]`` for all i.

    Convenience wrapper over :func:`evaluate_pairs_from_indices` for
    callers holding materialized networks/configs; all pairs must share
    one search space and one platform (like ``evaluate_network_batch``).
    """
    if len(archs) != len(configs):
        raise ValueError(
            f"{len(archs)} architectures vs {len(configs)} configs; "
            f"the pair oracle wants one config per network"
        )
    if not archs:
        raise ValueError("evaluate_pairs needs at least one pair")
    space = archs[0].space
    foreign = [a for a in archs if a.space is not space]
    if foreign:
        raise ValueError("pair batch mixes search spaces; evaluate one per batch")
    if platform is None:
        platform = configs[0].platform
    plat = as_platform(platform)
    mixed = {c.platform for c in configs} - {plat.name}
    if mixed:
        raise ValueError(
            f"config batch mixes platforms {sorted(mixed)} with {plat.name!r}; "
            f"evaluate one platform per batch"
        )
    indices = np.array([arch.to_indices() for arch in archs], dtype=np.int64)
    rows, cols, rf_bytes, df_index = _config_arrays(configs)
    return _evaluate_pair_arrays(
        space, indices, rows, cols, rf_bytes, df_index, energy_table, plat
    )
