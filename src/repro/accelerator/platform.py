"""Hardware-platform abstraction and registry.

The seed reproduction hard-coded one Eyeriss-style target: the PE-array
ranges, RF options, 108 KiB global buffer, word width, clock, memory
bandwidths, per-action energy table, and area constants all lived as
module-level constants, and every layer above silently assumed them.
A :class:`Platform` bundles those knobs into one explicit object, so
co-exploration becomes an engine parameterized by a hardware target
instead of a single-target script.

A platform owns

* its **design space** — PE row/column ranges, RF sizes, dataflows —
  from which :class:`~repro.accelerator.config.DesignSpace` enumerates
  and the relaxed 6-dim vector encoding snaps;
* its **technology model** — word width, buffer capacity, clock,
  bandwidths, per-action :class:`~repro.accelerator.energy.EnergyTable`,
  area constants, and dataflow-level behaviour factors;
* its **paired evaluators** — :meth:`Platform.evaluate_network`
  (scalar oracle) and :meth:`Platform.evaluate_network_batch` /
  :meth:`Platform.evaluate_network_space` (vectorized) delegate to
  :mod:`repro.accelerator.cost` and :mod:`repro.accelerator.batch`
  with this platform's constants, and the bit-level mirror contract
  between those two implementations (see DESIGN.md) holds **per
  platform**: ``tests/test_platforms.py`` pins scalar↔batched parity
  for every registered platform, not just the default.

The default ``"eyeriss"`` platform is built from the legacy module
constants, so it reproduces the seed's numbers bitwise; ``"edge"`` and
``"tpu-like"`` are the first additional targets.

Design-space restrictions shared by all platforms (enforced in
``Platform.__post_init__``): PE row/column ranges are contiguous
integer ranges and exactly the three dataflows are searchable, because
the relaxed accelerator encoding — three sigmoid size slots plus a
three-way dataflow softmax — and the generator/estimator input widths
are shared across platforms.  What differs per platform is *which*
values those slots decode to and what the analytical model makes of
them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro.accelerator import area as _area
from repro.accelerator import timeloop as _timeloop
from repro.accelerator.config import (
    DATAFLOWS,
    Dataflow,
    GLOBAL_BUFFER_BYTES,
    PE_COLS_RANGE,
    PE_ROWS_RANGE,
    RF_BYTES_OPTIONS,
    WORD_BYTES,
)
from repro.accelerator.energy import EnergyTable, default_energy_table

#: Name resolved when callers pass ``platform=None``.
DEFAULT_PLATFORM = "eyeriss"


@dataclass(frozen=True)
class Platform:
    """One hardware target: design space + technology + cost models."""

    name: str
    # --- Design space -------------------------------------------------
    pe_rows_range: Tuple[int, ...]
    pe_cols_range: Tuple[int, ...]
    rf_bytes_options: Tuple[int, ...]
    # --- Technology / memory system -----------------------------------
    word_bytes: int
    global_buffer_bytes: int
    clock_mhz: float
    buffer_words_per_cycle: float
    dram_words_per_cycle: float
    # --- Dataflow behaviour -------------------------------------------
    ws_depthwise_penalty: float
    dataflow_energy_factor: Mapping[Dataflow, float]
    # --- Energy / area models -----------------------------------------
    energy_table: EnergyTable
    pe_base_mm2: float
    rf_mm2_per_byte: float
    global_buffer_mm2: float
    noc_mm2_per_lane: float
    dataflows: Tuple[Dataflow, ...] = DATAFLOWS
    description: str = ""

    def __post_init__(self) -> None:
        for label, rng in (
            ("pe_rows_range", self.pe_rows_range),
            ("pe_cols_range", self.pe_cols_range),
        ):
            if len(rng) < 2 or tuple(rng) != tuple(range(rng[0], rng[-1] + 1)):
                raise ValueError(
                    f"{label} must be a contiguous integer range with >= 2 "
                    f"values (the relaxed encoding snaps by rounding), got {rng}"
                )
        if len(self.rf_bytes_options) < 2 or list(self.rf_bytes_options) != sorted(
            set(self.rf_bytes_options)
        ):
            raise ValueError(
                f"rf_bytes_options must be >= 2 strictly increasing values, "
                f"got {self.rf_bytes_options}"
            )
        if tuple(self.dataflows) != tuple(DATAFLOWS):
            raise ValueError(
                "every platform searches the three canonical dataflows; the "
                "6-dim relaxed encoding hard-codes three dataflow slots"
            )
        missing = [df for df in self.dataflows if df not in self.dataflow_energy_factor]
        if missing:
            raise ValueError(f"dataflow_energy_factor missing entries for {missing}")

    # ------------------------------------------------------------------
    # Design-space helpers
    # ------------------------------------------------------------------
    def design_space(self):
        """Enumeration/sampling over this platform's configurations."""
        from repro.accelerator.config import DesignSpace

        return DesignSpace(self)

    def contains(self, pe_rows: int, pe_cols: int, rf_bytes: int) -> bool:
        return (
            self.pe_rows_range[0] <= pe_rows <= self.pe_rows_range[-1]
            and self.pe_cols_range[0] <= pe_cols <= self.pe_cols_range[-1]
            and rf_bytes in self.rf_bytes_options
        )

    def validate(self, pe_rows: int, pe_cols: int, rf_bytes: int) -> None:
        """Raise ``ValueError`` when the dimensions fall outside the space."""
        rows, cols = self.pe_rows_range, self.pe_cols_range
        if not (rows[0] <= pe_rows <= rows[-1]):
            raise ValueError(
                f"pe_rows {pe_rows} outside {rows[0]}..{rows[-1]} "
                f"(platform {self.name!r})"
            )
        if not (cols[0] <= pe_cols <= cols[-1]):
            raise ValueError(
                f"pe_cols {pe_cols} outside {cols[0]}..{cols[-1]} "
                f"(platform {self.name!r})"
            )
        if rf_bytes not in self.rf_bytes_options:
            raise ValueError(
                f"rf_bytes {rf_bytes} not in {self.rf_bytes_options} "
                f"(platform {self.name!r})"
            )

    def config(self, pe_rows: int, pe_cols: int, rf_bytes: int, dataflow: Dataflow):
        """Construct an :class:`AcceleratorConfig` bound to this platform."""
        from repro.accelerator.config import AcceleratorConfig

        return AcceleratorConfig(pe_rows, pe_cols, rf_bytes, dataflow, platform=self.name)

    def config_from_vector(self, vec):
        """Snap a relaxed 6-dim vector to this platform's nearest design."""
        from repro.accelerator.config import AcceleratorConfig

        return AcceleratorConfig.from_vector(vec, platform=self)

    # ------------------------------------------------------------------
    # Paired evaluators (the per-platform scalar/vectorized contract)
    # ------------------------------------------------------------------
    def evaluate_network(self, arch, config, energy_table: Optional[EnergyTable] = None):
        """Scalar oracle for one network on one configuration."""
        from repro.accelerator.cost import evaluate_network

        return evaluate_network(arch, config, energy_table, platform=self)

    def evaluate_network_batch(
        self, arch, configs, energy_table: Optional[EnergyTable] = None
    ):
        """Vectorized twin of :meth:`evaluate_network` over a config batch."""
        from repro.accelerator.batch import evaluate_network_batch

        return evaluate_network_batch(arch, configs, energy_table, platform=self)

    def evaluate_network_space(self, arch, energy_table: Optional[EnergyTable] = None):
        """Vectorized evaluation over this platform's full design space."""
        from repro.accelerator.batch import evaluate_network_space

        return evaluate_network_space(arch, energy_table, platform=self)

    def __str__(self) -> str:
        rows, cols = self.pe_rows_range, self.pe_cols_range
        return (
            f"{self.name}: PEs {rows[0]}x{cols[0]}..{rows[-1]}x{cols[-1]}, "
            f"RF {self.rf_bytes_options[0]}-{self.rf_bytes_options[-1]}B, "
            f"buffer {self.global_buffer_bytes // 1024} KiB @ {self.clock_mhz:g} MHz"
        )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, Platform] = {}


def register_platform(platform: Platform, replace: bool = False) -> Platform:
    """Add a platform to the registry; duplicate names raise."""
    if platform.name in _REGISTRY and not replace:
        raise ValueError(
            f"platform {platform.name!r} is already registered "
            f"(pass replace=True to override)"
        )
    _REGISTRY[platform.name] = platform
    return platform


def unregister_platform(name: str) -> None:
    """Remove a registered platform (test hygiene; no-op if absent)."""
    _REGISTRY.pop(name, None)


def get_platform(name: str) -> Platform:
    """Look a platform up by name; unknown names raise with the options."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown platform {name!r}; registered: {available_platforms()}"
        ) from None


def available_platforms() -> List[str]:
    """Sorted names of all registered platforms."""
    return sorted(_REGISTRY)


def as_platform(platform: Union[Platform, str, None]) -> Platform:
    """Resolve ``None`` (default), a name, or a Platform to a Platform."""
    if platform is None:
        return get_platform(DEFAULT_PLATFORM)
    if isinstance(platform, Platform):
        return platform
    return get_platform(platform)


# ----------------------------------------------------------------------
# Built-in platforms
# ----------------------------------------------------------------------
#: The seed's Eyeriss-style target, built from the legacy module
#: constants so the refactor is bitwise-neutral: same ranges, same
#: memoized energy table, same analytical-model constants.
EYERISS = register_platform(
    Platform(
        name="eyeriss",
        pe_rows_range=PE_ROWS_RANGE,
        pe_cols_range=PE_COLS_RANGE,
        rf_bytes_options=RF_BYTES_OPTIONS,
        word_bytes=WORD_BYTES,
        global_buffer_bytes=GLOBAL_BUFFER_BYTES,
        clock_mhz=_timeloop.CLOCK_MHZ,
        buffer_words_per_cycle=_timeloop.BUFFER_WORDS_PER_CYCLE,
        dram_words_per_cycle=_timeloop.DRAM_WORDS_PER_CYCLE,
        ws_depthwise_penalty=_timeloop.WS_DEPTHWISE_PENALTY,
        dataflow_energy_factor=dict(_timeloop.DATAFLOW_ENERGY_FACTOR),
        energy_table=default_energy_table(),
        pe_base_mm2=_area.PE_BASE_MM2,
        rf_mm2_per_byte=_area.RF_MM2_PER_BYTE,
        global_buffer_mm2=_area.GLOBAL_BUFFER_MM2,
        noc_mm2_per_lane=_area.NOC_MM2_PER_LANE,
        description="Eyeriss-class edge accelerator (the paper's target)",
    )
)

#: A tighter always-on/IoT variant: quarter-size PE array, 32 KiB
#: buffer, slower clock and memory system, low-leakage process whose
#: SRAM is cheap but whose LPDDR access is comparatively expensive.
EDGE = register_platform(
    Platform(
        name="edge",
        pe_rows_range=tuple(range(4, 13)),  # 4..12
        pe_cols_range=tuple(range(4, 17)),  # 4..16
        rf_bytes_options=(8, 16, 32, 64),
        word_bytes=2,
        global_buffer_bytes=32 * 1024,
        clock_mhz=100.0,
        buffer_words_per_cycle=16.0,
        dram_words_per_cycle=4.0,
        ws_depthwise_penalty=0.25,
        dataflow_energy_factor={
            Dataflow.WS: 1.10,
            Dataflow.OS: 1.00,
            Dataflow.RS: 0.80,
        },
        energy_table=EnergyTable(
            mac_pj=1.6,
            rf_base_pj=1.5,
            rf_per_log2_byte_pj=0.22,
            noc_hop_pj=3.2,
            buffer_pj=10.0,
            dram_pj=520.0,
        ),
        pe_base_mm2=0.0012,
        rf_mm2_per_byte=4.0e-6,
        global_buffer_mm2=0.45,
        noc_mm2_per_lane=0.0016,
        description="Always-on IoT accelerator: small array, tight buffers",
    )
)

#: A TPU-flavoured weight-stationary systolic target: large int8 PE
#: array, megabyte-class unified buffer, wide memory interfaces.  The
#: dataflow energy factors reflect a fabric laid out for WS (operand
#: broadcast is wired, not multicast), while RS pays for fighting the
#: systolic structure; the WS depthwise collapse is structural and
#: stays (it is the paper's motivating MobileNet-on-TPU example).
TPU_LIKE = register_platform(
    Platform(
        name="tpu-like",
        pe_rows_range=tuple(range(24, 41)),  # 24..40
        pe_cols_range=tuple(range(24, 41)),  # 24..40
        rf_bytes_options=(32, 64, 128, 256, 512),
        word_bytes=1,  # int8 inference datapath
        global_buffer_bytes=1024 * 1024,
        clock_mhz=700.0,
        buffer_words_per_cycle=128.0,
        dram_words_per_cycle=32.0,
        ws_depthwise_penalty=0.25,
        dataflow_energy_factor={
            Dataflow.WS: 0.88,
            Dataflow.OS: 1.05,
            Dataflow.RS: 1.18,
        },
        energy_table=EnergyTable(
            mac_pj=0.55,
            rf_base_pj=0.9,
            rf_per_log2_byte_pj=0.18,
            noc_hop_pj=2.4,
            buffer_pj=7.5,
            dram_pj=320.0,
        ),
        pe_base_mm2=0.0009,
        rf_mm2_per_byte=2.5e-6,
        global_buffer_mm2=4.2,
        noc_mm2_per_lane=0.0028,
        description="Weight-stationary systolic datacenter-edge target",
    )
)
