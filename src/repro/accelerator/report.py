"""Per-layer mapping reports and bottleneck analysis.

Timeloop's most-used output besides raw numbers is the per-layer
breakdown: where the cycles go (compute vs memory), how well the PE
array is utilized, and which operand dominates energy.  These reports
drive the kind of design feedback the paper's Sec. 5.7 analysis gives
("WS exploits channel parallelism", "RS saves off-chip access
energy"), so the reproduction provides them as a first-class API.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.energy import EnergyTable
from repro.accelerator.platform import Platform, as_platform
from repro.accelerator.timeloop import map_layer
from repro.arch.network import ConvLayerDesc, NetworkArch


@dataclass(frozen=True)
class LayerReport:
    """One convolution layer's mapping diagnosis."""

    layer: ConvLayerDesc
    utilization: float
    latency_ms: float
    bottleneck: str  # "compute" | "buffer" | "dram"
    energy_mj: float
    energy_breakdown: dict  # component -> mJ

    @property
    def is_depthwise(self) -> bool:
        return self.layer.groups > 1


@dataclass
class NetworkReport:
    """Aggregated per-layer diagnosis of a network on an accelerator."""

    config: AcceleratorConfig
    layers: List[LayerReport]

    @property
    def total_latency_ms(self) -> float:
        return sum(l.latency_ms for l in self.layers)

    @property
    def total_energy_mj(self) -> float:
        return sum(l.energy_mj for l in self.layers)

    @property
    def mean_utilization(self) -> float:
        """Cycle-weighted average PE utilization."""
        total = sum(l.latency_ms for l in self.layers)
        if total == 0:
            return 0.0
        return sum(l.utilization * l.latency_ms for l in self.layers) / total

    def bottleneck_share(self) -> dict:
        """Fraction of total latency attributed to each bottleneck."""
        shares = {"compute": 0.0, "buffer": 0.0, "dram": 0.0}
        for layer in self.layers:
            shares[layer.bottleneck] += layer.latency_ms
        total = self.total_latency_ms or 1.0
        return {k: v / total for k, v in shares.items()}

    def dominant_energy_component(self) -> str:
        totals: dict = {}
        for layer in self.layers:
            for key, value in layer.energy_breakdown.items():
                totals[key] = totals.get(key, 0.0) + value
        return max(totals, key=totals.get)

    def render(self) -> str:
        lines = [f"Mapping report for {self.config}"]
        lines.append(
            f"total: {self.total_latency_ms:.2f} ms, {self.total_energy_mj:.2f} mJ, "
            f"mean utilization {100 * self.mean_utilization:.0f}%"
        )
        shares = self.bottleneck_share()
        lines.append(
            "bottlenecks: "
            + ", ".join(f"{k} {100 * v:.0f}%" for k, v in shares.items())
        )
        lines.append(f"dominant energy component: {self.dominant_energy_component()}")
        lines.append("")
        lines.append("layer (CxK kxk /s)          util   lat(ms) bound    E(mJ)")
        for rep in self.layers:
            layer = rep.layer
            kind = "dw" if rep.is_depthwise else "  "
            desc = (
                f"{layer.in_channels}x{layer.out_channels} "
                f"{layer.kernel}x{layer.kernel}/{layer.stride}{kind}"
            )
            lines.append(
                f"{desc:27s} {100 * rep.utilization:4.0f}%  {rep.latency_ms:7.3f} "
                f"{rep.bottleneck:8s} {rep.energy_mj:6.3f}"
            )
        return "\n".join(lines)


def report_layer(
    layer: ConvLayerDesc,
    config: AcceleratorConfig,
    table: Optional[EnergyTable] = None,
    platform: Optional[Platform] = None,
) -> LayerReport:
    """Diagnose one layer's mapping (bottleneck + energy decomposition)."""
    plat = as_platform(platform if platform is not None else config.platform)
    table = table or plat.energy_table
    mapping = map_layer(layer, config, plat)
    cycles = {
        "compute": mapping.compute_cycles,
        "buffer": mapping.buffer_accesses / plat.buffer_words_per_cycle,
        "dram": mapping.dram_accesses / plat.dram_words_per_cycle,
    }
    bottleneck = max(cycles, key=cycles.get)
    factor = plat.dataflow_energy_factor[config.dataflow] * 1e-9  # pJ -> mJ
    breakdown = {
        "mac": layer.macs * table.mac_pj * factor,
        "rf": mapping.rf_accesses * table.rf_access_pj(config.rf_bytes) * factor,
        "buffer": mapping.buffer_accesses * table.buffer_pj * factor,
        "dram": mapping.dram_accesses * table.dram_pj * factor,
        "noc": mapping.noc_hops * table.noc_hop_pj * factor,
    }
    return LayerReport(
        layer=layer,
        utilization=mapping.utilization,
        latency_ms=mapping.latency_ms,
        bottleneck=bottleneck,
        energy_mj=sum(breakdown.values()),
        energy_breakdown=breakdown,
    )


def report_network(
    arch: NetworkArch,
    config: AcceleratorConfig,
    table: Optional[EnergyTable] = None,
    platform: Optional[Platform] = None,
) -> NetworkReport:
    """Full per-layer report for a network/accelerator pair."""
    plat = as_platform(platform if platform is not None else config.platform)
    table = table or plat.energy_table
    return NetworkReport(
        config=config,
        layers=[
            report_layer(layer, config, table, plat) for layer in arch.conv_layers()
        ],
    )
