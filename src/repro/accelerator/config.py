"""Accelerator configuration and design space.

A configuration is (PE rows, PE cols, RF bytes per PE, dataflow), plus
the name of the hardware platform whose design space it belongs to.
The default ``"eyeriss"`` platform matches the paper: rows 12..20,
cols 8..24, RF 16..256 B in powers of two, dataflow in {WS, OS, RS} —
9 x 17 x 5 x 3 = 2295 designs, which together with ~1e14 networks
gives the ~1e17 joint space the paper quotes.  Other registered
platforms (see :mod:`repro.accelerator.platform`) swap in their own
ranges; the module-level constants below are the eyeriss values and
stay as the default platform's definition.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Iterator, List, Sequence

import numpy as np


class Dataflow(enum.Enum):
    """Spatial dataflow of the PE array."""

    WS = "weight-stationary"  # TPU-like: channels spatial, weights pinned
    OS = "output-stationary"  # ShiDianNao-like: output pixels spatial
    RS = "row-stationary"  # Eyeriss-like: filter/output rows spatial


DATAFLOWS: Sequence[Dataflow] = (Dataflow.WS, Dataflow.OS, Dataflow.RS)

#: Eyeriss design-space constants — the default platform's definition
#: (and backwards-compatible aliases for pre-platform callers).
PE_ROWS_RANGE = tuple(range(12, 21))  # 12..20
PE_COLS_RANGE = tuple(range(8, 25))  # 8..24
RF_BYTES_OPTIONS = (16, 32, 64, 128, 256)

#: Bytes per operand word (16-bit fixed point, as in Eyeriss).
WORD_BYTES = 2

#: Global (on-chip) buffer capacity in bytes, fixed as in Eyeriss.
GLOBAL_BUFFER_BYTES = 108 * 1024


def _resolve(platform) -> "object":
    """Lazy platform resolution (platform.py imports this module)."""
    from repro.accelerator.platform import as_platform

    return as_platform(platform)


@dataclass(frozen=True)
class AcceleratorConfig:
    """One point in a platform's accelerator design space.

    ``platform`` names the design space the dimensions are validated
    against and the vector encoding is normalized by; it is excluded
    from equality/hash so configs compare by their physical dimensions.
    """

    pe_rows: int
    pe_cols: int
    rf_bytes: int
    dataflow: Dataflow
    platform: str = field(default="eyeriss", compare=False, repr=False)

    def __post_init__(self) -> None:
        _resolve(self.platform).validate(self.pe_rows, self.pe_cols, self.rf_bytes)

    @property
    def num_pes(self) -> int:
        return self.pe_rows * self.pe_cols

    @property
    def rf_words(self) -> int:
        return self.rf_bytes // _resolve(self.platform).word_bytes

    def __str__(self) -> str:
        return (
            f"{self.pe_rows}x{self.pe_cols} PEs, {self.rf_bytes}B RF, "
            f"{self.dataflow.name}"
        )

    # ------------------------------------------------------------------
    # Relaxed (continuous) encoding used by the hardware generator
    # ------------------------------------------------------------------
    def to_vector(self) -> np.ndarray:
        """Encode as a 6-dim vector in [0, 1] (rows, cols, log-RF, df one-hot).

        Normalization spans this config's platform ranges, so the same
        vector decodes to different physical designs on different
        platforms — by construction, since the generator's output
        bounds are the unit cube regardless of target.
        """
        plat = _resolve(self.platform)
        rows_range, cols_range = plat.pe_rows_range, plat.pe_cols_range
        rf_options = plat.rf_bytes_options
        rows01 = (self.pe_rows - rows_range[0]) / (rows_range[-1] - rows_range[0])
        cols01 = (self.pe_cols - cols_range[0]) / (cols_range[-1] - cols_range[0])
        rf_steps = len(rf_options) - 1
        rf01 = rf_options.index(self.rf_bytes) / rf_steps
        onehot = np.zeros(len(DATAFLOWS))
        onehot[DATAFLOWS.index(self.dataflow)] = 1.0
        return np.concatenate([[rows01, cols01, rf01], onehot])

    @staticmethod
    def from_vector(vec: np.ndarray, platform=None) -> "AcceleratorConfig":
        """Decode (snap) a relaxed vector back to the platform's nearest design."""
        plat = _resolve(platform)
        rows_range, cols_range = plat.pe_rows_range, plat.pe_cols_range
        rf_options = plat.rf_bytes_options
        vec = np.asarray(vec, dtype=float)
        if vec.shape != (6,):
            raise ValueError(f"expected 6-dim vector, got shape {vec.shape}")
        rows01, cols01, rf01 = np.clip(vec[:3], 0.0, 1.0)
        rows = int(round(rows_range[0] + rows01 * (rows_range[-1] - rows_range[0])))
        cols = int(round(cols_range[0] + cols01 * (cols_range[-1] - cols_range[0])))
        rf_idx = int(round(rf01 * (len(rf_options) - 1)))
        dataflow = DATAFLOWS[int(np.argmax(vec[3:]))]
        return AcceleratorConfig(
            rows, cols, rf_options[rf_idx], dataflow, platform=plat.name
        )

    @staticmethod
    def vector_dim() -> int:
        return 3 + len(DATAFLOWS)


@dataclass
class ConfigBatch:
    """``n`` accelerator configurations of one platform as plain arrays.

    The structure-of-arrays twin of ``List[AcceleratorConfig]``:
    :meth:`DesignSpace.sample_batch` produces it, the pair-batch oracle
    (:func:`repro.accelerator.batch.evaluate_pairs_from_indices`) and
    the batched vector encoding consume it without touching per-config
    Python objects.  ``df_index`` indexes :data:`DATAFLOWS`.
    """

    pe_rows: np.ndarray  # (n,) int
    pe_cols: np.ndarray  # (n,) int
    rf_bytes: np.ndarray  # (n,) int
    df_index: np.ndarray  # (n,) int into DATAFLOWS
    platform: str = "eyeriss"

    def __len__(self) -> int:
        return len(self.pe_rows)

    def to_vectors(self) -> np.ndarray:
        """Batched relaxed encoding: ``(n, 6)``, rows bitwise equal to
        ``AcceleratorConfig.to_vector()`` of the matching config."""
        plat = _resolve(self.platform)
        rows_range, cols_range = plat.pe_rows_range, plat.pe_cols_range
        rf_options = np.asarray(plat.rf_bytes_options)
        rows01 = (self.pe_rows - rows_range[0]) / (rows_range[-1] - rows_range[0])
        cols01 = (self.pe_cols - cols_range[0]) / (cols_range[-1] - cols_range[0])
        rf_idx = np.searchsorted(rf_options, self.rf_bytes)
        in_options = (rf_idx < len(rf_options)) & (
            rf_options[np.minimum(rf_idx, len(rf_options) - 1)] == self.rf_bytes
        )
        if not np.all(in_options):
            bad = int(np.asarray(self.rf_bytes)[~in_options][0])
            raise ValueError(
                f"rf_bytes {bad} not in {tuple(plat.rf_bytes_options)} "
                f"(platform {plat.name!r})"
            )
        rf01 = rf_idx / (len(rf_options) - 1)
        onehot = np.zeros((len(self), len(DATAFLOWS)))
        onehot[np.arange(len(self)), self.df_index] = 1.0
        return np.concatenate(
            [rows01[:, None], cols01[:, None], rf01[:, None], onehot], axis=1
        )

    def configs(self) -> List[AcceleratorConfig]:
        """Materialize the batch as config objects (tests / interop)."""
        return [
            AcceleratorConfig(
                int(r), int(c), int(rf), DATAFLOWS[int(d)], platform=self.platform
            )
            for r, c, rf, d in zip(
                self.pe_rows, self.pe_cols, self.rf_bytes, self.df_index
            )
        ]


class DesignSpace:
    """Enumeration and sampling over one platform's configurations."""

    def __init__(self, platform=None) -> None:
        plat = _resolve(platform)
        self.platform = plat
        self.rows = plat.pe_rows_range
        self.cols = plat.pe_cols_range
        self.rf_options = plat.rf_bytes_options
        self.dataflows = plat.dataflows

    def __len__(self) -> int:
        return len(self.rows) * len(self.cols) * len(self.rf_options) * len(self.dataflows)

    def __iter__(self) -> Iterator[AcceleratorConfig]:
        for rows, cols, rf, df in itertools.product(
            self.rows, self.cols, self.rf_options, self.dataflows
        ):
            yield AcceleratorConfig(rows, cols, rf, df, platform=self.platform.name)

    def sample(self, rng: np.random.Generator) -> AcceleratorConfig:
        return AcceleratorConfig(
            pe_rows=int(rng.choice(self.rows)),
            pe_cols=int(rng.choice(self.cols)),
            rf_bytes=int(rng.choice(self.rf_options)),
            dataflow=self.dataflows[int(rng.integers(len(self.dataflows)))],
            platform=self.platform.name,
        )

    def sample_many(self, n: int, rng: np.random.Generator) -> List[AcceleratorConfig]:
        return [self.sample(rng) for _ in range(n)]

    def sample_bounds(self) -> np.ndarray:
        """Per-draw bounds of one :meth:`sample` call, in draw order."""
        return np.array(
            [len(self.rows), len(self.cols), len(self.rf_options), len(self.dataflows)],
            dtype=np.int64,
        )

    def batch_from_draws(self, draws: np.ndarray) -> ConfigBatch:
        """Decode ``(n, 4)`` dimension-index draws into a :class:`ConfigBatch`."""
        draws = np.asarray(draws, dtype=np.int64)
        return ConfigBatch(
            pe_rows=np.asarray(self.rows, dtype=np.int64)[draws[:, 0]],
            pe_cols=np.asarray(self.cols, dtype=np.int64)[draws[:, 1]],
            rf_bytes=np.asarray(self.rf_options, dtype=np.int64)[draws[:, 2]],
            df_index=draws[:, 3],
            platform=self.platform.name,
        )

    def sample_batch(self, n: int, rng: np.random.Generator) -> ConfigBatch:
        """Draw ``n`` configurations as one vectorized sample.

        Stream-equivalent to ``sample_many(n, rng)``: same designs,
        same final generator state (``rng.choice`` on a value list and
        ``rng.integers`` on its length consume identically; see
        :mod:`repro.rng`).
        """
        from repro.rng import bounded_integers_batch

        bounds = np.broadcast_to(self.sample_bounds(), (n, 4))
        return self.batch_from_draws(bounded_integers_batch(rng, bounds))
