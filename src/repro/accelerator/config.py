"""Accelerator configuration and design space.

A configuration is (PE rows, PE cols, RF bytes per PE, dataflow).  The
space matches the paper: rows 12..20, cols 8..24, RF 16..256 B in
powers of two, dataflow in {WS, OS, RS} — 9 x 17 x 5 x 3 = 2295
designs, which together with ~1e14 networks gives the ~1e17 joint
space the paper quotes.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Iterator, List, Sequence

import numpy as np


class Dataflow(enum.Enum):
    """Spatial dataflow of the PE array."""

    WS = "weight-stationary"  # TPU-like: channels spatial, weights pinned
    OS = "output-stationary"  # ShiDianNao-like: output pixels spatial
    RS = "row-stationary"  # Eyeriss-like: filter/output rows spatial


DATAFLOWS: Sequence[Dataflow] = (Dataflow.WS, Dataflow.OS, Dataflow.RS)

PE_ROWS_RANGE = tuple(range(12, 21))  # 12..20
PE_COLS_RANGE = tuple(range(8, 25))  # 8..24
RF_BYTES_OPTIONS = (16, 32, 64, 128, 256)

#: Bytes per operand word (16-bit fixed point, as in Eyeriss).
WORD_BYTES = 2

#: Global (on-chip) buffer capacity in bytes, fixed as in Eyeriss.
GLOBAL_BUFFER_BYTES = 108 * 1024


@dataclass(frozen=True)
class AcceleratorConfig:
    """One point in the accelerator design space."""

    pe_rows: int
    pe_cols: int
    rf_bytes: int
    dataflow: Dataflow

    def __post_init__(self) -> None:
        if not (PE_ROWS_RANGE[0] <= self.pe_rows <= PE_ROWS_RANGE[-1]):
            raise ValueError(f"pe_rows {self.pe_rows} outside {PE_ROWS_RANGE[0]}..{PE_ROWS_RANGE[-1]}")
        if not (PE_COLS_RANGE[0] <= self.pe_cols <= PE_COLS_RANGE[-1]):
            raise ValueError(f"pe_cols {self.pe_cols} outside {PE_COLS_RANGE[0]}..{PE_COLS_RANGE[-1]}")
        if self.rf_bytes not in RF_BYTES_OPTIONS:
            raise ValueError(f"rf_bytes {self.rf_bytes} not in {RF_BYTES_OPTIONS}")

    @property
    def num_pes(self) -> int:
        return self.pe_rows * self.pe_cols

    @property
    def rf_words(self) -> int:
        return self.rf_bytes // WORD_BYTES

    def __str__(self) -> str:
        return (
            f"{self.pe_rows}x{self.pe_cols} PEs, {self.rf_bytes}B RF, "
            f"{self.dataflow.name}"
        )

    # ------------------------------------------------------------------
    # Relaxed (continuous) encoding used by the hardware generator
    # ------------------------------------------------------------------
    def to_vector(self) -> np.ndarray:
        """Encode as a 6-dim vector in [0, 1] (rows, cols, log-RF, df one-hot)."""
        rows01 = (self.pe_rows - PE_ROWS_RANGE[0]) / (PE_ROWS_RANGE[-1] - PE_ROWS_RANGE[0])
        cols01 = (self.pe_cols - PE_COLS_RANGE[0]) / (PE_COLS_RANGE[-1] - PE_COLS_RANGE[0])
        rf_steps = len(RF_BYTES_OPTIONS) - 1
        rf01 = RF_BYTES_OPTIONS.index(self.rf_bytes) / rf_steps
        onehot = np.zeros(len(DATAFLOWS))
        onehot[DATAFLOWS.index(self.dataflow)] = 1.0
        return np.concatenate([[rows01, cols01, rf01], onehot])

    @staticmethod
    def from_vector(vec: np.ndarray) -> "AcceleratorConfig":
        """Decode (snap) a relaxed vector back to the nearest design."""
        vec = np.asarray(vec, dtype=float)
        if vec.shape != (6,):
            raise ValueError(f"expected 6-dim vector, got shape {vec.shape}")
        rows01, cols01, rf01 = np.clip(vec[:3], 0.0, 1.0)
        rows = int(round(PE_ROWS_RANGE[0] + rows01 * (PE_ROWS_RANGE[-1] - PE_ROWS_RANGE[0])))
        cols = int(round(PE_COLS_RANGE[0] + cols01 * (PE_COLS_RANGE[-1] - PE_COLS_RANGE[0])))
        rf_idx = int(round(rf01 * (len(RF_BYTES_OPTIONS) - 1)))
        dataflow = DATAFLOWS[int(np.argmax(vec[3:]))]
        return AcceleratorConfig(rows, cols, RF_BYTES_OPTIONS[rf_idx], dataflow)

    @staticmethod
    def vector_dim() -> int:
        return 3 + len(DATAFLOWS)


class DesignSpace:
    """Enumeration and sampling over all accelerator configurations."""

    def __init__(self) -> None:
        self.rows = PE_ROWS_RANGE
        self.cols = PE_COLS_RANGE
        self.rf_options = RF_BYTES_OPTIONS
        self.dataflows = DATAFLOWS

    def __len__(self) -> int:
        return len(self.rows) * len(self.cols) * len(self.rf_options) * len(self.dataflows)

    def __iter__(self) -> Iterator[AcceleratorConfig]:
        for rows, cols, rf, df in itertools.product(
            self.rows, self.cols, self.rf_options, self.dataflows
        ):
            yield AcceleratorConfig(rows, cols, rf, df)

    def sample(self, rng: np.random.Generator) -> AcceleratorConfig:
        return AcceleratorConfig(
            pe_rows=int(rng.choice(self.rows)),
            pe_cols=int(rng.choice(self.cols)),
            rf_bytes=int(rng.choice(self.rf_options)),
            dataflow=self.dataflows[int(rng.integers(len(self.dataflows)))],
        )

    def sample_many(self, n: int, rng: np.random.Generator) -> List[AcceleratorConfig]:
        return [self.sample(rng) for _ in range(n)]
