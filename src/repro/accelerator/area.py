"""Chip-area model.

Area decomposes into PE array (MAC datapath + register file per PE),
the shared global buffer, and NoC wiring proportional to the array
perimeter.  The constants are per-platform (see
:mod:`repro.accelerator.platform`); the module-level values below are
the eyeriss calibration, chosen so that design-space extremes span
roughly 1.7-2.8 mm^2, matching the range reported in the paper's
Table 2 (1.86-2.53 mm^2).
"""

from __future__ import annotations

from repro.accelerator.config import AcceleratorConfig

#: mm^2 for one MAC datapath + control.
PE_BASE_MM2 = 0.0015
#: mm^2 per byte of register file.
RF_MM2_PER_BYTE = 4.0e-6
#: mm^2 for the fixed 108 KB global buffer.
GLOBAL_BUFFER_MM2 = 1.5
#: mm^2 of NoC wiring per PE-array row+column.
NOC_MM2_PER_LANE = 0.002


def area_mm2(config: AcceleratorConfig, platform=None) -> float:
    """Total silicon area of a configuration in mm^2.

    ``platform`` defaults to the config's own platform and supplies the
    process/area constants.
    """
    from repro.accelerator.platform import as_platform

    plat = as_platform(platform if platform is not None else config.platform)
    pe_area = config.num_pes * (plat.pe_base_mm2 + plat.rf_mm2_per_byte * config.rf_bytes)
    noc_area = plat.noc_mm2_per_lane * (config.pe_rows + config.pe_cols)
    return pe_area + plat.global_buffer_mm2 + noc_area
