"""Chip-area model.

Area decomposes into PE array (MAC datapath + register file per PE),
the shared global buffer, and NoC wiring proportional to the array
perimeter.  Constants are calibrated so the design-space extremes span
roughly 1.7-2.8 mm^2, matching the range reported in the paper's
Table 2 (1.86-2.53 mm^2).
"""

from __future__ import annotations

from repro.accelerator.config import AcceleratorConfig

#: mm^2 for one MAC datapath + control.
PE_BASE_MM2 = 0.0015
#: mm^2 per byte of register file.
RF_MM2_PER_BYTE = 4.0e-6
#: mm^2 for the fixed 108 KB global buffer.
GLOBAL_BUFFER_MM2 = 1.5
#: mm^2 of NoC wiring per PE-array row+column.
NOC_MM2_PER_LANE = 0.002


def area_mm2(config: AcceleratorConfig) -> float:
    """Total silicon area of a configuration in mm^2."""
    pe_area = config.num_pes * (PE_BASE_MM2 + RF_MM2_PER_BYTE * config.rf_bytes)
    noc_area = NOC_MM2_PER_LANE * (config.pe_rows + config.pe_cols)
    return pe_area + GLOBAL_BUFFER_MM2 + noc_area
