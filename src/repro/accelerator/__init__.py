"""Accelerator models — Timeloop/Accelergy substitute, per platform.

The default ``"eyeriss"`` platform follows the paper's Section 4.4: a
2-D PE array from 12x8 to 20x24, a per-PE register file from 16 B to
256 B, and a dataflow chosen from weight-stationary (WS, TPU-like),
output-stationary (OS, ShiDianNao-like), and row-stationary (RS,
Eyeriss-like).  Additional hardware targets are registered through
:mod:`repro.accelerator.platform`; every analytical entry point takes
an optional platform handle and otherwise resolves the config's own.

``evaluate_network`` is the ground-truth oracle used to pre-train the
learned estimator and to report final metrics, exactly as the paper
uses Timeloop + Accelergy.
"""

from repro.accelerator.config import (
    DATAFLOWS,
    AcceleratorConfig,
    ConfigBatch,
    Dataflow,
    DesignSpace,
)
from repro.accelerator.energy import EnergyTable, default_energy_table
from repro.accelerator.area import area_mm2
from repro.accelerator.timeloop import LayerMapping, map_layer
from repro.accelerator.platform import (
    DEFAULT_PLATFORM,
    Platform,
    as_platform,
    available_platforms,
    get_platform,
    register_platform,
    unregister_platform,
)
from repro.accelerator.cost import (
    COST_WEIGHTS,
    HardwareMetrics,
    cost_hw,
    evaluate_layer,
    evaluate_network,
    exhaustive_search,
)

__all__ = [
    "Dataflow",
    "DATAFLOWS",
    "AcceleratorConfig",
    "ConfigBatch",
    "DesignSpace",
    "EnergyTable",
    "default_energy_table",
    "area_mm2",
    "LayerMapping",
    "map_layer",
    "Platform",
    "DEFAULT_PLATFORM",
    "as_platform",
    "available_platforms",
    "get_platform",
    "register_platform",
    "unregister_platform",
    "HardwareMetrics",
    "cost_hw",
    "COST_WEIGHTS",
    "evaluate_layer",
    "evaluate_network",
    "exhaustive_search",
]
