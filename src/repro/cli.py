"""Command-line interface.

Subcommands::

    python -m repro search     --workload cifar10 --latency 16.6 [--platform edge] [...]
    python -m repro evaluate   --result out.json [--platform tpu-like]
    python -m repro report     --result out.json
    python -m repro hwsearch   --workload cifar10 --indices 0,1,2,... [--platform edge]
    python -m repro experiment --name fig1|table1|fig3|table2|fig4|table3|fig5
    python -m repro pretrain   [--platforms eyeriss,edge] [--jobs 3]
    python -m repro campaign   --workloads cifar10,speech --platforms eyeriss,edge
    python -m repro workloads  ls
    python -m repro runs       ls|gc|invalidate [--store DIR]

``search`` runs an HDX (or baseline) co-exploration and writes the
result JSON; ``evaluate``/``report`` re-check a saved result against
the analytical ground truth; ``experiment`` regenerates a paper
table/figure.  ``--workload`` selects a registered workload (the
software side of a scenario: search space, surrogate calibration, cost
normalization; ``--space`` remains as a legacy alias) and
``--platform`` a registered hardware target (default ``eyeriss``);
``evaluate``/``report`` default to what the result JSON stores.
``workloads ls`` prints the registry — the software-side mirror of the
platform registry.

``campaign`` sweeps a workload x platform x constraint-preset x method
grid through the runtime scheduler and renders a cross-scenario
Pareto/summary report.  The run store is on by default for campaigns
(an unchanged campaign re-run executes zero searches); ``--dry-run``
validates and prints the grid without executing anything.

``pretrain`` warms the estimator caches explicitly: it pre-trains (or
loads) the cost estimator of every requested platform, cache misses in
parallel worker processes (``--jobs``), and reports per platform
whether the estimator was trained or served from the cache — a second
invocation performs zero oracle evaluations.  Non-default
``--n-samples``/``--epochs`` budgets get their own cache files and
never displace the canonical estimators.

``search`` and ``experiment`` accept the runtime-layer flags:
``--jobs N`` shards cache-missing searches across N worker processes
(bitwise identical to single-process execution), ``--store [DIR]``
enables the content-addressed run store (repeats are served from
disk; default directory ``<cache>/runs``), ``--no-store`` disables a
store configured via ``$REPRO_RUN_STORE``, and ``--rerun`` forces
re-execution while still refreshing the store.  ``runs`` inspects a
store: ``ls`` lists records, ``gc`` drops stale-engine records and
temp files, ``invalidate`` deletes by key prefix or ``--all``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.accelerator import (
    available_platforms,
    cost_hw,
    evaluate_network,
    exhaustive_search,
)
from repro.arch import NetworkArch
from repro.core import ConstraintSet
from repro.baselines import run_autonba, run_dance, run_dance_soft, run_hdx
from repro.serialize import (
    arch_from_dict,
    load_result,
    save_result,
    space_by_name,
)

_METHODS = {
    "hdx": run_hdx,
    "dance": run_dance,
    "dance-soft": run_dance_soft,
    "auto-nba": run_autonba,
}


def _add_constraint_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--latency", type=float, help="latency bound in ms")
    parser.add_argument("--energy", type=float, help="energy bound in mJ")
    parser.add_argument("--area", type=float, help="area bound in mm2")


def _add_platform_arg(parser: argparse.ArgumentParser, default: Optional[str]) -> None:
    parser.add_argument(
        "--platform",
        choices=available_platforms(),
        default=default,
        help="registered hardware platform"
        + ("" if default else " (default: the result's stored platform)"),
    )


def _add_workload_arg(
    parser: argparse.ArgumentParser, default: Optional[str] = "cifar10"
) -> None:
    from repro.workload import available_workloads

    parser.add_argument(
        "--workload",
        "--space",
        dest="workload",
        choices=available_workloads(),
        default=default,
        help="registered workload (--space is a legacy alias)"
        + ("" if default else " (default: the result's stored workload)"),
    )


def _split_names(raw: str, registered, kind: str) -> List[str]:
    """Parse a comma-separated name list against a registry listing."""
    names = [name.strip() for name in raw.split(",") if name.strip()]
    unknown = sorted(set(names) - set(registered))
    if unknown:
        raise SystemExit(
            f"error: unknown {kind}(s) {unknown}; registered: {list(registered)}"
        )
    if not names:
        raise SystemExit(f"error: no {kind}s given")
    return names


def _add_runtime_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="shard searches across N worker processes",
    )
    parser.add_argument(
        "--store", nargs="?", const="__default__", default=None, metavar="DIR",
        help="enable the run store (optionally at DIR; default <cache>/runs)",
    )
    parser.add_argument(
        "--no-store", action="store_true",
        help="disable the run store even if $REPRO_RUN_STORE is set",
    )
    parser.add_argument(
        "--rerun", action="store_true",
        help="execute even on store hits (refreshes stored results)",
    )
    parser.add_argument(
        "--no-rerun", action="store_true",
        help="serve store hits even if $REPRO_RERUN is set",
    )


def _runtime_context_from(args):
    from repro.runtime import default_store_dir, runtime_context

    store = None  # None = inherit the environment-configured store
    if getattr(args, "no_store", False):
        store = False
    elif args.store is not None:
        store = default_store_dir() if args.store == "__default__" else args.store
    rerun = None  # None = inherit $REPRO_RERUN
    if getattr(args, "no_rerun", False):
        rerun = False
    elif args.rerun:
        rerun = True
    return runtime_context(jobs=args.jobs, store=store, rerun=rerun)


def _print_runtime_report() -> None:
    """Summarize every dispatch of the scope (a driver like table1
    issues one per meta-search round, not just the last one)."""
    from repro.runtime import active_context, aggregate_report

    report = aggregate_report()
    context = active_context()
    if report and (context.store is not None or context.jobs > 1):
        print(report.summary())


def _constraints_from(args) -> ConstraintSet:
    bounds = {}
    for metric in ("latency", "energy", "area"):
        value = getattr(args, metric, None)
        if value is not None:
            bounds[metric] = value
    return ConstraintSet.from_dict(bounds)


def cmd_search(args) -> int:
    from repro.experiments.common import get_estimator, get_space

    space = get_space(args.workload)
    estimator = get_estimator(args.workload, platform=args.platform)
    constraints = _constraints_from(args)
    with _runtime_context_from(args):
        if args.method == "hdx":
            if not constraints:
                print("error: hdx requires at least one constraint", file=sys.stderr)
                return 2
            result = run_hdx(
                space, estimator, constraints, lambda_cost=args.lambda_cost,
                seed=args.seed, epochs=args.epochs, platform=args.platform,
            )
        elif args.method == "dance":
            result = run_dance(
                space, estimator, lambda_cost=args.lambda_cost, seed=args.seed,
                constraints=constraints, epochs=args.epochs, platform=args.platform,
            )
        elif args.method == "dance-soft":
            result = run_dance_soft(
                space, estimator, constraints, lambda_cost=args.lambda_cost,
                seed=args.seed, epochs=args.epochs, platform=args.platform,
            )
        else:
            result = run_autonba(
                space, estimator, lambda_cost=args.lambda_cost, seed=args.seed,
                constraints=constraints, epochs=args.epochs, platform=args.platform,
            )
        _print_runtime_report()
    print(result.summary())
    if args.output:
        save_result(result, args.output)
        print(f"saved to {args.output}")
    return 0 if (not constraints or result.in_constraint) else 1


def _check_result_workload(args, result) -> Optional[int]:
    """``--workload`` on evaluate/report asserts the result's workload."""
    if args.workload and result.arch.space.name != args.workload:
        print(
            f"error: result belongs to workload {result.arch.space.name!r}, "
            f"not {args.workload!r}",
            file=sys.stderr,
        )
        return 2
    return None


def cmd_evaluate(args) -> int:
    result = load_result(args.result)
    mismatch = _check_result_workload(args, result)
    if mismatch is not None:
        return mismatch
    platform = args.platform or result.platform
    truth = evaluate_network(result.arch, result.config, platform=platform)
    print(f"platform: {platform}")
    print(f"stored : {result.metrics}")
    print(f"oracle : {truth}")
    print(f"cost_hw: {cost_hw(truth):.2f}")
    if result.constraints:
        ok = result.constraints.all_satisfied(truth)
        print(f"constraints ({result.constraints}): {'satisfied' if ok else 'VIOLATED'}")
        return 0 if ok else 1
    return 0


def cmd_report(args) -> int:
    from repro.accelerator.report import report_network

    result = load_result(args.result)
    mismatch = _check_result_workload(args, result)
    if mismatch is not None:
        return mismatch
    platform = args.platform or result.platform
    print(report_network(result.arch, result.config, platform=platform).render())
    return 0


def cmd_hwsearch(args) -> int:
    space = space_by_name(args.workload)
    indices = [int(x) for x in args.indices.split(",")]
    arch = arch_from_dict({"space": args.workload, "indices": indices}, space)
    constraints = _constraints_from(args)
    bounds = {c.metric: c.bound for c in constraints}
    config, metrics = exhaustive_search(
        arch, constraints=bounds or None, platform=args.platform
    )
    print(f"best config: {config} [{args.platform}]")
    print(f"metrics    : {metrics} (cost_hw {cost_hw(metrics):.2f})")
    return 0


def cmd_experiment(args) -> int:
    from repro import experiments

    runners = {
        "fig1": (experiments.run_fig1, experiments.render_fig1),
        "table1": (experiments.run_table1, experiments.render_table1),
        "fig3": (experiments.run_fig3, experiments.render_fig3),
        "table2": (experiments.run_table2, experiments.render_table2),
        "fig4": (experiments.run_fig4, experiments.render_fig4),
        "table3": (experiments.run_table3, experiments.render_table3),
        "fig5": (experiments.run_fig5, experiments.render_fig5),
    }
    run, render = runners[args.name]
    # Each driver has its paper workload as default (table3: imagenet,
    # everything else: cifar10); --workload overrides it.
    kwargs = {"workload": args.workload} if args.workload else {}
    with _runtime_context_from(args):
        rows = run(**kwargs)
        _print_runtime_report()
    print(render(rows))
    return 0


def cmd_pretrain(args) -> int:
    from repro.estimator.dataset import DEFAULT_PRETRAIN_SAMPLES
    from repro.experiments.common import _cache_path, warm_estimator_caches
    from repro.runtime import runtime_context

    if args.platforms in (None, "all"):
        platforms = available_platforms()
    else:
        platforms = [name.strip() for name in args.platforms.split(",") if name.strip()]
        unknown = sorted(set(platforms) - set(available_platforms()))
        if unknown:
            print(
                f"error: unknown platform(s) {unknown}; "
                f"registered: {available_platforms()}",
                file=sys.stderr,
            )
            return 2
    with runtime_context(jobs=args.jobs):
        status = warm_estimator_caches(
            args.workload,
            platforms=platforms,
            seed=args.seed,
            n_samples=args.n_samples,
            epochs=args.epochs,
        )
    for platform in platforms:
        path = _cache_path(
            args.workload, platform, args.seed, args.n_samples, args.epochs
        )
        print(f"estimator [{args.workload}/{platform}/s{args.seed}]: "
              f"{status[platform]} ({path})")
    trained = sum(1 for s in status.values() if s == "trained")
    cached = len(status) - trained
    pairs = trained * (args.n_samples or DEFAULT_PRETRAIN_SAMPLES)
    print(f"pretrain summary: trained={trained} cached={cached} oracle_pairs={pairs}")
    return 0


def cmd_workloads(args) -> int:
    """``repro workloads ls`` — the software-side registry listing."""
    from repro.workload import available_workloads, get_workload

    for name in available_workloads():
        workload = get_workload(name)
        space = workload.space()
        cal = workload.calibration
        presets = ", ".join(
            f"{preset}: "
            + " ".join(
                f"{metric}<={bound:g}"
                for metric, bound in sorted(workload.constraint_presets[preset].items())
            )
            for preset in workload.preset_names()
        )
        print(f"{name}: {workload.description or '(no description)'}")
        print(
            f"  space      : {space.num_layers} layers, {space.num_classes} "
            f"classes @ {space.input_size}px "
            f"({space.total_architectures():.2e} architectures)"
        )
        print(
            f"  surrogate  : err {cal['err_floor']:g}-"
            f"{cal['err_floor'] + cal['err_spread']:g}%, "
            f"loss_scale {cal['loss_scale']:g}, "
            f"typical Cost_HW {workload.typical_cost:g} "
            f"(norm {workload.cost_normalization():g})"
        )
        print(f"  presets    : {presets}")
    print(f"{len(available_workloads())} workload(s) registered")
    return 0


def cmd_campaign(args) -> int:
    from repro.experiments.campaign import (
        build_scenarios,
        render_campaign,
        render_plan,
        run_campaign,
    )
    from repro.baselines import METHODS
    from repro.workload import available_workloads, get_workload

    workloads = _split_names(args.workloads, available_workloads(), "workload")
    platforms = _split_names(args.platforms, available_platforms(), "platform")
    method_names = sorted(
        set(METHODS) | {info.cli_name for info in METHODS.values()}
    )
    methods = _split_names(args.methods, method_names, "method")
    # Presets are per-workload; validate each against every selected
    # workload so the grid fails cleanly before anything executes.
    presets = [name.strip() for name in args.presets.split(",") if name.strip()]
    if not presets:
        raise SystemExit("error: no presets given")
    for name in workloads:
        workload = get_workload(name)
        missing = sorted(set(presets) - set(workload.preset_names()))
        if missing:
            raise SystemExit(
                f"error: workload {name!r} lacks constraint preset(s) "
                f"{missing}; available: {workload.preset_names()}"
            )
    scenarios = build_scenarios(
        workloads,
        platforms,
        methods=methods,
        presets=presets,
        seeds=args.seeds,
        lambda_cost=args.lambda_cost,
        epochs=args.epochs,
    )
    if args.dry_run:
        print(render_plan(scenarios))
        return 0
    # Campaigns default to the run store (re-runs dedupe to zero
    # executed searches) unless explicitly disabled.
    if not args.no_store and args.store is None:
        args.store = "__default__"
    with _runtime_context_from(args):
        rows = run_campaign(scenarios)
        _print_runtime_report()
    print(render_campaign(rows))
    return 0


def cmd_runs(args) -> int:
    from repro.runtime import RunStore, default_store_dir

    store = RunStore(args.store or default_store_dir())
    if args.action == "ls":
        entries = store.ls()
        for e in entries:
            flag = "STALE" if e.stale else "ok"
            print(f"{e.key}  {e.method:<10} {e.platform:<8} {e.space:<8} {flag}")
        print(f"{len(entries)} record(s) in {store.root}")
        return 0
    if args.action == "gc":
        removed = store.gc()
        print(f"removed {removed} stale record(s) from {store.root}")
        return 0
    # invalidate
    if args.all:
        removed = store.clear()
    elif args.key:
        removed = store.invalidate(args.key)
    else:
        print("error: invalidate needs --key PREFIX or --all", file=sys.stderr)
        return 2
    print(f"invalidated {removed} record(s) in {store.root}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="HDX co-exploration toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("search", help="run a co-exploration")
    _add_workload_arg(p)
    p.add_argument("--method", choices=sorted(_METHODS), default="hdx")
    p.add_argument("--lambda-cost", dest="lambda_cost", type=float, default=0.003)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--epochs", type=int, default=150)
    p.add_argument("--output", help="write result JSON here")
    _add_constraint_args(p)
    _add_platform_arg(p, default="eyeriss")
    _add_runtime_args(p)
    p.set_defaults(func=cmd_search)

    p = sub.add_parser("evaluate", help="re-check a saved result")
    p.add_argument("--result", required=True)
    _add_platform_arg(p, default=None)
    _add_workload_arg(p, default=None)
    p.set_defaults(func=cmd_evaluate)

    p = sub.add_parser("report", help="per-layer mapping report of a saved result")
    p.add_argument("--result", required=True)
    _add_platform_arg(p, default=None)
    _add_workload_arg(p, default=None)
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("hwsearch", help="exhaustive accelerator search for a fixed network")
    _add_workload_arg(p)
    p.add_argument("--indices", required=True, help="comma-separated choice indices")
    _add_constraint_args(p)
    _add_platform_arg(p, default="eyeriss")
    p.set_defaults(func=cmd_hwsearch)

    p = sub.add_parser("experiment", help="regenerate a paper table/figure")
    p.add_argument("--name", required=True,
                   choices=("fig1", "table1", "fig3", "table2", "fig4", "table3", "fig5"))
    _add_workload_arg(p, default=None)
    _add_runtime_args(p)
    p.set_defaults(func=cmd_experiment)

    p = sub.add_parser("pretrain", help="warm the per-platform estimator caches")
    _add_workload_arg(p)
    p.add_argument(
        "--platforms", default=None, metavar="P1,P2",
        help="comma-separated platform names (default: all registered)",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="pre-train cache misses across N worker processes",
    )
    p.add_argument(
        "--n-samples", dest="n_samples", type=int, default=None,
        help="non-canonical dataset size (gets its own cache file)",
    )
    p.add_argument(
        "--epochs", type=int, default=None,
        help="non-canonical epoch count (gets its own cache file)",
    )
    p.set_defaults(func=cmd_pretrain)

    p = sub.add_parser("workloads", help="inspect the workload registry")
    p.add_argument("action", choices=("ls",))
    p.set_defaults(func=cmd_workloads)

    p = sub.add_parser(
        "campaign", help="sweep a workload x platform x constraint grid"
    )
    p.add_argument(
        "--workloads", default="cifar10,speech", metavar="W1,W2",
        help="comma-separated registered workloads",
    )
    p.add_argument(
        "--platforms", default="eyeriss,edge", metavar="P1,P2",
        help="comma-separated registered platforms",
    )
    p.add_argument(
        "--methods", default="hdx", metavar="M1,M2",
        help=f"comma-separated methods ({', '.join(sorted(_METHODS))}, nas-hw)",
    )
    p.add_argument(
        "--presets", default="default", metavar="N1,N2",
        help="constraint preset names (each workload must define them)",
    )
    p.add_argument("--seeds", type=int, default=1, help="seeds per scenario")
    p.add_argument("--lambda-cost", dest="lambda_cost", type=float, default=0.003)
    p.add_argument("--epochs", type=int, default=150)
    p.add_argument(
        "--dry-run", action="store_true",
        help="validate and print the scenario grid without executing",
    )
    _add_runtime_args(p)
    p.set_defaults(func=cmd_campaign)

    p = sub.add_parser("runs", help="inspect/maintain the run store")
    p.add_argument("action", choices=("ls", "gc", "invalidate"))
    p.add_argument("--store", default=None, metavar="DIR",
                   help="store directory (default: $REPRO_RUN_STORE or <cache>/runs)")
    p.add_argument("--key", default=None, help="key prefix to invalidate")
    p.add_argument("--all", action="store_true", help="invalidate every record")
    p.set_defaults(func=cmd_runs)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
