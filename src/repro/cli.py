"""Command-line interface.

Subcommands::

    python -m repro search     --space cifar10 --latency 16.6 [--platform edge] [...]
    python -m repro evaluate   --result out.json [--platform tpu-like]
    python -m repro report     --result out.json
    python -m repro hwsearch   --space cifar10 --indices 0,1,2,... [--platform edge]
    python -m repro experiment --name fig1|table1|fig3|table2|fig4|table3|fig5
    python -m repro pretrain   [--platforms eyeriss,edge] [--jobs 3]
    python -m repro runs       ls|gc|invalidate [--store DIR]

``search`` runs an HDX (or baseline) co-exploration and writes the
result JSON; ``evaluate``/``report`` re-check a saved result against
the analytical ground truth; ``experiment`` regenerates a paper
table/figure.  ``--platform`` selects a registered hardware target
(default ``eyeriss``); ``evaluate``/``report`` default to the
platform stored in the result JSON.

``pretrain`` warms the estimator caches explicitly: it pre-trains (or
loads) the cost estimator of every requested platform, cache misses in
parallel worker processes (``--jobs``), and reports per platform
whether the estimator was trained or served from the cache — a second
invocation performs zero oracle evaluations.  Non-default
``--n-samples``/``--epochs`` budgets get their own cache files and
never displace the canonical estimators.

``search`` and ``experiment`` accept the runtime-layer flags:
``--jobs N`` shards cache-missing searches across N worker processes
(bitwise identical to single-process execution), ``--store [DIR]``
enables the content-addressed run store (repeats are served from
disk; default directory ``<cache>/runs``), ``--no-store`` disables a
store configured via ``$REPRO_RUN_STORE``, and ``--rerun`` forces
re-execution while still refreshing the store.  ``runs`` inspects a
store: ``ls`` lists records, ``gc`` drops stale-engine records and
temp files, ``invalidate`` deletes by key prefix or ``--all``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.accelerator import (
    available_platforms,
    cost_hw,
    evaluate_network,
    exhaustive_search,
)
from repro.arch import NetworkArch
from repro.core import ConstraintSet
from repro.baselines import run_autonba, run_dance, run_dance_soft, run_hdx
from repro.serialize import (
    arch_from_dict,
    load_result,
    save_result,
    space_by_name,
)

_METHODS = {
    "hdx": run_hdx,
    "dance": run_dance,
    "dance-soft": run_dance_soft,
    "auto-nba": run_autonba,
}


def _add_constraint_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--latency", type=float, help="latency bound in ms")
    parser.add_argument("--energy", type=float, help="energy bound in mJ")
    parser.add_argument("--area", type=float, help="area bound in mm2")


def _add_platform_arg(parser: argparse.ArgumentParser, default: Optional[str]) -> None:
    parser.add_argument(
        "--platform",
        choices=available_platforms(),
        default=default,
        help="registered hardware platform"
        + ("" if default else " (default: the result's stored platform)"),
    )


def _add_runtime_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="shard searches across N worker processes",
    )
    parser.add_argument(
        "--store", nargs="?", const="__default__", default=None, metavar="DIR",
        help="enable the run store (optionally at DIR; default <cache>/runs)",
    )
    parser.add_argument(
        "--no-store", action="store_true",
        help="disable the run store even if $REPRO_RUN_STORE is set",
    )
    parser.add_argument(
        "--rerun", action="store_true",
        help="execute even on store hits (refreshes stored results)",
    )
    parser.add_argument(
        "--no-rerun", action="store_true",
        help="serve store hits even if $REPRO_RERUN is set",
    )


def _runtime_context_from(args):
    from repro.runtime import default_store_dir, runtime_context

    store = None  # None = inherit the environment-configured store
    if getattr(args, "no_store", False):
        store = False
    elif args.store is not None:
        store = default_store_dir() if args.store == "__default__" else args.store
    rerun = None  # None = inherit $REPRO_RERUN
    if getattr(args, "no_rerun", False):
        rerun = False
    elif args.rerun:
        rerun = True
    return runtime_context(jobs=args.jobs, store=store, rerun=rerun)


def _print_runtime_report() -> None:
    """Summarize every dispatch of the scope (a driver like table1
    issues one per meta-search round, not just the last one)."""
    from repro.runtime import active_context, aggregate_report

    report = aggregate_report()
    context = active_context()
    if report and (context.store is not None or context.jobs > 1):
        print(report.summary())


def _constraints_from(args) -> ConstraintSet:
    bounds = {}
    for metric in ("latency", "energy", "area"):
        value = getattr(args, metric, None)
        if value is not None:
            bounds[metric] = value
    return ConstraintSet.from_dict(bounds)


def cmd_search(args) -> int:
    from repro.experiments.common import get_estimator, get_space

    space = get_space(args.space)
    estimator = get_estimator(args.space, platform=args.platform)
    constraints = _constraints_from(args)
    with _runtime_context_from(args):
        if args.method == "hdx":
            if not constraints:
                print("error: hdx requires at least one constraint", file=sys.stderr)
                return 2
            result = run_hdx(
                space, estimator, constraints, lambda_cost=args.lambda_cost,
                seed=args.seed, epochs=args.epochs, platform=args.platform,
            )
        elif args.method == "dance":
            result = run_dance(
                space, estimator, lambda_cost=args.lambda_cost, seed=args.seed,
                constraints=constraints, epochs=args.epochs, platform=args.platform,
            )
        elif args.method == "dance-soft":
            result = run_dance_soft(
                space, estimator, constraints, lambda_cost=args.lambda_cost,
                seed=args.seed, epochs=args.epochs, platform=args.platform,
            )
        else:
            result = run_autonba(
                space, estimator, lambda_cost=args.lambda_cost, seed=args.seed,
                constraints=constraints, epochs=args.epochs, platform=args.platform,
            )
        _print_runtime_report()
    print(result.summary())
    if args.output:
        save_result(result, args.output)
        print(f"saved to {args.output}")
    return 0 if (not constraints or result.in_constraint) else 1


def cmd_evaluate(args) -> int:
    result = load_result(args.result)
    platform = args.platform or result.platform
    truth = evaluate_network(result.arch, result.config, platform=platform)
    print(f"platform: {platform}")
    print(f"stored : {result.metrics}")
    print(f"oracle : {truth}")
    print(f"cost_hw: {cost_hw(truth):.2f}")
    if result.constraints:
        ok = result.constraints.all_satisfied(truth)
        print(f"constraints ({result.constraints}): {'satisfied' if ok else 'VIOLATED'}")
        return 0 if ok else 1
    return 0


def cmd_report(args) -> int:
    from repro.accelerator.report import report_network

    result = load_result(args.result)
    platform = args.platform or result.platform
    print(report_network(result.arch, result.config, platform=platform).render())
    return 0


def cmd_hwsearch(args) -> int:
    space = space_by_name(args.space)
    indices = [int(x) for x in args.indices.split(",")]
    arch = arch_from_dict({"space": args.space, "indices": indices}, space)
    constraints = _constraints_from(args)
    bounds = {c.metric: c.bound for c in constraints}
    config, metrics = exhaustive_search(
        arch, constraints=bounds or None, platform=args.platform
    )
    print(f"best config: {config} [{args.platform}]")
    print(f"metrics    : {metrics} (cost_hw {cost_hw(metrics):.2f})")
    return 0


def cmd_experiment(args) -> int:
    from repro import experiments

    runners = {
        "fig1": (experiments.run_fig1, experiments.render_fig1),
        "table1": (experiments.run_table1, experiments.render_table1),
        "fig3": (experiments.run_fig3, experiments.render_fig3),
        "table2": (experiments.run_table2, experiments.render_table2),
        "fig4": (experiments.run_fig4, experiments.render_fig4),
        "table3": (experiments.run_table3, experiments.render_table3),
        "fig5": (experiments.run_fig5, experiments.render_fig5),
    }
    run, render = runners[args.name]
    with _runtime_context_from(args):
        rows = run()
        _print_runtime_report()
    print(render(rows))
    return 0


def cmd_pretrain(args) -> int:
    from repro.estimator.dataset import DEFAULT_PRETRAIN_SAMPLES
    from repro.experiments.common import _cache_path, warm_estimator_caches
    from repro.runtime import runtime_context

    if args.platforms in (None, "all"):
        platforms = available_platforms()
    else:
        platforms = [name.strip() for name in args.platforms.split(",") if name.strip()]
        unknown = sorted(set(platforms) - set(available_platforms()))
        if unknown:
            print(
                f"error: unknown platform(s) {unknown}; "
                f"registered: {available_platforms()}",
                file=sys.stderr,
            )
            return 2
    with runtime_context(jobs=args.jobs):
        status = warm_estimator_caches(
            args.space,
            platforms=platforms,
            seed=args.seed,
            n_samples=args.n_samples,
            epochs=args.epochs,
        )
    for platform in platforms:
        path = _cache_path(args.space, platform, args.seed, args.n_samples, args.epochs)
        print(f"estimator [{args.space}/{platform}/s{args.seed}]: "
              f"{status[platform]} ({path})")
    trained = sum(1 for s in status.values() if s == "trained")
    cached = len(status) - trained
    pairs = trained * (args.n_samples or DEFAULT_PRETRAIN_SAMPLES)
    print(f"pretrain summary: trained={trained} cached={cached} oracle_pairs={pairs}")
    return 0


def cmd_runs(args) -> int:
    from repro.runtime import RunStore, default_store_dir

    store = RunStore(args.store or default_store_dir())
    if args.action == "ls":
        entries = store.ls()
        for e in entries:
            flag = "STALE" if e.stale else "ok"
            print(f"{e.key}  {e.method:<10} {e.platform:<8} {e.space:<8} {flag}")
        print(f"{len(entries)} record(s) in {store.root}")
        return 0
    if args.action == "gc":
        removed = store.gc()
        print(f"removed {removed} stale record(s) from {store.root}")
        return 0
    # invalidate
    if args.all:
        removed = store.clear()
    elif args.key:
        removed = store.invalidate(args.key)
    else:
        print("error: invalidate needs --key PREFIX or --all", file=sys.stderr)
        return 2
    print(f"invalidated {removed} record(s) in {store.root}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="HDX co-exploration toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("search", help="run a co-exploration")
    p.add_argument("--space", choices=("cifar10", "imagenet"), default="cifar10")
    p.add_argument("--method", choices=sorted(_METHODS), default="hdx")
    p.add_argument("--lambda-cost", dest="lambda_cost", type=float, default=0.003)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--epochs", type=int, default=150)
    p.add_argument("--output", help="write result JSON here")
    _add_constraint_args(p)
    _add_platform_arg(p, default="eyeriss")
    _add_runtime_args(p)
    p.set_defaults(func=cmd_search)

    p = sub.add_parser("evaluate", help="re-check a saved result")
    p.add_argument("--result", required=True)
    _add_platform_arg(p, default=None)
    p.set_defaults(func=cmd_evaluate)

    p = sub.add_parser("report", help="per-layer mapping report of a saved result")
    p.add_argument("--result", required=True)
    _add_platform_arg(p, default=None)
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("hwsearch", help="exhaustive accelerator search for a fixed network")
    p.add_argument("--space", choices=("cifar10", "imagenet"), default="cifar10")
    p.add_argument("--indices", required=True, help="comma-separated choice indices")
    _add_constraint_args(p)
    _add_platform_arg(p, default="eyeriss")
    p.set_defaults(func=cmd_hwsearch)

    p = sub.add_parser("experiment", help="regenerate a paper table/figure")
    p.add_argument("--name", required=True,
                   choices=("fig1", "table1", "fig3", "table2", "fig4", "table3", "fig5"))
    _add_runtime_args(p)
    p.set_defaults(func=cmd_experiment)

    p = sub.add_parser("pretrain", help="warm the per-platform estimator caches")
    p.add_argument("--space", choices=("cifar10", "imagenet"), default="cifar10")
    p.add_argument(
        "--platforms", default=None, metavar="P1,P2",
        help="comma-separated platform names (default: all registered)",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="pre-train cache misses across N worker processes",
    )
    p.add_argument(
        "--n-samples", dest="n_samples", type=int, default=None,
        help="non-canonical dataset size (gets its own cache file)",
    )
    p.add_argument(
        "--epochs", type=int, default=None,
        help="non-canonical epoch count (gets its own cache file)",
    )
    p.set_defaults(func=cmd_pretrain)

    p = sub.add_parser("runs", help="inspect/maintain the run store")
    p.add_argument("action", choices=("ls", "gc", "invalidate"))
    p.add_argument("--store", default=None, metavar="DIR",
                   help="store directory (default: $REPRO_RUN_STORE or <cache>/runs)")
    p.add_argument("--key", default=None, help="key prefix to invalidate")
    p.add_argument("--all", action="store_true", help="invalidate every record")
    p.set_defaults(func=cmd_runs)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
