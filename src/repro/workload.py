"""Workload abstraction and registry.

The seed reproduction hard-coded two workloads as bare strings:
``"cifar10"``/``"imagenet"`` were matched across the cost
normalization table in :mod:`repro.core.coexplore`, the surrogate
calibration in :mod:`repro.surrogate.accuracy`, the space factories,
``serialize.py``, every experiment driver, and the CLI.  A
:class:`Workload` bundles everything the *software* side of a
co-exploration scenario owns — the symmetric counterpart of the
hardware-side :class:`~repro.accelerator.platform.Platform`:

* the **search space** — a :class:`~repro.arch.SearchSpace` factory
  (memoized per workload, so every consumer shares one space object);
* the **accuracy surrogate calibration** — error floor/spread,
  capacity midpoint, and the affine ``Loss_NAS`` map the
  :class:`~repro.surrogate.AccuracySurrogate` builds its landscape
  from;
* the **cost normalization** — the typical ``Cost_HW`` magnitude that
  keeps the paper's quoted ``lambda_cost`` range behaving consistently
  across workloads (this absorbs the old ``TYPICAL_COST`` table);
* the **training-data configuration** — synthetic-dataset noise/seed
  for full-fidelity supernet training (sizes and class counts come
  from the space itself);
* **default constraint presets** — named hard-constraint bounds the
  experiments and the campaign driver sweep.

What a workload does **not** own is anything hardware: design spaces,
energy/area models, and evaluators belong to the platform.  A search
run is the cross product (workload, platform) — the campaign driver
(:mod:`repro.experiments.campaign`) sweeps exactly that grid.

The two legacy workloads are registered from the same constants the
seed used, so every golden run key, estimator cache file, and pinned
search fixture reproduces bitwise; ``cifar100`` and ``speech`` are the
first additional workloads.  The workload name doubles as the search
space name (``Workload.space().name == Workload.name``) — that is the
invariant that lets run keys, estimator caches, and serialized results
identify the workload without a second field.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Union

from repro.arch.space import (
    SearchSpace,
    cifar100_space,
    cifar_space,
    imagenet_space,
    speech_space,
)

#: Name resolved when callers pass ``workload=None``.
DEFAULT_WORKLOAD = "cifar10"

#: Cost normalization is *relative*: every workload's typical Cost_HW
#: is divided out against this reference workload's, so the reference
#: itself has normalization exactly 1.0 (the legacy behaviour).
REFERENCE_WORKLOAD = "cifar10"

#: Keys every surrogate calibration mapping must provide (see
#: :class:`repro.surrogate.AccuracySurrogate` for their meaning).
CALIBRATION_KEYS = (
    "err_floor",
    "err_spread",
    "cap_frac",
    "cap_scale",
    "loss_scale",
    "loss_bias",
    "noise_std",
)

@dataclass(frozen=True)
class Workload:
    """One software-side scenario: space + surrogate + normalization."""

    name: str
    space_factory: Callable[[], SearchSpace]
    #: Typical Cost_HW magnitude of searched solutions in this space,
    #: used to normalize the cost term (the old ``TYPICAL_COST`` row).
    typical_cost: float
    #: Surrogate calibration (see :data:`CALIBRATION_KEYS`).
    calibration: Mapping[str, float]
    #: Named hard-constraint presets: ``{preset: {metric: bound}}``.
    #: Every workload must provide ``"default"``.
    constraint_presets: Mapping[str, Mapping[str, float]] = field(
        default_factory=dict
    )
    #: Synthetic training-data knobs for full-fidelity supernet runs
    #: (class count and image size come from the space).
    train_noise: float = 0.6
    train_seed: int = 0
    description: str = ""

    def __post_init__(self) -> None:
        if self.typical_cost <= 0:
            raise ValueError(
                f"workload {self.name!r}: typical_cost must be positive, "
                f"got {self.typical_cost}"
            )
        missing = [k for k in CALIBRATION_KEYS if k not in self.calibration]
        if missing:
            raise ValueError(
                f"workload {self.name!r}: calibration missing {missing}"
            )
        if "default" not in self.constraint_presets:
            raise ValueError(
                f"workload {self.name!r} must define a 'default' constraint "
                f"preset (the campaign driver and CLI rely on it)"
            )

    # ------------------------------------------------------------------
    # Search space
    # ------------------------------------------------------------------
    def space(self) -> SearchSpace:
        """The workload's memoized search space.

        The factory must produce a space named after the workload —
        that name is what run keys, estimator caches, and serialized
        results use to find their way back to this registry entry.
        Memoization is per *instance* (not per name), so replacing a
        registered workload serves the replacement's own space and two
        same-named Workload objects can never alias each other's.
        """
        cached = getattr(self, "_space", None)
        if cached is None:
            cached = self.space_factory()
            if cached.name != self.name:
                raise ValueError(
                    f"workload {self.name!r}: space factory produced a space "
                    f"named {cached.name!r}; the names must match"
                )
            object.__setattr__(self, "_space", cached)
        return cached

    # ------------------------------------------------------------------
    # Cost normalization (absorbs the old TYPICAL_COST table)
    # ------------------------------------------------------------------
    def cost_normalization(self) -> float:
        """``reference_typical_cost / typical_cost`` — the factor the
        engines multiply into ``lambda_cost`` so one lambda range spans
        loss-dominated to cost-dominated search on every workload."""
        return get_workload(REFERENCE_WORKLOAD).typical_cost / self.typical_cost

    # ------------------------------------------------------------------
    # Surrogate / training data
    # ------------------------------------------------------------------
    def surrogate(
        self,
        seed: int = 0,
        landscape_jitter: float = 0.0,
        jitter_seed: int = 0,
    ):
        """An :class:`~repro.surrogate.AccuracySurrogate` over this
        workload's space (canonical when called with defaults)."""
        from repro.surrogate import AccuracySurrogate

        return AccuracySurrogate(
            self.space(),
            seed=seed,
            landscape_jitter=landscape_jitter,
            jitter_seed=jitter_seed,
        )

    def dataset(self, n_samples: int = 2000, size: Optional[int] = None, seed: Optional[int] = None):
        """Synthetic training data for full-fidelity supernet search.

        Defaults reproduce the legacy per-workload generators bitwise
        (``cifar10_like``/``imagenet_like``): the class count comes
        from the space, the default image size is the space's training
        resolution, and noise/seed are workload constants.
        """
        from repro.data.synthetic import synthetic_dataset

        space = self.space()
        return synthetic_dataset(
            n_samples=n_samples,
            num_classes=space.num_classes,
            size=size if size is not None else space.train_input_size,
            noise=self.train_noise,
            seed=self.train_seed if seed is None else seed,
            name=f"{self.name}-like",
        )

    # ------------------------------------------------------------------
    # Constraint presets
    # ------------------------------------------------------------------
    def preset_names(self) -> List[str]:
        return sorted(self.constraint_presets)

    def constraint_preset(self, preset: str = "default"):
        """A named preset as a :class:`~repro.core.ConstraintSet`."""
        from repro.core.constraints import ConstraintSet

        try:
            bounds = self.constraint_presets[preset]
        except KeyError:
            raise ValueError(
                f"workload {self.name!r} has no constraint preset {preset!r}; "
                f"available: {self.preset_names()}"
            ) from None
        return ConstraintSet.from_dict(dict(bounds))

    def __str__(self) -> str:
        space = self.space()
        return (
            f"{self.name}: {space.num_layers} layers, "
            f"{space.num_classes} classes @ {space.input_size}px, "
            f"typical Cost_HW {self.typical_cost:g}"
        )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, Workload] = {}


def register_workload(workload: Workload, replace: bool = False) -> Workload:
    """Add a workload to the registry; duplicate names raise."""
    if workload.name in _REGISTRY and not replace:
        raise ValueError(
            f"workload {workload.name!r} is already registered "
            f"(pass replace=True to override)"
        )
    _REGISTRY[workload.name] = workload
    return workload


def unregister_workload(name: str) -> None:
    """Remove a registered workload (test hygiene; no-op if absent)."""
    _REGISTRY.pop(name, None)


def get_workload(name: str) -> Workload:
    """Look a workload up by name; unknown names raise with the options."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unregistered workload {name!r}; registered workloads: "
            f"{available_workloads()} (add new ones via "
            f"repro.workload.register_workload)"
        ) from None


def available_workloads() -> List[str]:
    """Sorted names of all registered workloads."""
    return sorted(_REGISTRY)


def as_workload(workload: Union[Workload, SearchSpace, str, None]) -> Workload:
    """Resolve ``None`` (default), a name, a space, or a Workload."""
    if workload is None:
        return get_workload(DEFAULT_WORKLOAD)
    if isinstance(workload, Workload):
        return workload
    if isinstance(workload, SearchSpace):
        return get_workload(workload.name)
    return get_workload(workload)


def workload_calibration(name: str) -> Mapping[str, float]:
    """The surrogate calibration of a registered workload (clear
    unregistered-workload error instead of a silent fallback)."""
    return get_workload(name).calibration


def cost_normalization(name: str) -> float:
    """Per-workload cost-term normalization (see
    :meth:`Workload.cost_normalization`)."""
    return get_workload(name).cost_normalization()


# ----------------------------------------------------------------------
# Built-in workloads
# ----------------------------------------------------------------------
#: The paper's CIFAR-10 scenario, from the seed's constants: the same
#: 18-layer space, the calibration that lands errors in the ~4-8% band
#: and Loss_NAS around 0.62-0.65, and typical Cost_HW 8.0 (the old
#: ``TYPICAL_COST["cifar10"]``) — bitwise-identical behaviour.
CIFAR10 = register_workload(
    Workload(
        name="cifar10",
        space_factory=cifar_space,
        typical_cost=8.0,
        calibration=dict(
            err_floor=3.8, err_spread=4.5, cap_frac=0.55, cap_scale=0.18,
            loss_scale=0.145, loss_bias=0.03, noise_std=0.10,
        ),
        constraint_presets={
            "default": {"latency": 33.3},  # 30 FPS
            "strict": {"latency": 16.6},   # 60 FPS (the paper's headline)
        },
        train_noise=0.6,
        train_seed=0,
        description="18-layer CIFAR-10 space (paper Sec. 4.4)",
    )
)

#: The paper's ImageNet scenario (offline-scale stand-in): 21 layers,
#: errors in the ~24-30% band, typical Cost_HW 30.0 (the old
#: ``TYPICAL_COST["imagenet"]``).
IMAGENET = register_workload(
    Workload(
        name="imagenet",
        space_factory=imagenet_space,
        typical_cost=30.0,
        calibration=dict(
            err_floor=23.8, err_spread=10.0, cap_frac=0.55, cap_scale=0.18,
            loss_scale=0.080, loss_bias=0.00, noise_std=0.15,
        ),
        constraint_presets={
            "default": {"latency": 125.0},  # the paper's Table 3 bound
            "strict": {"latency": 100.0},
        },
        train_noise=0.7,
        train_seed=1,
        description="21-layer ImageNet space (paper Sec. 4.4)",
    )
)

#: CIFAR-100-scale fine-grained classification: deeper/wider than the
#: CIFAR-10 space, error band ~20-30%, noticeably costlier networks.
#: Typical Cost_HW picked the same way the legacy values were — a
#: round number slightly below the random-sample mean (~14 on eyeriss),
#: where searched solutions land.
CIFAR100 = register_workload(
    Workload(
        name="cifar100",
        space_factory=cifar100_space,
        typical_cost=12.0,
        calibration=dict(
            err_floor=19.5, err_spread=11.0, cap_frac=0.55, cap_scale=0.18,
            loss_scale=0.085, loss_bias=0.02, noise_std=0.15,
        ),
        constraint_presets={
            "default": {"latency": 40.0},
            "strict": {"latency": 25.0},
        },
        train_noise=0.65,
        train_seed=2,
        description="20-layer CIFAR-100-scale space (first new workload)",
    )
)

#: Always-on keyword spotting / edge vision: small 24x24 inputs, 12
#: classes, a shallow narrow 12-layer layout.  Costs are an order of
#: magnitude below CIFAR (random-sample mean ~3.3 on eyeriss), so its
#: normalization amplifies the cost term accordingly.
SPEECH = register_workload(
    Workload(
        name="speech",
        space_factory=speech_space,
        typical_cost=2.5,
        calibration=dict(
            err_floor=4.5, err_spread=5.5, cap_frac=0.50, cap_scale=0.20,
            loss_scale=0.16, loss_bias=0.02, noise_std=0.08,
        ),
        constraint_presets={
            "default": {"latency": 4.0},
            "strict": {"latency": 2.5},
        },
        train_noise=0.5,
        train_seed=3,
        description="12-layer small-input keyword-spotting space",
    )
)
