"""Thin method wrappers around the co-exploration engine.

Each method is just a :class:`SearchConfig` shape; the ``*_config``
factories are the single source of truth, shared by the one-shot
``run_*`` wrappers and by manifest-building callers (experiments, the
meta-search) that collect many configs at once.  Both paths dispatch
through the runtime scheduler (:func:`repro.runtime.dispatch_many`),
so even a single wrapped search is deduped against the run store and
obeys the active jobs/store context.
"""

from __future__ import annotations

from typing import Optional

from repro.accelerator import cost_hw, exhaustive_search
from repro.arch import SearchSpace
from repro.core import ConstraintSet, SearchConfig, SearchResult
from repro.estimator import CostEstimator
from repro.runtime import dispatch_many
from repro.surrogate import AccuracySurrogate

#: GPU-hours per search, matching the per-search costs implied by the
#: paper's Table 1 (cost / #searches).  Used by the meta-search to
#: report the "Cost" column.
GPU_HOURS_PER_SEARCH = {
    "NAS->HW": 2.18,
    "Auto-NBA": 1.50,
    "DANCE": 1.85,
    "DANCE+Soft": 1.86,
    "HDX": 2.00,
}


# ----------------------------------------------------------------------
# SearchConfig factories (one per method)
# ----------------------------------------------------------------------
def hdx_config(
    constraints: ConstraintSet,
    lambda_cost: float = 0.003,
    seed: int = 0,
    p: float = 1e-2,
    **overrides,
) -> SearchConfig:
    """The proposed hard-constrained co-exploration."""
    return SearchConfig(
        lambda_cost=lambda_cost,
        constraints=constraints,
        hard_constraints=True,
        p=p,
        seed=seed,
        method_name="HDX",
        **overrides,
    )


def dance_config(
    lambda_cost: float = 0.003,
    seed: int = 0,
    constraints: Optional[ConstraintSet] = None,
    **overrides,
) -> SearchConfig:
    """DANCE: co-exploration without hard constraints.

    ``constraints`` (if given) are only used for reporting whether the
    found solution happens to satisfy them.
    """
    return SearchConfig(
        lambda_cost=lambda_cost,
        constraints=constraints or ConstraintSet(),
        hard_constraints=False,
        seed=seed,
        method_name="DANCE",
        **overrides,
    )


def dance_soft_config(
    constraints: ConstraintSet,
    soft_lambda: float = 0.5,
    lambda_cost: float = 0.003,
    seed: int = 0,
    **overrides,
) -> SearchConfig:
    """DANCE + soft constraint term ``lambda_soft * max(t/T - 1, 0)``."""
    return SearchConfig(
        lambda_cost=lambda_cost,
        constraints=constraints,
        hard_constraints=False,
        soft_lambda=soft_lambda,
        seed=seed,
        method_name="DANCE+Soft",
        **overrides,
    )


def autonba_config(
    lambda_cost: float = 0.003,
    seed: int = 0,
    constraints: Optional[ConstraintSet] = None,
    soft_lambda: float = 0.0,
    **overrides,
) -> SearchConfig:
    """Auto-NBA-style search: hardware parameters trained directly."""
    return SearchConfig(
        lambda_cost=lambda_cost,
        constraints=constraints or ConstraintSet(),
        hard_constraints=False,
        soft_lambda=soft_lambda,
        use_generator=False,
        seed=seed,
        method_name="Auto-NBA",
        **overrides,
    )


def nas_then_hw_config(
    size_penalty_lambda: float = 0.0,
    seed: int = 0,
    constraints: Optional[ConstraintSet] = None,
    **overrides,
) -> SearchConfig:
    """The NAS phase of NAS->HW (exhaustive HW search happens after)."""
    return SearchConfig(
        include_cost_term=False,
        hard_constraints=False,
        size_penalty_lambda=size_penalty_lambda,
        constraints=constraints or ConstraintSet(),
        seed=seed,
        method_name="NAS->HW",
        **overrides,
    )


def finalize_nas_then_hw(
    result: SearchResult, constraints: Optional[ConstraintSet]
) -> SearchResult:
    """The hardware phase of NAS->HW: brute-force the design space.

    The paper runs Timeloop exhaustively after a plain NAS; feasible
    configurations are preferred when the constraints admit any.
    Shared by the scalar wrapper and the fleet-batched meta-search.
    """
    bounds = {c.metric: c.bound for c in (constraints or ConstraintSet())}
    hw_config, metrics = exhaustive_search(
        result.arch,
        objective=cost_hw,
        constraints=bounds or None,
        platform=result.platform,
    )
    return SearchResult(
        arch=result.arch,
        config=hw_config,
        metrics=metrics,
        error_percent=result.error_percent,
        loss_nas=result.loss_nas,
        cost=cost_hw(metrics),
        constraints=constraints or ConstraintSet(),
        in_constraint=(constraints or ConstraintSet()).all_satisfied(metrics),
        history=result.history,
        method="NAS->HW",
        platform=result.platform,
    )


# ----------------------------------------------------------------------
# Scalar one-shot wrappers
# ----------------------------------------------------------------------
def run_hdx(
    space: SearchSpace,
    estimator: CostEstimator,
    constraints: ConstraintSet,
    lambda_cost: float = 0.003,
    seed: int = 0,
    p: float = 1e-2,
    surrogate: Optional[AccuracySurrogate] = None,
    **overrides,
) -> SearchResult:
    """The proposed hard-constrained co-exploration."""
    config = hdx_config(constraints, lambda_cost=lambda_cost, seed=seed, p=p, **overrides)
    return dispatch_many(space, [config], estimator=estimator, surrogate=surrogate)[0]


def run_dance(
    space: SearchSpace,
    estimator: CostEstimator,
    lambda_cost: float = 0.003,
    seed: int = 0,
    constraints: Optional[ConstraintSet] = None,
    surrogate: Optional[AccuracySurrogate] = None,
    **overrides,
) -> SearchResult:
    """DANCE: co-exploration without hard constraints."""
    config = dance_config(
        lambda_cost=lambda_cost, seed=seed, constraints=constraints, **overrides
    )
    return dispatch_many(space, [config], estimator=estimator, surrogate=surrogate)[0]


def run_dance_soft(
    space: SearchSpace,
    estimator: CostEstimator,
    constraints: ConstraintSet,
    soft_lambda: float = 0.5,
    lambda_cost: float = 0.003,
    seed: int = 0,
    surrogate: Optional[AccuracySurrogate] = None,
    **overrides,
) -> SearchResult:
    """DANCE + soft constraint term ``lambda_soft * max(t/T - 1, 0)``."""
    config = dance_soft_config(
        constraints,
        soft_lambda=soft_lambda,
        lambda_cost=lambda_cost,
        seed=seed,
        **overrides,
    )
    return dispatch_many(space, [config], estimator=estimator, surrogate=surrogate)[0]


def run_autonba(
    space: SearchSpace,
    estimator: CostEstimator,
    lambda_cost: float = 0.003,
    seed: int = 0,
    constraints: Optional[ConstraintSet] = None,
    soft_lambda: float = 0.0,
    surrogate: Optional[AccuracySurrogate] = None,
    **overrides,
) -> SearchResult:
    """Auto-NBA-style search: hardware parameters trained directly.

    The hardware/DNN relation is a differentiable lookup (the frozen
    estimator) and beta is a free parameter rather than a generator
    output.
    """
    config = autonba_config(
        lambda_cost=lambda_cost,
        seed=seed,
        constraints=constraints,
        soft_lambda=soft_lambda,
        **overrides,
    )
    return dispatch_many(space, [config], estimator=estimator, surrogate=surrogate)[0]


def run_nas_then_hw(
    space: SearchSpace,
    estimator: CostEstimator,
    size_penalty_lambda: float = 0.0,
    seed: int = 0,
    constraints: Optional[ConstraintSet] = None,
    surrogate: Optional[AccuracySurrogate] = None,
    **overrides,
) -> SearchResult:
    """Plain NAS, then exhaustive accelerator search.

    The NAS phase optionally carries a differentiable size penalty
    (the control parameter the meta-search tunes); the hardware phase
    brute-forces the full design space against Cost_HW, preferring
    configurations satisfying the constraints when any exist.
    """
    config = nas_then_hw_config(
        size_penalty_lambda=size_penalty_lambda,
        seed=seed,
        constraints=constraints,
        **overrides,
    )
    result = dispatch_many(space, [config], estimator=estimator, surrogate=surrogate)[0]
    return finalize_nas_then_hw(result, constraints)
