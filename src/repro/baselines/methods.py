"""Thin method wrappers around the co-exploration engine.

Each method is just a :class:`SearchConfig` shape; the ``*_config``
factories are the single source of truth, shared by the one-shot
``run_*`` wrappers and by manifest-building callers (experiments, the
meta-search) that collect many configs at once.  Both paths dispatch
through the runtime scheduler (:func:`repro.runtime.dispatch_many`),
so even a single wrapped search is deduped against the run store and
obeys the active jobs/store context.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.accelerator import cost_hw, exhaustive_search
from repro.arch import SearchSpace
from repro.core import ConstraintSet, SearchConfig, SearchResult
from repro.estimator import CostEstimator
from repro.runtime import dispatch_many
from repro.surrogate import AccuracySurrogate


@dataclass(frozen=True)
class MethodInfo:
    """Static metadata of one co-exploration method.

    The single source of truth for everything the drivers used to
    duplicate: the Table 1 traits columns, the per-search GPU-hour
    costs (paper Table 1: cost / #searches), the CLI spelling, and
    whether the method needs the exhaustive hardware phase after the
    NAS phase.  The campaign report and the meta-search read from
    here; keep display order = registration order (the paper's).
    """

    name: str  # canonical display name ("DANCE+Soft")
    cli_name: str  # CLI / manifest spelling ("dance-soft")
    gpu_hours_per_search: float
    hard_constraint: bool  # Table 1 "HardConst" column
    nn_hw_relation: bool  # Table 1 "NN-HW rel" column
    needs_hw_phase: bool = False  # exhaustive HW search after the NAS phase


#: Canonical-name index, in the paper's Table 1 order.
METHODS: Dict[str, MethodInfo] = {
    info.name: info
    for info in (
        MethodInfo("NAS->HW", "nas-hw", 2.18, False, False, needs_hw_phase=True),
        MethodInfo("Auto-NBA", "auto-nba", 1.50, False, True),
        MethodInfo("DANCE", "dance", 1.85, False, True),
        MethodInfo("DANCE+Soft", "dance-soft", 1.86, False, True),
        MethodInfo("HDX", "hdx", 2.00, True, True),
    )
}


def method_info(name: str) -> MethodInfo:
    """Look a method up by canonical or CLI name."""
    if name in METHODS:
        return METHODS[name]
    for info in METHODS.values():
        if info.cli_name == name:
            return info
    raise ValueError(
        f"unknown method {name!r}; known: {sorted(METHODS)} "
        f"(CLI names: {sorted(m.cli_name for m in METHODS.values())})"
    )


#: Legacy view of :data:`METHODS` (kept for existing callers; derived,
#: never edited directly).
GPU_HOURS_PER_SEARCH = {
    name: info.gpu_hours_per_search for name, info in METHODS.items()
}


# ----------------------------------------------------------------------
# SearchConfig factories (one per method)
# ----------------------------------------------------------------------
def hdx_config(
    constraints: ConstraintSet,
    lambda_cost: float = 0.003,
    seed: int = 0,
    p: float = 1e-2,
    **overrides,
) -> SearchConfig:
    """The proposed hard-constrained co-exploration."""
    return SearchConfig(
        lambda_cost=lambda_cost,
        constraints=constraints,
        hard_constraints=True,
        p=p,
        seed=seed,
        method_name="HDX",
        **overrides,
    )


def dance_config(
    lambda_cost: float = 0.003,
    seed: int = 0,
    constraints: Optional[ConstraintSet] = None,
    **overrides,
) -> SearchConfig:
    """DANCE: co-exploration without hard constraints.

    ``constraints`` (if given) are only used for reporting whether the
    found solution happens to satisfy them.
    """
    return SearchConfig(
        lambda_cost=lambda_cost,
        constraints=constraints or ConstraintSet(),
        hard_constraints=False,
        seed=seed,
        method_name="DANCE",
        **overrides,
    )


def dance_soft_config(
    constraints: ConstraintSet,
    soft_lambda: float = 0.5,
    lambda_cost: float = 0.003,
    seed: int = 0,
    **overrides,
) -> SearchConfig:
    """DANCE + soft constraint term ``lambda_soft * max(t/T - 1, 0)``."""
    return SearchConfig(
        lambda_cost=lambda_cost,
        constraints=constraints,
        hard_constraints=False,
        soft_lambda=soft_lambda,
        seed=seed,
        method_name="DANCE+Soft",
        **overrides,
    )


def autonba_config(
    lambda_cost: float = 0.003,
    seed: int = 0,
    constraints: Optional[ConstraintSet] = None,
    soft_lambda: float = 0.0,
    **overrides,
) -> SearchConfig:
    """Auto-NBA-style search: hardware parameters trained directly."""
    return SearchConfig(
        lambda_cost=lambda_cost,
        constraints=constraints or ConstraintSet(),
        hard_constraints=False,
        soft_lambda=soft_lambda,
        use_generator=False,
        seed=seed,
        method_name="Auto-NBA",
        **overrides,
    )


def nas_then_hw_config(
    size_penalty_lambda: float = 0.0,
    seed: int = 0,
    constraints: Optional[ConstraintSet] = None,
    **overrides,
) -> SearchConfig:
    """The NAS phase of NAS->HW (exhaustive HW search happens after)."""
    return SearchConfig(
        include_cost_term=False,
        hard_constraints=False,
        size_penalty_lambda=size_penalty_lambda,
        constraints=constraints or ConstraintSet(),
        seed=seed,
        method_name="NAS->HW",
        **overrides,
    )


def finalize_nas_then_hw(
    result: SearchResult, constraints: Optional[ConstraintSet]
) -> SearchResult:
    """The hardware phase of NAS->HW: brute-force the design space.

    The paper runs Timeloop exhaustively after a plain NAS; feasible
    configurations are preferred when the constraints admit any.
    Shared by the scalar wrapper and the fleet-batched meta-search.
    """
    bounds = {c.metric: c.bound for c in (constraints or ConstraintSet())}
    hw_config, metrics = exhaustive_search(
        result.arch,
        objective=cost_hw,
        constraints=bounds or None,
        platform=result.platform,
    )
    return SearchResult(
        arch=result.arch,
        config=hw_config,
        metrics=metrics,
        error_percent=result.error_percent,
        loss_nas=result.loss_nas,
        cost=cost_hw(metrics),
        constraints=constraints or ConstraintSet(),
        in_constraint=(constraints or ConstraintSet()).all_satisfied(metrics),
        history=result.history,
        method="NAS->HW",
        platform=result.platform,
    )


def config_for_method(
    method: str,
    constraints: ConstraintSet,
    lambda_cost: float = 0.003,
    seed: int = 0,
    **overrides,
) -> SearchConfig:
    """One search config of a named method (canonical or CLI name).

    The manifest-building entry point the campaign driver uses: every
    method's factory is reachable through one call with a uniform
    signature.  For soft/penalty methods the control parameter stays at
    its factory default — campaigns compare methods at fixed controls;
    tuning is the meta-search's job (Table 1).
    """
    info = method_info(method)
    if info.name == "HDX":
        return hdx_config(constraints, lambda_cost=lambda_cost, seed=seed, **overrides)
    if info.name == "DANCE":
        return dance_config(
            lambda_cost=lambda_cost, seed=seed, constraints=constraints, **overrides
        )
    if info.name == "DANCE+Soft":
        return dance_soft_config(
            constraints, lambda_cost=lambda_cost, seed=seed, **overrides
        )
    if info.name == "Auto-NBA":
        return autonba_config(
            lambda_cost=lambda_cost, seed=seed, constraints=constraints, **overrides
        )
    if info.name == "NAS->HW":
        # The NAS phase config; callers must follow up with
        # finalize_nas_then_hw (see MethodInfo.needs_hw_phase).
        return nas_then_hw_config(seed=seed, constraints=constraints, **overrides)
    raise ValueError(
        f"method {info.name!r} is registered in METHODS but has no config "
        f"factory branch here; teach config_for_method about it"
    )


# ----------------------------------------------------------------------
# Scalar one-shot wrappers
# ----------------------------------------------------------------------
def run_hdx(
    space: SearchSpace,
    estimator: CostEstimator,
    constraints: ConstraintSet,
    lambda_cost: float = 0.003,
    seed: int = 0,
    p: float = 1e-2,
    surrogate: Optional[AccuracySurrogate] = None,
    **overrides,
) -> SearchResult:
    """The proposed hard-constrained co-exploration."""
    config = hdx_config(constraints, lambda_cost=lambda_cost, seed=seed, p=p, **overrides)
    return dispatch_many(space, [config], estimator=estimator, surrogate=surrogate)[0]


def run_dance(
    space: SearchSpace,
    estimator: CostEstimator,
    lambda_cost: float = 0.003,
    seed: int = 0,
    constraints: Optional[ConstraintSet] = None,
    surrogate: Optional[AccuracySurrogate] = None,
    **overrides,
) -> SearchResult:
    """DANCE: co-exploration without hard constraints."""
    config = dance_config(
        lambda_cost=lambda_cost, seed=seed, constraints=constraints, **overrides
    )
    return dispatch_many(space, [config], estimator=estimator, surrogate=surrogate)[0]


def run_dance_soft(
    space: SearchSpace,
    estimator: CostEstimator,
    constraints: ConstraintSet,
    soft_lambda: float = 0.5,
    lambda_cost: float = 0.003,
    seed: int = 0,
    surrogate: Optional[AccuracySurrogate] = None,
    **overrides,
) -> SearchResult:
    """DANCE + soft constraint term ``lambda_soft * max(t/T - 1, 0)``."""
    config = dance_soft_config(
        constraints,
        soft_lambda=soft_lambda,
        lambda_cost=lambda_cost,
        seed=seed,
        **overrides,
    )
    return dispatch_many(space, [config], estimator=estimator, surrogate=surrogate)[0]


def run_autonba(
    space: SearchSpace,
    estimator: CostEstimator,
    lambda_cost: float = 0.003,
    seed: int = 0,
    constraints: Optional[ConstraintSet] = None,
    soft_lambda: float = 0.0,
    surrogate: Optional[AccuracySurrogate] = None,
    **overrides,
) -> SearchResult:
    """Auto-NBA-style search: hardware parameters trained directly.

    The hardware/DNN relation is a differentiable lookup (the frozen
    estimator) and beta is a free parameter rather than a generator
    output.
    """
    config = autonba_config(
        lambda_cost=lambda_cost,
        seed=seed,
        constraints=constraints,
        soft_lambda=soft_lambda,
        **overrides,
    )
    return dispatch_many(space, [config], estimator=estimator, surrogate=surrogate)[0]


def run_nas_then_hw(
    space: SearchSpace,
    estimator: CostEstimator,
    size_penalty_lambda: float = 0.0,
    seed: int = 0,
    constraints: Optional[ConstraintSet] = None,
    surrogate: Optional[AccuracySurrogate] = None,
    **overrides,
) -> SearchResult:
    """Plain NAS, then exhaustive accelerator search.

    The NAS phase optionally carries a differentiable size penalty
    (the control parameter the meta-search tunes); the hardware phase
    brute-forces the full design space against Cost_HW, preferring
    configurations satisfying the constraints when any exist.
    """
    config = nas_then_hw_config(
        size_penalty_lambda=size_penalty_lambda,
        seed=seed,
        constraints=constraints,
        **overrides,
    )
    result = dispatch_many(space, [config], estimator=estimator, surrogate=surrogate)[0]
    return finalize_nas_then_hw(result, constraints)
