"""Baseline co-exploration methods and the lambda-tuning meta-search.

The baselines mirror the paper's Table 1 / Fig. 3 comparison set:

* :func:`run_nas_then_hw` — plain differentiable NAS followed by an
  exhaustive Timeloop-style hardware search;
* :func:`run_dance` — DANCE (differentiable co-exploration, generator +
  estimator, no hard constraints);
* :func:`run_dance_soft` — DANCE plus the TF-NAS-style soft penalty;
* :func:`run_autonba` — Auto-NBA-style joint search with directly
  trainable hardware parameters instead of a generator network;
* :func:`run_hdx` — the proposed method.

:class:`MetaSearch` implements Sec. 5.2's control-parameter tuning
algorithm that unconstrained methods need in order to hit a hard
constraint (double until feasible, then binary-search down when the
solution over-shoots below 50% of the target).
"""

from repro.baselines.methods import (
    GPU_HOURS_PER_SEARCH,
    METHODS,
    MethodInfo,
    autonba_config,
    config_for_method,
    dance_config,
    dance_soft_config,
    finalize_nas_then_hw,
    hdx_config,
    method_info,
    nas_then_hw_config,
    run_autonba,
    run_dance,
    run_dance_soft,
    run_hdx,
    run_nas_then_hw,
)
from repro.baselines.meta_search import MetaSearch, MetaSearchResult

__all__ = [
    "METHODS",
    "MethodInfo",
    "method_info",
    "config_for_method",
    "run_nas_then_hw",
    "run_dance",
    "run_dance_soft",
    "run_autonba",
    "run_hdx",
    "nas_then_hw_config",
    "dance_config",
    "dance_soft_config",
    "autonba_config",
    "hdx_config",
    "finalize_nas_then_hw",
    "GPU_HOURS_PER_SEARCH",
    "MetaSearch",
    "MetaSearchResult",
]
