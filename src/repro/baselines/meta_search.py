"""The control-parameter tuning meta-algorithm of Sec. 5.2.

Unconstrained co-exploration methods cannot target a hard constraint
directly; a designer must repeatedly re-search while tuning a control
parameter (lambda_soft, lambda_cost, or a size penalty).  The paper
formalizes the designer's procedure as a binary-search-like loop and
charges each method the number of searches (and GPU-hours) it needs
until the constrained metric lands in [50%, 100%] of the target.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.core import ConstraintSet, SearchResult
from repro.baselines.methods import GPU_HOURS_PER_SEARCH

#: Accept solutions whose constrained metric is within this fraction of
#: the target from below (paper: "criteria of having a solution of
#: 50%~100% of the target constraint").
LOWER_ACCEPT_FRACTION = 0.5

#: Safety cap: a designer gives up after this many searches.
MAX_SEARCHES = 12


@dataclass
class MetaSearchResult:
    """Outcome of the tune-and-repeat procedure for one method."""

    method: str
    n_searches: int
    gpu_hours: float
    final: SearchResult
    accepted: bool
    control_values: List[float] = field(default_factory=list)

    @property
    def final_error(self) -> float:
        return self.final.error_percent


class MetaSearch:
    """Binary-search-like tuning of a method's control parameter.

    ``search_fn(control_value, seed) -> SearchResult`` runs one search
    of the underlying method.  ``metric`` names the constrained metric;
    ``target`` is the hard bound the designer must hit.  Increasing the
    control value must (stochastically) push the metric down — the
    procedure doubles it while infeasible and shrinks binary-search
    style when the solution lands below 50% of the target.
    """

    def __init__(
        self,
        method: str,
        search_fn: Callable[[float, int], SearchResult],
        metric: str,
        target: float,
        initial_control: float,
        max_searches: int = MAX_SEARCHES,
    ) -> None:
        if target <= 0:
            raise ValueError("target must be positive")
        if initial_control <= 0:
            raise ValueError("initial control value must be positive")
        self.method = method
        self.search_fn = search_fn
        self.metric = metric
        self.target = target
        self.initial_control = initial_control
        self.max_searches = max_searches

    def _accept(self, value: float) -> bool:
        return LOWER_ACCEPT_FRACTION * self.target <= value <= self.target

    def run(self, seed: int = 0) -> MetaSearchResult:
        """Execute the tuning loop; each inner search gets a fresh seed
        (a designer re-runs, they do not replay)."""
        control = self.initial_control
        lo: Optional[float] = None  # highest control known to overshoot low
        hi: Optional[float] = None  # control known to still violate
        n = 0
        controls: List[float] = []
        result: Optional[SearchResult] = None
        best: Optional[SearchResult] = None

        while n < self.max_searches:
            controls.append(control)
            result = self.search_fn(control, seed * 1000 + n)
            n += 1
            value = result.metrics.metric(self.metric)
            if self._accept(value):
                best = result
                break
            if best is None or self._distance(value) < self._distance(
                best.metrics.metric(self.metric)
            ):
                best = result
            if value > self.target:
                # Still violating: strengthen the control parameter.
                hi = control
                control = control * 2.0 if lo is None else 0.5 * (control + lo)
            else:
                # Overshot below 50% of target: weaken it.
                lo = control
                control = control * 0.5 if hi is None else 0.5 * (control + hi)
        assert best is not None
        accepted = self._accept(best.metrics.metric(self.metric))
        per_search = GPU_HOURS_PER_SEARCH.get(self.method, 1.85)
        return MetaSearchResult(
            method=self.method,
            n_searches=n,
            gpu_hours=n * per_search,
            final=best,
            accepted=accepted,
            control_values=controls,
        )

    def _distance(self, value: float) -> float:
        """Distance from the acceptance band, for keeping the best try."""
        low = LOWER_ACCEPT_FRACTION * self.target
        if value > self.target:
            return value - self.target
        if value < low:
            return low - value
        return 0.0
