"""The control-parameter tuning meta-algorithm of Sec. 5.2.

Unconstrained co-exploration methods cannot target a hard constraint
directly; a designer must repeatedly re-search while tuning a control
parameter (lambda_soft, lambda_cost, or a size penalty).  The paper
formalizes the designer's procedure as a binary-search-like loop and
charges each method the number of searches (and GPU-hours) it needs
until the constrained metric lands in [50%, 100%] of the target.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core import ConstraintSet, SearchResult
from repro.baselines.methods import method_info

#: Accept solutions whose constrained metric is within this fraction of
#: the target from below (paper: "criteria of having a solution of
#: 50%~100% of the target constraint").
LOWER_ACCEPT_FRACTION = 0.5

#: Safety cap: a designer gives up after this many searches.
MAX_SEARCHES = 12


@dataclass
class MetaSearchResult:
    """Outcome of the tune-and-repeat procedure for one method."""

    method: str
    n_searches: int
    gpu_hours: float
    final: SearchResult
    accepted: bool
    control_values: List[float] = field(default_factory=list)

    @property
    def final_error(self) -> float:
        return self.final.error_percent


class MetaSearch:
    """Binary-search-like tuning of a method's control parameter.

    ``search_fn(control_value, seed) -> SearchResult`` runs one search
    of the underlying method.  ``metric`` names the constrained metric;
    ``target`` is the hard bound the designer must hit.  Increasing the
    control value must (stochastically) push the metric down — the
    procedure doubles it while infeasible and shrinks binary-search
    style when the solution lands below 50% of the target.
    """

    def __init__(
        self,
        method: str,
        search_fn: Callable[[float, int], SearchResult],
        metric: str,
        target: float,
        initial_control: float,
        max_searches: int = MAX_SEARCHES,
    ) -> None:
        if target <= 0:
            raise ValueError("target must be positive")
        if initial_control <= 0:
            raise ValueError("initial control value must be positive")
        self.method = method
        self.search_fn = search_fn
        self.metric = metric
        self.target = target
        self.initial_control = initial_control
        self.max_searches = max_searches

    def _accept(self, value: float) -> bool:
        return LOWER_ACCEPT_FRACTION * self.target <= value <= self.target

    def run(self, seed: int = 0) -> MetaSearchResult:
        """Execute the tuning loop; each inner search gets a fresh seed
        (a designer re-runs, they do not replay)."""
        state = _TunerState(self, seed)
        while not state.done:
            control, inner_seed = state.next_request()
            state.observe(self.search_fn(control, inner_seed))
        return state.result()

    def run_many(
        self,
        seeds: Sequence[int],
        batch_search_fn: Callable[[List[Tuple[float, int]]], List[SearchResult]],
    ) -> List[MetaSearchResult]:
        """Run one meta-search per seed, batching searches in rounds.

        Each designer's loop is sequential (the next control value
        depends on the previous search), but the K loops are mutually
        independent — so round ``r`` gathers the r-th pending
        ``(control, seed)`` request of every still-active loop and
        dispatches them together through ``batch_search_fn`` (typically
        a :func:`repro.core.run_many` fleet).  Control trajectories and
        final results are identical to calling :meth:`run` per seed as
        long as ``batch_search_fn`` matches ``search_fn`` seed for seed.
        """
        states = [_TunerState(self, seed) for seed in seeds]
        while True:
            active = [state for state in states if not state.done]
            if not active:
                break
            requests = [state.next_request() for state in active]
            results = batch_search_fn(requests)
            for state, result in zip(active, results):
                state.observe(result)
        return [state.result() for state in states]

    def _distance(self, value: float) -> float:
        """Distance from the acceptance band, for keeping the best try."""
        low = LOWER_ACCEPT_FRACTION * self.target
        if value > self.target:
            return value - self.target
        if value < low:
            return low - value
        return 0.0


class _TunerState:
    """One designer's tuning loop, advanced one observation at a time.

    Extracting the control-update rule lets :meth:`MetaSearch.run`
    (sequential) and :meth:`MetaSearch.run_many` (lock-step rounds over
    a search fleet) share the exact same procedure.
    """

    def __init__(self, meta: MetaSearch, seed: int) -> None:
        self.meta = meta
        self.seed = seed
        self.control = meta.initial_control
        self.lo: Optional[float] = None  # highest control known to overshoot low
        self.hi: Optional[float] = None  # control known to still violate
        self.n = 0
        self.controls: List[float] = []
        self.best: Optional[SearchResult] = None
        self.done = False

    def next_request(self) -> Tuple[float, int]:
        """The (control, inner seed) of this designer's next search."""
        return self.control, self.seed * 1000 + self.n

    def observe(self, result: SearchResult) -> None:
        """Consume one search result and update the control parameter."""
        meta = self.meta
        self.controls.append(self.control)
        self.n += 1
        value = result.metrics.metric(meta.metric)
        if meta._accept(value):
            self.best = result
            self.done = True
            return
        if self.best is None or meta._distance(value) < meta._distance(
            self.best.metrics.metric(meta.metric)
        ):
            self.best = result
        if value > meta.target:
            # Still violating: strengthen the control parameter.
            self.hi = self.control
            self.control = (
                self.control * 2.0 if self.lo is None else 0.5 * (self.control + self.lo)
            )
        else:
            # Overshot below 50% of target: weaken it.
            self.lo = self.control
            self.control = (
                self.control * 0.5 if self.hi is None else 0.5 * (self.control + self.hi)
            )
        if self.n >= meta.max_searches:
            self.done = True

    def result(self) -> MetaSearchResult:
        assert self.best is not None
        meta = self.meta
        accepted = meta._accept(self.best.metrics.metric(meta.metric))
        try:  # canonical or CLI spelling; ad-hoc methods cost DANCE-like
            per_search = method_info(meta.method).gpu_hours_per_search
        except ValueError:
            per_search = 1.85
        return MetaSearchResult(
            method=meta.method,
            n_searches=self.n,
            gpu_hours=self.n * per_search,
            final=self.best,
            accepted=accepted,
            control_values=self.controls,
        )
