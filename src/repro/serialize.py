"""JSON (de)serialization of architectures, configs, and results.

Search outputs need to survive across processes (design reviews, final
training on another machine, the runtime layer's content-addressed run
store), so every search artifact has a stable JSON form.

Result payloads are versioned: ``schema_version`` tracks the JSON
layout and ``engine`` stamps the search engine's numerical version
(:data:`repro.runtime.engine.ENGINE_SALT`) the result was produced
with.  Files written before these fields existed load as version 0
with no engine stamp — readable, but the run store refuses them as
stale.  The full per-epoch history round-trips exactly (JSON floats
use shortest-repr), so a deserialized result is indistinguishable from
a fresh run.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, List

from repro.accelerator import AcceleratorConfig, Dataflow, HardwareMetrics
from repro.arch import NetworkArch, SearchSpace
from repro.core import ConstraintSet, EpochRecord, SearchResult
from repro.core.constraints import Constraint
from repro.runtime.engine import ENGINE_SALT, SCHEMA_VERSION


def space_by_name(name: str) -> SearchSpace:
    """Resolve a serialized space name through the workload registry.

    Legacy result JSON predates the workload layer but always named
    its space ``"cifar10"``/``"imagenet"`` — exactly the names the two
    legacy workloads register — so old files load as the named legacy
    workload with no migration.  Results from any newly registered
    workload round-trip the same way.
    """
    from repro.workload import get_workload

    return get_workload(name).space()


def arch_to_dict(arch: NetworkArch) -> Dict:
    return {"space": arch.space.name, "indices": arch.to_indices()}


def arch_from_dict(data: Dict, space: SearchSpace = None) -> NetworkArch:
    space = space or space_by_name(data["space"])
    if space.name != data["space"]:
        raise ValueError(
            f"architecture belongs to space {data['space']!r}, got {space.name!r}"
        )
    return NetworkArch.from_indices(space, data["indices"])


def config_to_dict(config: AcceleratorConfig) -> Dict:
    return {
        "pe_rows": config.pe_rows,
        "pe_cols": config.pe_cols,
        "rf_bytes": config.rf_bytes,
        "dataflow": config.dataflow.name,
        "platform": config.platform,
    }


def config_from_dict(data: Dict) -> AcceleratorConfig:
    # Results written before the platform layer carry no platform field;
    # they were all eyeriss searches.
    return AcceleratorConfig(
        pe_rows=data["pe_rows"],
        pe_cols=data["pe_cols"],
        rf_bytes=data["rf_bytes"],
        dataflow=Dataflow[data["dataflow"]],
        platform=data.get("platform", "eyeriss"),
    )


def constraints_to_dict(constraints: ConstraintSet) -> Dict:
    return {c.metric: c.bound for c in constraints}


def constraints_from_dict(data: Dict) -> ConstraintSet:
    return ConstraintSet([Constraint(m, b) for m, b in data.items()])


def history_to_list(history: List[EpochRecord]) -> List[Dict]:
    return [dataclasses.asdict(record) for record in history]


def history_from_list(data: List[Dict]) -> List[EpochRecord]:
    return [EpochRecord(**record) for record in data]


def result_to_dict(result: SearchResult) -> Dict:
    return {
        "schema_version": SCHEMA_VERSION,
        "engine": ENGINE_SALT,
        "method": result.method,
        "platform": result.platform,
        "arch": arch_to_dict(result.arch),
        "config": config_to_dict(result.config),
        "metrics": {
            "latency_ms": result.metrics.latency_ms,
            "energy_mj": result.metrics.energy_mj,
            "area_mm2": result.metrics.area_mm2,
        },
        "error_percent": result.error_percent,
        "loss_nas": result.loss_nas,
        "cost": result.cost,
        "constraints": constraints_to_dict(result.constraints),
        "in_constraint": result.in_constraint,
        "history": history_to_list(result.history),
    }


def result_from_dict(data: Dict, space: SearchSpace = None) -> SearchResult:
    # Version-0 files (written before ``schema_version`` existed) carry
    # neither history nor an engine stamp; they still load fine here —
    # only the run store refuses them.
    metrics = data["metrics"]
    return SearchResult(
        arch=arch_from_dict(data["arch"], space),
        config=config_from_dict(data["config"]),
        metrics=HardwareMetrics(
            metrics["latency_ms"], metrics["energy_mj"], metrics["area_mm2"]
        ),
        error_percent=data["error_percent"],
        loss_nas=data["loss_nas"],
        cost=data["cost"],
        constraints=constraints_from_dict(data["constraints"]),
        in_constraint=data["in_constraint"],
        history=history_from_list(data.get("history", [])),
        method=data["method"],
        platform=data.get("platform", "eyeriss"),
    )


def save_result(result: SearchResult, path: str) -> None:
    """Write a search result as pretty-printed JSON."""
    with open(path, "w") as handle:
        json.dump(result_to_dict(result), handle, indent=2)


def load_result(path: str, space: SearchSpace = None) -> SearchResult:
    """Read a search result saved by :func:`save_result`."""
    with open(path) as handle:
        return result_from_dict(json.load(handle), space)
