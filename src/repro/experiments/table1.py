"""Table 1 — comparison of differentiable co-explorations at 60 FPS.

For every baseline the designer must rerun the search while tuning a
control parameter (the Sec. 5.2 meta-algorithm); HDX hits the
constraint in a single search.  Reported: average number of searches,
GPU-hour cost (paper-calibrated per-search costs), and the error of
the accepted solution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.baselines import (
    MetaSearch,
    autonba_config,
    dance_config,
    dance_soft_config,
    finalize_nas_then_hw,
    hdx_config,
    method_info,
    nas_then_hw_config,
)
from repro.core import ConstraintSet
from repro.experiments.common import format_table, get_space
from repro.runtime import dispatch_many

TARGET_MS = 16.6  # 60 FPS


@dataclass
class Table1Row:
    method: str
    hard_constraint: bool
    nn_hw_relation: bool
    n_searches: float
    gpu_hours: float
    avg_error: float
    accept_rate: float


def _method_factories(constraints):
    """Per method: (SearchConfig factory over (control, seed), initial
    control, whether the exhaustive hardware phase follows)."""
    return {
        "NAS->HW": (
            lambda c, s: nas_then_hw_config(
                size_penalty_lambda=c, seed=s, constraints=constraints
            ),
            0.05,
            True,
        ),
        "Auto-NBA": (
            lambda c, s: autonba_config(lambda_cost=c, seed=s, constraints=constraints),
            0.001,
            False,
        ),
        "DANCE": (
            lambda c, s: dance_config(lambda_cost=c, seed=s, constraints=constraints),
            0.001,
            False,
        ),
        "DANCE+Soft": (
            lambda c, s: dance_soft_config(constraints, soft_lambda=c, seed=s),
            0.5,
            False,
        ),
    }


def run_table1(
    n_runs: int = 10, target_ms: float = TARGET_MS, workload: str = "cifar10"
) -> List[Table1Row]:
    """Run the meta-search ``n_runs`` times per method plus HDX.

    The paper uses 100 repetitions; ``n_runs`` trades bench wall-time
    for averaging (the relative ordering stabilizes within ~10 runs).
    The ``n_runs`` designers per method are independent, so each round
    of their tuning loops goes out as one run manifest through the
    runtime scheduler (:meth:`MetaSearch.run_many`), as does the whole
    HDX block — repeated invocations are served from the run store.
    ``workload`` selects the registered workload to search (the paper's
    table is the CIFAR-10 one).
    """
    space = get_space(workload)
    constraints = ConstraintSet.latency(target_ms)
    rows: List[Table1Row] = []

    for method, (factory, c0, hw_phase) in _method_factories(constraints).items():

        def batch_search(requests, factory=factory, hw_phase=hw_phase):
            configs = [factory(control, seed) for control, seed in requests]
            results = dispatch_many(space, configs)
            if hw_phase:
                results = [finalize_nas_then_hw(r, constraints) for r in results]
            return results

        meta = MetaSearch(method, None, "latency", target_ms, c0)
        outcomes = meta.run_many(range(n_runs), batch_search)
        counts = [o.n_searches for o in outcomes]
        errors = [o.final_error for o in outcomes]
        accepted = sum(o.accepted for o in outcomes)
        info = method_info(method)
        rows.append(
            Table1Row(
                method=method,
                hard_constraint=info.hard_constraint,
                nn_hw_relation=info.nn_hw_relation,
                n_searches=float(np.mean(counts)),
                gpu_hours=float(np.mean(counts)) * info.gpu_hours_per_search,
                avg_error=float(np.mean(errors)),
                accept_rate=accepted / n_runs,
            )
        )

    # HDX: always a single search — the n_runs repetitions batch whole.
    hdx_results = dispatch_many(
        space,
        [hdx_config(constraints, seed=run_index) for run_index in range(n_runs)],
    )
    hdx_info = method_info("HDX")
    rows.append(
        Table1Row(
            method="HDX",
            hard_constraint=hdx_info.hard_constraint,
            nn_hw_relation=hdx_info.nn_hw_relation,
            n_searches=1.0,
            gpu_hours=hdx_info.gpu_hours_per_search,
            avg_error=float(np.mean([r.error_percent for r in hdx_results])),
            accept_rate=sum(r.in_constraint for r in hdx_results) / n_runs,
        )
    )
    return rows


def render_table1(rows: List[Table1Row]) -> str:
    table_rows = [
        [
            r.method,
            "yes" if r.hard_constraint else "no",
            "yes" if r.nn_hw_relation else "no",
            f"{r.n_searches:.1f}",
            f"{r.gpu_hours:.1f}h",
            f"{r.avg_error:.2f}",
            f"{100 * r.accept_rate:.0f}%",
        ]
        for r in rows
    ]
    return format_table(
        ["Method", "HardConst", "NN-HW rel", "#Searches", "Cost", "Avg Err (%)", "Accepted"],
        table_rows,
        title=f"Table 1: search-to-constraint comparison ({TARGET_MS} ms / 60 FPS)",
    )
