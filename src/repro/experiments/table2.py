"""Table 2 — anchor study: quality of solutions under per-metric bounds.

Anchor solutions come from unconstrained DANCE searches.  Each
anchor's (latency, energy, area) values then become hard constraints
for HDX, one metric at a time and all three at once.  Because the
anchor proves a satisfying solution exists, HDX should always find a
valid solution of comparable global loss.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.baselines import run_dance, run_hdx
from repro.core import ConstraintSet
from repro.core.coexplore import LAMBDA_COST_SCALE
from repro.experiments.common import format_table, get_estimator, get_space


@dataclass
class Table2Row:
    anchor: str
    constrained: str  # "Anchor", "Latency", "Energy", "Chip Area", "All"
    latency_ms: float
    energy_mj: float
    area_mm2: float
    error_percent: float
    cost_hw: float
    loss: float
    in_constraint: bool


def _global_loss(result, lambda_cost: float) -> float:
    """Loss_NAS + lambda * Cost_HW — the paper's rightmost column,
    computed with the same effective lambda the search used."""
    return result.loss_nas + lambda_cost * LAMBDA_COST_SCALE * result.cost


def run_table2(epochs: int = 150, workload: str = "cifar10") -> List[Table2Row]:
    space = get_space(workload)
    estimator = get_estimator(workload)
    rows: List[Table2Row] = []
    anchors = {"A": dict(lambda_cost=0.002, seed=11), "B": dict(lambda_cost=0.004, seed=22)}
    for name, kw in anchors.items():
        anchor = run_dance(space, estimator, epochs=epochs, **kw)
        bounds = {
            "latency": anchor.metrics.latency_ms,
            "energy": anchor.metrics.energy_mj,
            "area": anchor.metrics.area_mm2,
        }
        rows.append(
            Table2Row(
                name, "Anchor",
                anchor.metrics.latency_ms, anchor.metrics.energy_mj, anchor.metrics.area_mm2,
                anchor.error_percent, anchor.cost, _global_loss(anchor, kw["lambda_cost"]),
                True,
            )
        )
        cases: Dict[str, Dict[str, float]] = {
            "Latency": {"latency": bounds["latency"]},
            "Energy": {"energy": bounds["energy"]},
            "Chip Area": {"area": bounds["area"]},
            "All": dict(bounds),
        }
        for case_index, (label, case_bounds) in enumerate(cases.items()):
            cs = ConstraintSet.from_dict(case_bounds)
            # Explicit arithmetic seed per case: ``hash(label)`` varies
            # across interpreter runs (string-hash randomization) and
            # made the committed anchors artifact unreproducible.
            result = run_hdx(
                space, estimator, cs, lambda_cost=kw["lambda_cost"],
                seed=kw["seed"] + 100 * (case_index + 1), epochs=epochs,
            )
            rows.append(
                Table2Row(
                    name, label,
                    result.metrics.latency_ms, result.metrics.energy_mj, result.metrics.area_mm2,
                    result.error_percent, result.cost, _global_loss(result, kw["lambda_cost"]),
                    result.in_constraint,
                )
            )
    return rows


def render_table2(rows: List[Table2Row]) -> str:
    table_rows = [
        [
            r.anchor,
            r.constrained,
            f"{r.latency_ms:.2f}",
            f"{r.energy_mj:.2f}",
            f"{r.area_mm2:.2f}",
            f"{r.error_percent:.2f}",
            f"{r.cost_hw:.2f}",
            f"{r.loss:.3f}",
            "yes" if r.in_constraint else "NO",
        ]
        for r in rows
    ]
    return format_table(
        ["Anchor", "Constrained", "Lat (ms)", "E (mJ)", "Area (mm2)", "Err (%)", "Cost_HW", "Loss", "in?"],
        table_rows,
        title="Table 2: solution quality under anchor-derived constraints",
    )
