"""Figure 5 — analysis of the searched network/accelerator pairs.

Visualizes the solutions HDX finds for the 60 FPS and 30 FPS latency
constraints: per-layer MBConv choices plus the accelerator (PE array,
RF size, dataflow).  The paper's qualitative finding: the tight
constraint yields small kernels + a large low-latency (WS-leaning)
array, while the loose constraint admits larger kernels and an
energy-lean (RS) design with fewer PEs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.baselines import hdx_config
from repro.core import ConstraintSet, SearchResult, run_many
from repro.experiments.common import get_estimator, get_space


@dataclass
class Fig5Solution:
    constraint_ms: float
    fps: int
    result: SearchResult

    @property
    def mean_kernel(self) -> float:
        kernels = [c.kernel for c in self.result.arch.choices if not c.is_skip]
        return sum(kernels) / len(kernels)

    @property
    def depth(self) -> int:
        return self.result.arch.depth()


def run_fig5(
    epochs: int = 150, seed: int = 0, workload: str = "cifar10"
) -> List[Fig5Solution]:
    space = get_space(workload)
    estimator = get_estimator(workload)
    targets = ((16.6, 60), (33.3, 30))
    results = run_many(
        space,
        estimator,
        [
            hdx_config(
                ConstraintSet.latency(target),
                lambda_cost=0.002, seed=seed, epochs=epochs,
            )
            for target, _ in targets
        ],
    )
    return [
        Fig5Solution(target, fps, result)
        for (target, fps), result in zip(targets, results)
    ]


def render_fig5(solutions: List[Fig5Solution]) -> str:
    blocks = []
    for sol in solutions:
        arch = sol.result.arch
        config = sol.result.config
        lines = [
            f"=== {sol.fps} FPS constraint ({sol.constraint_ms} ms) ===",
            "(3,1) FIXED  <- stem",
        ]
        for choice in arch.choices:
            lines.append(f"{choice}")
        lines.append("")
        lines.append(
            f"Accelerator: {config.pe_rows}x{config.pe_cols} PE array, "
            f"{config.rf_bytes}B RF, {config.dataflow.value} dataflow"
        )
        lines.append(
            f"Metrics: {sol.result.metrics} | err {sol.result.error_percent:.2f}% | "
            f"depth {sol.depth} | mean kernel {sol.mean_kernel:.2f}"
        )
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)
