"""Experiment drivers — one module per paper table/figure.

Each driver exposes a ``run_*`` function returning plain data rows plus
a ``render_*`` helper producing the table/series the paper reports.
The benchmark harness under ``benchmarks/`` calls these drivers.
"""

from repro.experiments.common import get_estimator, get_surrogate, format_table
from repro.experiments.campaign import (
    CampaignRow,
    Scenario,
    build_scenarios,
    render_campaign,
    render_plan,
    run_campaign,
)
from repro.experiments.fig1 import run_fig1, render_fig1
from repro.experiments.table1 import run_table1, render_table1
from repro.experiments.fig3 import run_fig3, render_fig3
from repro.experiments.table2 import run_table2, render_table2
from repro.experiments.fig4 import run_fig4, render_fig4
from repro.experiments.table3 import run_table3, render_table3
from repro.experiments.fig5 import run_fig5, render_fig5

__all__ = [
    "get_estimator",
    "get_surrogate",
    "format_table",
    "Scenario",
    "CampaignRow",
    "build_scenarios",
    "run_campaign",
    "render_campaign",
    "render_plan",
    "run_fig1",
    "render_fig1",
    "run_table1",
    "render_table1",
    "run_fig3",
    "render_fig3",
    "run_table2",
    "render_table2",
    "run_fig4",
    "render_fig4",
    "run_table3",
    "render_table3",
    "run_fig5",
    "render_fig5",
]
