"""Table 3 — ImageNet-scale results under a 125 ms constraint.

Two solutions per method (different lambdas/seeds), reporting
in-constraint status, latency, top-1 error, Cost_HW, and global loss.
HDX must always land inside the constraint without degrading quality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.baselines import (
    dance_config,
    dance_soft_config,
    finalize_nas_then_hw,
    hdx_config,
    nas_then_hw_config,
)
from repro.core import ConstraintSet
from repro.core.coexplore import LAMBDA_COST_SCALE
from repro.experiments.common import format_table, get_space
from repro.runtime import dispatch_many

TARGET_MS = 125.0


@dataclass
class Table3Row:
    method: str
    in_constraint: bool
    latency_ms: float
    error_percent: float
    cost_hw: float
    loss: float


def run_table3(epochs: int = 150, workload: str = "imagenet") -> List[Table3Row]:
    space = get_space(workload)
    cs = ConstraintSet.latency(TARGET_MS)

    # (lambda for the loss column, needs_hw_phase, config) per row; the
    # eight searches are independent, so one runtime dispatch covers
    # all (store-deduped, shardable).
    plan = []
    for penalty, seed in ((0.0, 0), (1.0, 1)):
        plan.append((0.0, True, nas_then_hw_config(
            size_penalty_lambda=penalty, seed=seed, constraints=cs, epochs=epochs)))
    for lam, seed in ((0.001, 0), (0.003, 1)):
        plan.append((lam, False, dance_config(
            lambda_cost=lam, seed=seed, constraints=cs, epochs=epochs)))
    for lam, seed in ((0.001, 2), (0.003, 3)):
        plan.append((lam, False, dance_soft_config(
            cs, soft_lambda=1.0, lambda_cost=lam, seed=seed, epochs=epochs)))
    for lam, seed in ((0.001, 0), (0.003, 1)):
        plan.append((lam, False, hdx_config(
            cs, lambda_cost=lam, seed=seed, epochs=epochs)))

    results = dispatch_many(space, [config for _, _, config in plan])
    rows: List[Table3Row] = []
    for (lambda_cost, hw_phase, _), result in zip(plan, results):
        if hw_phase:
            result = finalize_nas_then_hw(result, cs)
        rows.append(
            Table3Row(
                method=result.method,
                in_constraint=result.in_constraint,
                latency_ms=result.metrics.latency_ms,
                error_percent=result.error_percent,
                cost_hw=result.cost,
                loss=result.loss_nas + lambda_cost * LAMBDA_COST_SCALE * result.cost,
            )
        )
    return rows


def render_table3(rows: List[Table3Row]) -> str:
    table_rows = [
        [
            r.method,
            "yes" if r.in_constraint else "NO",
            f"{r.latency_ms:.2f}",
            f"{r.error_percent:.2f}",
            f"{r.cost_hw:.2f}",
            f"{r.loss:.3f}",
        ]
        for r in rows
    ]
    return format_table(
        ["Method", "in-const?", "Lat (ms)", "Error (%)", "Cost_HW", "Loss"],
        table_rows,
        title=f"Table 3: ImageNet-scale results ({TARGET_MS:.0f} ms constraint)",
    )
