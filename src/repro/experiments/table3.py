"""Table 3 — ImageNet-scale results under a 125 ms constraint.

Two solutions per method (different lambdas/seeds), reporting
in-constraint status, latency, top-1 error, Cost_HW, and global loss.
HDX must always land inside the constraint without degrading quality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.baselines import run_dance, run_dance_soft, run_hdx, run_nas_then_hw
from repro.core import ConstraintSet
from repro.core.coexplore import LAMBDA_COST_SCALE
from repro.experiments.common import format_table, get_estimator, get_space

TARGET_MS = 125.0


@dataclass
class Table3Row:
    method: str
    in_constraint: bool
    latency_ms: float
    error_percent: float
    cost_hw: float
    loss: float


def run_table3(epochs: int = 150) -> List[Table3Row]:
    space = get_space("imagenet")
    estimator = get_estimator("imagenet")
    cs = ConstraintSet.latency(TARGET_MS)
    rows: List[Table3Row] = []

    def add(result, lambda_cost):
        rows.append(
            Table3Row(
                method=result.method,
                in_constraint=result.in_constraint,
                latency_ms=result.metrics.latency_ms,
                error_percent=result.error_percent,
                cost_hw=result.cost,
                loss=result.loss_nas + lambda_cost * LAMBDA_COST_SCALE * result.cost,
            )
        )

    for penalty, seed in ((0.0, 0), (1.0, 1)):
        add(run_nas_then_hw(space, estimator, size_penalty_lambda=penalty, seed=seed,
                            constraints=cs, epochs=epochs), 0.0)
    for lam, seed in ((0.001, 0), (0.003, 1)):
        add(run_dance(space, estimator, lambda_cost=lam, seed=seed, constraints=cs,
                      epochs=epochs), lam)
    for lam, seed in ((0.001, 2), (0.003, 3)):
        add(run_dance_soft(space, estimator, cs, soft_lambda=1.0, lambda_cost=lam,
                           seed=seed, epochs=epochs), lam)
    for lam, seed in ((0.001, 0), (0.003, 1)):
        add(run_hdx(space, estimator, cs, lambda_cost=lam, seed=seed, epochs=epochs), lam)
    return rows


def render_table3(rows: List[Table3Row]) -> str:
    table_rows = [
        [
            r.method,
            "yes" if r.in_constraint else "NO",
            f"{r.latency_ms:.2f}",
            f"{r.error_percent:.2f}",
            f"{r.cost_hw:.2f}",
            f"{r.loss:.3f}",
        ]
        for r in rows
    ]
    return format_table(
        ["Method", "in-const?", "Lat (ms)", "Error (%)", "Cost_HW", "Loss"],
        table_rows,
        title=f"Table 3: ImageNet-scale results ({TARGET_MS:.0f} ms constraint)",
    )
