"""Figure 1 — motivational lambda_cost sweep.

The paper sweeps lambda_cost from 0.001 to 0.010 (three searches per
value) with a DANCE-style co-exploration and shows that latency/energy
and error respond to lambda inconsistently: a rough trend buried in
per-search variance, which is why tuning lambda cannot reliably hit a
hard constraint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.baselines import dance_config
from repro.experiments.common import ascii_scatter, format_table, get_space
from repro.runtime import dispatch_many


@dataclass
class Fig1Row:
    lambda_cost: float
    seed: int
    latency_ms: float
    energy_mj: float
    error_percent: float


def fig1_run_seed(lambda_index: int, seed: int) -> int:
    """Search seed of one sweep cell: explicit and log-greppable.

    ``1000 * lambda_index + seed`` uniquely identifies the run (the
    sweep never uses 1000 seeds per lambda); a hash of the float
    lambda would obscure run identity in logs and caches and depend on
    interpreter hashing details.
    """
    return 1000 * lambda_index + seed


def run_fig1(
    lambdas=(0.001, 0.002, 0.003, 0.004, 0.005, 0.006, 0.007, 0.008, 0.009, 0.010),
    seeds_per_lambda: int = 3,
    epochs: int = 150,
    workload: str = "cifar10",
) -> List[Fig1Row]:
    """Run the sweep; returns one row per (lambda, seed).

    All (lambda, seed) cells are independent DANCE searches with the
    same graph structure, so the whole sweep is one run manifest: the
    runtime scheduler serves repeats from the run store and batches or
    shards the misses as one fleet.  ``workload`` selects the
    registered workload to sweep (the paper's figure is CIFAR-10).
    """
    space = get_space(workload)
    cells = [
        (li, lam, seed)
        for li, lam in enumerate(lambdas)
        for seed in range(seeds_per_lambda)
    ]
    configs = [
        dance_config(lambda_cost=lam, seed=fig1_run_seed(li, seed), epochs=epochs)
        for li, lam, seed in cells
    ]
    results = dispatch_many(space, configs)
    return [
        Fig1Row(
            lambda_cost=lam,
            seed=seed,
            latency_ms=result.metrics.latency_ms,
            energy_mj=result.metrics.energy_mj,
            error_percent=result.error_percent,
        )
        for (li, lam, seed), result in zip(cells, results)
    ]


def render_fig1(rows: List[Fig1Row]) -> str:
    """ASCII rendition of the two panels plus the aggregate table."""
    by_lambda = {}
    for row in rows:
        by_lambda.setdefault(row.lambda_cost, []).append(row)
    table_rows = []
    for lam in sorted(by_lambda):
        group = by_lambda[lam]
        lats = [r.latency_ms for r in group]
        errs = [r.error_percent for r in group]
        ens = [r.energy_mj for r in group]
        table_rows.append(
            [
                f"{lam:.3f}",
                f"{np.mean(lats):.1f} +/- {np.std(lats):.1f}",
                f"{np.mean(ens):.1f} +/- {np.std(ens):.1f}",
                f"{np.mean(errs):.2f} +/- {np.std(errs):.2f}",
            ]
        )
    table = format_table(
        ["lambda", "latency (ms)", "energy (mJ)", "error (%)"],
        table_rows,
        title="Fig. 1: lambda_cost sweep (DANCE-style search, 3 seeds each)",
    )
    scatter = ascii_scatter(
        [r.latency_ms for r in rows],
        [r.error_percent for r in rows],
        ["o"] * len(rows),
        x_name="latency (ms)",
        y_name="error (%)",
    )
    return table + "\n\nError vs latency:\n" + scatter
