"""Shared experiment plumbing: estimator cache and table rendering."""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.accelerator.platform import as_platform
from repro.arch import SearchSpace, cifar_space, imagenet_space
from repro.estimator import CostEstimator, pretrain_estimator
from repro.surrogate import AccuracySurrogate

#: In-process estimator cache, keyed on everything the trained weights
#: depend on: (space, platform, seed).
_ESTIMATORS: Dict[Tuple[str, str, int], CostEstimator] = {}
_SURROGATES: Dict[str, AccuracySurrogate] = {}
_SPACES: Dict[str, SearchSpace] = {}

#: On-disk cache directory for pre-trained estimators (pre-training
#: takes ~30 s; experiments re-use it).  Absolute, so a chdir between
#: calls cannot silently split the cache.
CACHE_DIR = os.path.abspath(
    os.environ.get(
        "REPRO_CACHE_DIR",
        os.path.join(os.path.dirname(__file__), "..", "..", "..", ".cache"),
    )
)


def get_space(name: str) -> SearchSpace:
    """Memoized search space ('cifar10' or 'imagenet')."""
    if name not in _SPACES:
        _SPACES[name] = cifar_space() if name == "cifar10" else imagenet_space()
    return _SPACES[name]


def _cache_path(name: str, platform: str = "eyeriss", seed: int = 0) -> str:
    # The default combination keeps its pre-platform filename so warm
    # caches (local .cache/, CI) survive the platform refactor.
    if platform == "eyeriss" and seed == 0:
        return os.path.join(CACHE_DIR, f"estimator_{name}.npz")
    return os.path.join(CACHE_DIR, f"estimator_{name}_{platform}_s{seed}.npz")


def get_estimator(
    space_name: str = "cifar10", platform: str = "eyeriss", seed: int = 0
) -> CostEstimator:
    """Pre-trained, frozen cost estimator for a (space, platform) pair.

    Cached in-process and on disk, keyed on (space, platform, seed);
    delete ``.cache/`` to force re-training (necessary after changing
    the analytical cost model or a platform definition).
    """
    platform = as_platform(platform).name
    key = (space_name, platform, seed)
    if key in _ESTIMATORS:
        return _ESTIMATORS[key]
    space = get_space(space_name)
    path = _cache_path(space_name, platform, seed)
    estimator = CostEstimator(space, width=128, seed=seed, platform=platform)
    if os.path.exists(path):
        archive = np.load(path)
        estimator.load_state_dict({k: archive[k] for k in archive.files})
        estimator.freeze()
    else:
        estimator = pretrain_estimator(
            space, seed=seed, estimator=estimator, platform=platform
        )
        os.makedirs(CACHE_DIR, exist_ok=True)
        np.savez(path, **estimator.state_dict())
    _ESTIMATORS[key] = estimator
    return estimator


def get_surrogate(space_name: str = "cifar10") -> AccuracySurrogate:
    """Canonical accuracy surrogate for a named space."""
    if space_name not in _SURROGATES:
        _SURROGATES[space_name] = AccuracySurrogate(get_space(space_name), seed=0)
    return _SURROGATES[space_name]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: Optional[str] = None,
) -> str:
    """Render an ASCII table (the offline stand-in for paper figures)."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def ascii_scatter(
    xs: Sequence[float],
    ys: Sequence[float],
    labels: Sequence[str],
    width: int = 60,
    height: int = 18,
    x_name: str = "x",
    y_name: str = "y",
) -> str:
    """Minimal ASCII scatter plot used by figure renderers."""
    if not xs:
        return "(no data)"
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y, label in zip(xs, ys, labels):
        col = int((x - x_lo) / x_span * (width - 1))
        row = height - 1 - int((y - y_lo) / y_span * (height - 1))
        grid[row][col] = label[0]
    lines = ["".join(row) for row in grid]
    lines.append(f"{x_name}: [{x_lo:.2f}, {x_hi:.2f}]  {y_name}: [{y_lo:.2f}, {y_hi:.2f}]")
    return "\n".join(lines)
