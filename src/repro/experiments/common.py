"""Shared experiment plumbing: estimator cache and table rendering."""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

try:
    import fcntl
except ImportError:  # non-POSIX: fall back to lock-free (single-process)
    fcntl = None

from repro.accelerator.platform import as_platform
from repro.arch import SearchSpace
from repro.estimator import CostEstimator, pretrain_estimator
from repro.surrogate import AccuracySurrogate
from repro.workload import as_workload

#: In-process estimator cache, keyed on everything the trained weights
#: depend on: (space, platform, seed).
_ESTIMATORS: Dict[Tuple[str, str, int], CostEstimator] = {}
_SURROGATES: Dict[str, AccuracySurrogate] = {}

#: On-disk cache directory for pre-trained estimators (pre-training
#: takes ~30 s; experiments re-use it).  Absolute, so a chdir between
#: calls cannot silently split the cache.
CACHE_DIR = os.path.abspath(
    os.environ.get(
        "REPRO_CACHE_DIR",
        os.path.join(os.path.dirname(__file__), "..", "..", "..", ".cache"),
    )
)


def get_space(name: str) -> SearchSpace:
    """The memoized search space of a registered workload.

    Resolution goes through the workload registry, so an unregistered
    name fails loudly (it used to fall back to the ImageNet space) and
    every consumer — experiments, scheduler workers, serialization —
    shares one space object per workload.
    """
    return as_workload(name).space()


def _normalize_budget(
    n_samples: Optional[int], epochs: Optional[int]
) -> Tuple[Optional[int], Optional[int]]:
    """Map an explicitly-passed canonical training budget to the
    canonical (None) form, so ``--n-samples 8000`` warms and reuses the
    same cache entries as the default invocation."""
    from repro.estimator import DEFAULT_PRETRAIN_EPOCHS, DEFAULT_PRETRAIN_SAMPLES

    if n_samples == DEFAULT_PRETRAIN_SAMPLES:
        n_samples = None
    if epochs == DEFAULT_PRETRAIN_EPOCHS:
        epochs = None
    return n_samples, epochs


def _cache_path(
    name: str,
    platform: str = "eyeriss",
    seed: int = 0,
    n_samples: Optional[int] = None,
    epochs: Optional[int] = None,
) -> str:
    n_samples, epochs = _normalize_budget(n_samples, epochs)
    # The default combination keeps its pre-platform filename so warm
    # caches (local .cache/, CI) survive the platform refactor.
    # Non-canonical training budgets (smoke runs, ablations) get their
    # own files so they can never poison the canonical estimators.
    suffix = ""
    if n_samples is not None or epochs is not None:
        suffix = f"_n{n_samples or 'dflt'}_e{epochs or 'dflt'}"
    if platform == "eyeriss" and seed == 0 and not suffix:
        return os.path.join(CACHE_DIR, f"estimator_{name}.npz")
    return os.path.join(CACHE_DIR, f"estimator_{name}_{platform}_s{seed}{suffix}.npz")


@contextmanager
def _cache_write_lock(path: str):
    """Exclusive advisory lock guarding the train-or-write section.

    Concurrent scheduler workers may race to create the same estimator;
    the lock makes exactly one of them train while the others block and
    then load the finished file.  Lock files live next to the cache
    entries and are harmless to delete when no worker is running.
    """
    if fcntl is None:
        yield
        return
    os.makedirs(CACHE_DIR, exist_ok=True)
    with open(path + ".lock", "a+") as handle:
        fcntl.flock(handle, fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(handle, fcntl.LOCK_UN)


def _load_estimator(estimator: CostEstimator, path: str) -> CostEstimator:
    archive = np.load(path)
    estimator.load_state_dict({k: archive[k] for k in archive.files})
    estimator.freeze()
    return estimator


def _atomic_save_estimator(estimator: CostEstimator, path: str) -> None:
    """Write the state dict via temp-file-then-rename, never in place.

    Readers only ever see a complete file: either the old one or the
    renamed new one (``os.replace`` is atomic on POSIX).  The temp name
    must keep the ``.npz`` suffix or ``np.savez`` would append one.
    """
    os.makedirs(CACHE_DIR, exist_ok=True)
    tmp = f"{path}.{os.getpid()}.tmp.npz"
    np.savez(tmp, **estimator.state_dict())
    os.replace(tmp, path)


def get_estimator(
    space_name: str = "cifar10",
    platform: str = "eyeriss",
    seed: int = 0,
    n_samples: Optional[int] = None,
    epochs: Optional[int] = None,
) -> CostEstimator:
    """Pre-trained, frozen cost estimator for a (workload, platform) pair.

    Cached in-process and on disk, keyed on (space, platform, seed) —
    the space name is the workload name, so each registered workload
    gets its own cache files per platform —
    plus the training budget when a non-canonical ``n_samples``/
    ``epochs`` is requested (smoke runs get their own cache files);
    delete ``.cache/`` to force re-training (necessary after changing
    the analytical cost model or a platform definition).

    Multiprocess-safe: cache files are written atomically (temp file +
    rename) and the train-or-write path holds a per-file lock, so
    concurrent scheduler workers never read a half-written estimator
    and never train the same one twice.
    """
    platform = as_platform(platform).name
    n_samples, epochs = _normalize_budget(n_samples, epochs)
    key = (space_name, platform, seed, n_samples, epochs)
    if key in _ESTIMATORS:
        return _ESTIMATORS[key]
    space = get_space(space_name)
    path = _cache_path(space_name, platform, seed, n_samples, epochs)
    estimator = CostEstimator(space, width=128, seed=seed, platform=platform)
    if os.path.exists(path):
        # Fast path, no lock: atomic writes guarantee a complete file.
        estimator = _load_estimator(estimator, path)
    else:
        with _cache_write_lock(path):
            if os.path.exists(path):  # another worker trained it meanwhile
                estimator = _load_estimator(estimator, path)
            else:
                pretrain_kwargs = {}
                if n_samples is not None:
                    pretrain_kwargs["n_samples"] = n_samples
                if epochs is not None:
                    pretrain_kwargs["epochs"] = epochs
                estimator = pretrain_estimator(
                    space, seed=seed, estimator=estimator, platform=platform,
                    **pretrain_kwargs,
                )
                _atomic_save_estimator(estimator, path)
    _ESTIMATORS[key] = estimator
    return estimator


def _warm_worker(
    space_name: str,
    platform: str,
    seed: int,
    n_samples: Optional[int],
    epochs: Optional[int],
) -> str:
    """Build (or load) one platform's estimator in a worker process."""
    get_estimator(space_name, platform, seed, n_samples, epochs)
    return platform


def warm_estimator_caches(
    space_name: str = "cifar10",
    platforms: Optional[Sequence[str]] = None,
    seed: int = 0,
    jobs: Optional[int] = None,
    n_samples: Optional[int] = None,
    epochs: Optional[int] = None,
) -> Dict[str, str]:
    """Pre-train every requested platform's estimator, in parallel.

    Returns ``{platform: "trained" | "cached"}`` (judged by whether the
    npz cache file already existed).  Cache misses train in worker
    processes — pre-training is platform-independent work, so three
    cold platforms cost one wall-clock pre-training — while hits load
    in the parent.  ``jobs=None`` obeys the active
    :class:`repro.runtime.RuntimeContext` (``REPRO_JOBS`` / ``--jobs``);
    the per-file locks and atomic writes of :func:`get_estimator` make
    concurrent warms from several processes safe.
    """
    from repro.accelerator.platform import available_platforms

    if platforms is None:
        platforms = available_platforms()
    if jobs is None:
        from repro.runtime import active_context

        jobs = active_context().jobs
    jobs = max(1, int(jobs))
    n_samples, epochs = _normalize_budget(n_samples, epochs)
    status = {
        platform: (
            "cached"
            if os.path.exists(_cache_path(space_name, as_platform(platform).name,
                                          seed, n_samples, epochs))
            else "trained"
        )
        for platform in platforms
    }
    misses = [p for p, s in status.items() if s == "trained"]
    if len(misses) > 1 and jobs > 1:
        from repro.runtime import worker_pool

        with worker_pool(jobs, len(misses)) as pool:
            futures = [
                pool.submit(_warm_worker, space_name, platform, seed, n_samples, epochs)
                for platform in misses
            ]
            for future in futures:
                future.result()
    # Load (or train, single-miss / jobs=1 case) everything in-process.
    for platform in platforms:
        get_estimator(space_name, platform, seed, n_samples, epochs)
    return status


def get_surrogate(space_name: str = "cifar10") -> AccuracySurrogate:
    """Canonical accuracy surrogate for a registered workload."""
    if space_name not in _SURROGATES:
        _SURROGATES[space_name] = AccuracySurrogate(get_space(space_name), seed=0)
    return _SURROGATES[space_name]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: Optional[str] = None,
) -> str:
    """Render an ASCII table (the offline stand-in for paper figures)."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def ascii_scatter(
    xs: Sequence[float],
    ys: Sequence[float],
    labels: Sequence[str],
    width: int = 60,
    height: int = 18,
    x_name: str = "x",
    y_name: str = "y",
) -> str:
    """Minimal ASCII scatter plot used by figure renderers."""
    if not xs:
        return "(no data)"
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y, label in zip(xs, ys, labels):
        col = int((x - x_lo) / x_span * (width - 1))
        row = height - 1 - int((y - y_lo) / y_span * (height - 1))
        grid[row][col] = label[0]
    lines = ["".join(row) for row in grid]
    lines.append(f"{x_name}: [{x_lo:.2f}, {x_hi:.2f}]  {y_name}: [{y_lo:.2f}, {y_hi:.2f}]")
    return "\n".join(lines)
