"""Cross-scenario campaign driver: workload × platform × constraint.

The paper evaluates one workload on one accelerator target at a time.
With both sides of the problem behind registries — workloads
(:mod:`repro.workload`) and platforms
(:mod:`repro.accelerator.platform`) — the natural next experiment is
the full grid: sweep every requested (workload, platform, constraint
preset, method, seed) scenario through the runtime scheduler and
report which method wins where.  This is the first experiment the
paper does not have.

Execution is one :func:`repro.runtime.dispatch_many` manifest per
workload (a manifest is bound to one search space), so the campaign
inherits everything the runtime layer provides: content-addressed
dedupe against the run store (a re-run of an unchanged campaign
executes **zero** searches), structural batching within each
(workload, platform, method) cell, and multiprocess sharding under
``--jobs``.  Method metadata (display order, GPU-hour costs, the
exhaustive-HW-phase flag) comes from
:data:`repro.baselines.methods.METHODS` — the campaign report shares
that single source with Table 1 and the meta-search.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.accelerator.pareto import pareto_front
from repro.baselines import config_for_method, finalize_nas_then_hw, method_info
from repro.core import SearchConfig, SearchResult
from repro.experiments.common import format_table, get_space
from repro.runtime import dispatch_many
from repro.workload import as_workload


@dataclass(frozen=True)
class Scenario:
    """One cell of the campaign grid."""

    workload: str
    platform: str
    method: str  # canonical or CLI method name
    preset: str = "default"
    seed: int = 0
    lambda_cost: float = 0.003
    epochs: int = 150


@dataclass
class CampaignRow:
    """One executed scenario plus its ground-truth outcome."""

    scenario: Scenario
    result: SearchResult
    gpu_hours: float

    @property
    def method(self) -> str:
        return method_info(self.scenario.method).name


@dataclass
class CampaignPlan:
    """The validated grid, grouped per workload in request order."""

    scenarios: List[Scenario]
    configs: Dict[str, List[Tuple[int, SearchConfig]]] = field(default_factory=dict)


def build_scenarios(
    workloads: Sequence[str],
    platforms: Sequence[str],
    methods: Sequence[str] = ("hdx",),
    presets: Sequence[str] = ("default",),
    seeds: int = 1,
    lambda_cost: float = 0.003,
    epochs: int = 150,
) -> List[Scenario]:
    """The full grid, workload-major so each workload dispatches once."""
    return [
        Scenario(
            workload=workload,
            platform=platform,
            method=method,
            preset=preset,
            seed=seed,
            lambda_cost=lambda_cost,
            epochs=epochs,
        )
        for workload in workloads
        for platform in platforms
        for preset in presets
        for method in methods
        for seed in range(seeds)
    ]


def plan_campaign(scenarios: Sequence[Scenario]) -> CampaignPlan:
    """Validate every scenario and build the per-workload manifests.

    Resolution errors (unregistered workload/platform, unknown method
    or preset) surface here — before any estimator is trained or any
    search runs — so a ``--dry-run`` exercises exactly the validation
    the real run would.
    """
    from repro.accelerator.platform import as_platform

    plan = CampaignPlan(scenarios=list(scenarios))
    for index, scenario in enumerate(plan.scenarios):
        workload = as_workload(scenario.workload)
        as_platform(scenario.platform)
        constraints = workload.constraint_preset(scenario.preset)
        config = config_for_method(
            scenario.method,
            constraints,
            lambda_cost=scenario.lambda_cost,
            seed=scenario.seed,
            epochs=scenario.epochs,
            platform=scenario.platform,
            workload=workload.name,
        )
        plan.configs.setdefault(workload.name, []).append((index, config))
    return plan


def run_campaign(scenarios: Sequence[Scenario]) -> List[CampaignRow]:
    """Execute the grid through the runtime scheduler.

    One dispatch per workload (manifest order preserved); NAS->HW rows
    get their exhaustive hardware phase after the dispatch, exactly as
    the fig3/table drivers do.  Store dedupe, sharding, and report
    aggregation follow the active :class:`repro.runtime.RuntimeContext`.
    """
    plan = plan_campaign(scenarios)
    results: List[Optional[SearchResult]] = [None] * len(plan.scenarios)
    for workload_name, manifest in plan.configs.items():
        space = get_space(workload_name)
        dispatched = dispatch_many(space, [config for _, config in manifest])
        for (index, config), result in zip(manifest, dispatched):
            if method_info(plan.scenarios[index].method).needs_hw_phase:
                result = finalize_nas_then_hw(result, config.constraints)
            results[index] = result
    rows = []
    for scenario, result in zip(plan.scenarios, results):
        assert result is not None
        rows.append(
            CampaignRow(
                scenario=scenario,
                result=result,
                gpu_hours=method_info(scenario.method).gpu_hours_per_search,
            )
        )
    return rows


def render_plan(scenarios: Sequence[Scenario]) -> str:
    """The dry-run report: the validated grid, nothing executed."""
    plan = plan_campaign(scenarios)
    table_rows = []
    for scenario in plan.scenarios:
        workload = as_workload(scenario.workload)
        bounds = workload.constraint_preset(scenario.preset)
        table_rows.append(
            [
                scenario.workload,
                scenario.platform,
                method_info(scenario.method).name,
                scenario.preset,
                str(bounds),
                str(scenario.seed),
                f"{scenario.lambda_cost:.3f}",
                str(scenario.epochs),
            ]
        )
    table = format_table(
        ["Workload", "Platform", "Method", "Preset", "Constraints", "Seed",
         "lambda", "Epochs"],
        table_rows,
        title=f"Campaign plan: {len(plan.scenarios)} scenario(s), "
        f"{len(plan.configs)} workload manifest(s)",
    )
    return table + "\n(dry run: nothing executed)"


def render_campaign(rows: Sequence[CampaignRow]) -> str:
    """Per-scenario outcomes plus the cross-scenario summaries."""
    table_rows = [
        [
            r.scenario.workload,
            r.scenario.platform,
            r.method,
            r.scenario.preset,
            str(r.scenario.seed),
            f"{r.result.metrics.latency_ms:.2f}",
            f"{r.result.metrics.energy_mj:.2f}",
            f"{r.result.metrics.area_mm2:.2f}",
            f"{r.result.error_percent:.2f}",
            f"{r.result.cost:.2f}",
            "yes" if r.result.in_constraint else "NO",
        ]
        for r in rows
    ]
    out = [
        format_table(
            ["Workload", "Platform", "Method", "Preset", "Seed", "Lat (ms)",
             "E (mJ)", "Area", "Err (%)", "Cost_HW", "in?"],
            table_rows,
            title="Campaign: workload x platform x constraint sweep",
        )
    ]

    # Per-(workload, platform) Pareto front over (error, Cost_HW) —
    # which methods produce non-dominated solutions on each target.
    cells: Dict[Tuple[str, str], List[CampaignRow]] = {}
    for row in rows:
        cells.setdefault((row.scenario.workload, row.scenario.platform), []).append(row)
    front_rows = []
    for (workload, platform), members in cells.items():
        front = pareto_front(
            members,
            objectives=[
                lambda r: r.result.error_percent,
                lambda r: r.result.cost,
            ],
        )
        names = sorted({f"{r.method}/s{r.scenario.seed}" for r in front})
        feasible = sum(r.result.in_constraint for r in members)
        front_rows.append(
            [workload, platform, f"{feasible}/{len(members)}", ", ".join(names)]
        )
    out.append(
        format_table(
            ["Workload", "Platform", "Feasible", "Pareto front (err vs Cost_HW)"],
            front_rows,
            title="Cross-scenario summary",
        )
    )

    # Per-method roll-up (paper-calibrated GPU-hours; single source:
    # baselines.methods.METHODS).
    by_method: Dict[str, List[CampaignRow]] = {}
    for row in rows:
        by_method.setdefault(row.method, []).append(row)
    method_rows = []
    for name, members in by_method.items():
        feasible = sum(r.result.in_constraint for r in members)
        hours = sum(r.gpu_hours for r in members)
        err = sum(r.result.error_percent for r in members) / len(members)
        method_rows.append(
            [name, str(len(members)), f"{feasible}/{len(members)}",
             f"{err:.2f}", f"{hours:.1f}h"]
        )
    out.append(
        format_table(
            ["Method", "Runs", "In-constraint", "Avg Err (%)", "GPU-hours"],
            method_rows,
            title="Per-method roll-up",
        )
    )
    return "\n\n".join(out)
