"""Figure 3 — co-exploration results under 16.6 / 33.3 ms constraints.

Five solutions per co-exploration method obtained by varying
lambda_cost from 0.001 to 0.005; ten reference solutions for NAS->HW
(varying the size penalty); DANCE/Auto-NBA additionally run with the
soft-constraint term for each target.  HDX runs with the hard
constraint.  Panels: error-vs-latency for each constraint, and
error-vs-Cost_HW for Pareto comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.baselines import (
    autonba_config,
    dance_config,
    dance_soft_config,
    finalize_nas_then_hw,
    hdx_config,
    nas_then_hw_config,
)
from repro.core import ConstraintSet
from repro.experiments.common import ascii_scatter, format_table, get_space
from repro.runtime import dispatch_many

LAMBDAS = (0.001, 0.002, 0.003, 0.004, 0.005)
CONSTRAINTS_MS = (16.6, 33.3)


@dataclass
class Fig3Row:
    method: str
    constraint_ms: Optional[float]  # None = unconstrained variant
    lambda_cost: float
    latency_ms: float
    error_percent: float
    cost_hw: float
    in_constraint: Optional[bool]


def run_fig3(epochs: int = 150, workload: str = "cifar10") -> List[Fig3Row]:
    """Run all 50 fig-3 searches as one runtime dispatch.

    The searches are mutually independent, so every config is collected
    first into one manifest; the scheduler dedupes against the run
    store and batches/shards the misses by method structure (NAS->HW
    additionally gets its exhaustive hardware phase afterwards).  Rows
    come back in the same order the sequential version produced.
    """
    space = get_space(workload)

    # (method, constraint, lambda, needs_hw_phase, config) per row.
    plan = []

    # NAS->HW reference cloud: 10 solutions of various size penalties.
    for i, penalty in enumerate(np.linspace(0.0, 4.0, 10)):
        plan.append(
            ("NAS->HW", None, 0.0, True,
             nas_then_hw_config(size_penalty_lambda=float(penalty), seed=i, epochs=epochs))
        )

    for i, lam in enumerate(LAMBDAS):
        # Unconstrained DANCE and Auto-NBA (black markers in the paper).
        plan.append(
            ("DANCE", None, lam, False,
             dance_config(lambda_cost=lam, seed=i, epochs=epochs))
        )
        plan.append(
            ("Auto-NBA", None, lam, False,
             autonba_config(lambda_cost=lam, seed=i, epochs=epochs))
        )
        for target in CONSTRAINTS_MS:
            cs = ConstraintSet.latency(target)
            plan.append(
                ("DANCE+Soft", target, lam, False,
                 dance_soft_config(cs, soft_lambda=1.0, lambda_cost=lam, seed=i, epochs=epochs))
            )
            plan.append(
                ("Auto-NBA+Soft", target, lam, False,
                 autonba_config(lambda_cost=lam, seed=i, epochs=epochs,
                                constraints=cs, soft_lambda=1.0))
            )
            plan.append(
                ("HDX", target, lam, False,
                 hdx_config(cs, lambda_cost=lam, seed=i, epochs=epochs))
            )

    results = dispatch_many(space, [config for *_, config in plan])
    rows: List[Fig3Row] = []
    for (method, target, lam, hw_phase, config), result in zip(plan, results):
        if hw_phase:
            result = finalize_nas_then_hw(result, None)
        in_constraint = result.in_constraint if target is not None else None
        rows.append(
            Fig3Row(
                method, target, lam, result.metrics.latency_ms,
                result.error_percent, result.cost, in_constraint,
            )
        )
    return rows


def render_fig3(rows: List[Fig3Row]) -> str:
    header = ["Method", "Constraint", "lambda", "Lat (ms)", "Err (%)", "Cost_HW", "in?"]
    table_rows = [
        [
            r.method,
            f"{r.constraint_ms:.1f}" if r.constraint_ms else "-",
            f"{r.lambda_cost:.3f}" if r.lambda_cost else "-",
            f"{r.latency_ms:.1f}",
            f"{r.error_percent:.2f}",
            f"{r.cost_hw:.2f}",
            {True: "yes", False: "NO", None: "-"}[r.in_constraint],
        ]
        for r in rows
    ]
    table = format_table(header, table_rows, title="Fig. 3: co-exploration results")

    marks = {"HDX": "H", "DANCE": "D", "DANCE+Soft": "d", "Auto-NBA": "A", "Auto-NBA+Soft": "a", "NAS->HW": "N"}
    scatter = ascii_scatter(
        [r.latency_ms for r in rows],
        [r.error_percent for r in rows],
        [marks[r.method] for r in rows],
        x_name="latency (ms)",
        y_name="error (%)",
    )
    summary = []
    for target in CONSTRAINTS_MS:
        hdx_rows = [r for r in rows if r.method == "HDX" and r.constraint_ms == target]
        n_in = sum(bool(r.in_constraint) for r in hdx_rows)
        summary.append(f"HDX @ {target} ms: {n_in}/{len(hdx_rows)} in constraint")
        soft_rows = [
            r for r in rows if r.method in ("DANCE+Soft", "Auto-NBA+Soft") and r.constraint_ms == target
        ]
        n_soft = sum(bool(r.in_constraint) for r in soft_rows)
        summary.append(f"soft baselines @ {target} ms: {n_soft}/{len(soft_rows)} in constraint")
    return table + "\n\n" + scatter + "\n" + "\n".join(summary)
