"""Figure 4 — sensitivity to the pulling magnitude ``p``.

One latency-constrained (33.3 ms) HDX exploration per ``p`` in
{1e-2, 7e-3, 4e-3}; the panels track the global loss and the
(estimated) latency across epochs.  The paper's observation: the
trajectory shape is the same for all ``p`` — loss optimizes first,
then delta grows until the pull kicks in, latency drops below the
bar, and loss resumes improving — so HDX is insensitive to its only
hyper-parameter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.baselines import hdx_config
from repro.core import ConstraintSet, run_many
from repro.experiments.common import format_table, get_estimator, get_space

P_VALUES = (1e-2, 7e-3, 4e-3)
TARGET_MS = 33.3


@dataclass
class Fig4Curve:
    p: float
    epochs: List[int]
    latency_ms: List[float]
    global_loss: List[float]
    delta: List[float]
    final_latency_ms: float
    final_in_constraint: bool


def run_fig4(
    epochs: int = 150, seed: int = 0, workload: str = "cifar10"
) -> List[Fig4Curve]:
    space = get_space(workload)
    estimator = get_estimator(workload)
    curves: List[Fig4Curve] = []
    # p is per-run data, so the whole sweep is one fleet batch.
    results = run_many(
        space,
        estimator,
        [
            hdx_config(
                ConstraintSet.latency(TARGET_MS),
                lambda_cost=0.001, p=p, seed=seed, epochs=epochs,
            )
            for p in P_VALUES
        ],
    )
    for p, result in zip(P_VALUES, results):
        curves.append(
            Fig4Curve(
                p=p,
                epochs=[r.epoch for r in result.history],
                latency_ms=[r.predicted_latency_ms for r in result.history],
                global_loss=[r.global_loss for r in result.history],
                delta=[r.delta for r in result.history],
                final_latency_ms=result.metrics.latency_ms,
                final_in_constraint=result.in_constraint,
            )
        )
    return curves


def render_fig4(curves: List[Fig4Curve]) -> str:
    blocks = []
    for curve in curves:
        sample = range(0, len(curve.epochs), max(1, len(curve.epochs) // 12))
        rows = [
            [
                curve.epochs[i],
                f"{curve.latency_ms[i]:.1f}",
                f"{curve.global_loss[i]:.3f}",
                f"{curve.delta[i]:.3e}",
            ]
            for i in sample
        ]
        table = format_table(
            ["epoch", "latency (ms)", "global loss", "delta"],
            rows,
            title=(
                f"Fig. 4 (p={curve.p:g}): final latency "
                f"{curve.final_latency_ms:.1f} ms, "
                f"{'in' if curve.final_in_constraint else 'OUT OF'} constraint"
            ),
        )
        blocks.append(table)
    return "\n\n".join(blocks)


def curve_summary(curves: List[Fig4Curve]) -> Dict[float, bool]:
    """p -> constraint satisfied, for assertions in benches/tests."""
    return {c.p: c.final_in_constraint for c in curves}
