"""The frozen cost estimator ``est(alpha, beta)``.

A five-layer residual MLP (paper Sec. 4.4) mapping the concatenated
architecture encoding and relaxed accelerator vector to normalized
(latency, energy, area).  After pre-training it is frozen; during
search it only provides gradients to ``alpha`` and to the generator.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import nn
from repro.autodiff import Tensor, ops
from repro.arch import SearchSpace
from repro.arch.encoding import extended_feature_dim

METRIC_INDEX = {"latency": 0, "energy": 1, "area": 2}


class CostEstimator(nn.Module):
    """Residual-MLP estimator of hardware metrics.

    An estimator is trained against one hardware platform's analytical
    oracle and is only valid for that platform; ``platform`` records
    which one so search engines can refuse mismatched pairings.
    """

    def __init__(
        self,
        space: SearchSpace,
        width: int = 96,
        n_layers: int = 5,
        seed: int = 0,
        platform: str = "eyeriss",
    ) -> None:
        super().__init__()
        from repro.accelerator.platform import as_platform

        self.space = space
        self.platform = as_platform(platform).name
        in_dim = extended_feature_dim(space) + 6
        self.mlp = nn.ResidualMLP(
            in_dim, 3, width=width, n_layers=n_layers, rng=np.random.default_rng(seed)
        )
        # Target normalization, set by training.
        self.target_mean = np.zeros(3)
        self.target_std = np.ones(3)
        self.frozen = False
        self._kernel = None

    def _buffers(self):
        return {"target_mean": self.target_mean, "target_std": self.target_std}

    def set_normalization(self, mean: np.ndarray, std: np.ndarray) -> None:
        self.target_mean[...] = mean
        self.target_std[...] = std

    def freeze(self) -> None:
        """Stop gradient updates to the estimator (post pre-training)."""
        self.frozen = True
        for p in self.parameters():
            p.requires_grad = False

    # ------------------------------------------------------------------
    def forward(self, features: Tensor) -> Tensor:
        """Normalized metric predictions, shape (N, 3) or (3,)."""
        return self.mlp(features)

    def predict_metrics(self, arch_features: Tensor, accel_vector: Tensor) -> Tensor:
        """Denormalized (latency_ms, energy_mj, area_mm2), differentiable.

        Accepts 1-D inputs (a single design point); returns a 3-vector.
        The network regresses log-metrics, so the decode exponentiates.
        """
        features = ops.concat([arch_features, accel_vector], axis=0)
        normalized = self.forward(features.reshape(1, -1)).reshape(-1)
        return (normalized * self.target_std + self.target_mean).exp()

    def predict_metric(
        self, arch_features: Tensor, accel_vector: Tensor, name: str
    ) -> Tensor:
        """Single named metric as a scalar tensor."""
        metrics = self.predict_metrics(arch_features, accel_vector)
        index = METRIC_INDEX[name]
        return metrics[np.array([index])].reshape(())

    def _rows_kernel(self):
        """Shared-weight raw-array kernel over this estimator's MLP.

        Weight arrays are shared by reference (training updates and
        state-dict loads mutate them in place), so one cached kernel
        stays valid for the estimator's whole life.
        """
        if self._kernel is None:
            from repro.nn import ResidualMLPKernel

            self._kernel = ResidualMLPKernel(mlp=self.mlp)
        return self._kernel

    def fleet_kernel(self):
        """Shared-weight raw-array kernel over this (frozen) estimator.

        The search fleet differentiates through the estimator hundreds
        of times per epoch batch; the kernel avoids per-op autodiff
        dispatch while staying bitwise identical to :meth:`forward` on
        ``(N, 1, in)`` inputs.
        """
        if not self.frozen:
            raise ValueError("fleet_kernel requires a frozen estimator")
        return self._rows_kernel()

    def predict_numpy(self, features: np.ndarray) -> np.ndarray:
        """Batch prediction without graph construction (evaluation).

        The one batched inference path (it absorbed the former
        ``predict_numpy_rows``): the batch is stacked as ``(N, 1, in)``
        so NumPy runs one GEMM per row, making every row bitwise
        identical to a scalar ``(1, in)`` forward — the per-row
        stability the fleet's telemetry and the scalar search loop both
        rely on.
        """
        features = np.asarray(features, dtype=np.float64)
        n = len(features)
        out, _ = self._rows_kernel().forward(
            features.reshape(n, 1, -1), want_cache=False
        )
        normalized = out.reshape(n, -1)
        return np.exp(normalized * self.target_std + self.target_mean)
