"""The hardware generator ``gen(v, alpha)``.

A five-layer residual MLP mapping the architecture encoding to a
relaxed accelerator vector: three sigmoid outputs (rows, cols, RF) and
a three-way softmax over dataflows.  It is randomly initialized and
jointly trained during co-exploration (paper Sec. 4.4), so it adapts
to whatever cost function and constraints are active.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro import nn
from repro.accelerator import AcceleratorConfig
from repro.autodiff import Tensor, no_grad, ops
from repro.arch import SearchSpace
from repro.arch.encoding import arch_feature_dim


class HardwareGenerator(nn.Module):
    """Residual-MLP generator of relaxed accelerator configurations.

    The generator's outputs live in the unit cube regardless of target;
    ``platform`` fixes which design space :meth:`discretize` snaps them
    into (the platform-normalized vector encoding).
    """

    def __init__(
        self,
        space: SearchSpace,
        width: int = 64,
        n_layers: int = 5,
        seed: int = 1,
        platform: str = "eyeriss",
    ) -> None:
        super().__init__()
        from repro.accelerator.platform import as_platform

        self.space = space
        self.platform = as_platform(platform).name
        self.mlp = nn.ResidualMLP(
            arch_feature_dim(space),
            AcceleratorConfig.vector_dim(),
            width=width,
            n_layers=n_layers,
            rng=np.random.default_rng(seed),
        )

    def forward(self, arch_features: Tensor) -> Tensor:
        """Relaxed accelerator vector (6,), differentiable."""
        raw = self.mlp(arch_features.reshape(1, -1)).reshape(-1)
        size_part = ops.sigmoid(raw[np.arange(3)])
        dataflow_part = ops.softmax(raw[np.arange(3, 6)], axis=-1)
        return ops.concat([size_part, dataflow_part], axis=0)

    def discretize(self, arch_features: Tensor) -> AcceleratorConfig:
        """Snap the generator output to the platform's nearest design."""
        with no_grad():
            vector = self.forward(arch_features.detach()).data
        return AcceleratorConfig.from_vector(vector, platform=self.platform)


def accelerator_head_forward(raw: np.ndarray):
    """Raw (N, 6) logits -> relaxed accelerator vectors, plus head state.

    The head shared by every generator variant: sigmoid over the three
    size slots, softmax over the three dataflow slots — the exact
    formulas of the autodiff ops, so fleet outputs stay bitwise those
    of the scalar modules.  Returns ``(beta, size_part, dataflow_part)``;
    the two parts feed :func:`accelerator_head_vjp`.
    """
    size_in = raw[:, :3]
    size_part = 1.0 / (1.0 + np.exp(-size_in))
    df_in = raw[:, 3:6]
    shifted = df_in - df_in.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    dataflow_part = exp / exp.sum(axis=-1, keepdims=True)
    beta = np.concatenate([size_part, dataflow_part], axis=1)
    return beta, size_part, dataflow_part


def accelerator_head_vjp(
    d_beta: np.ndarray, size_part: np.ndarray, dataflow_part: np.ndarray
) -> np.ndarray:
    """d beta (N, 6) -> d raw logits (N, 6), engine-exact VJPs."""
    d_size = d_beta[:, :3]
    d_df = d_beta[:, 3:]
    d_size_in = d_size * size_part * (1.0 - size_part)
    dot = (d_df * dataflow_part).sum(axis=-1, keepdims=True)
    d_df_in = dataflow_part * (d_df - dot)
    d_raw = np.zeros_like(d_beta)
    d_raw[:, :3] += d_size_in
    d_raw[:, 3:6] += d_df_in
    return d_raw


class HardwareGeneratorFleet:
    """N per-run :class:`HardwareGenerator` instances in one batched kernel.

    Each search run trains its own generator (seeded from the run); the
    fleet stacks their weights on a run axis and evaluates/differentiates
    all of them in one lock-step pass over ``(N, F)`` architecture
    encodings via :class:`~repro.nn.ResidualMLPKernel`, mirroring the
    scalar forward op-for-op so each run's numbers (and gradients) are
    bitwise identical to a solo search (the fleet parity contract, see
    DESIGN.md).  The stacked weights are the training state — the fleet
    updates them in place through :meth:`params`.
    """

    def __init__(self, generators: Sequence[HardwareGenerator]) -> None:
        if not generators:
            raise ValueError("HardwareGeneratorFleet needs at least one generator")
        platforms = {g.platform for g in generators}
        if len(platforms) != 1:
            raise ValueError(
                f"fleet generators must share one platform, got {sorted(platforms)}"
            )
        self.space = generators[0].space
        self.platform = generators[0].platform
        self.n_runs = len(generators)
        self.kernel = nn.ResidualMLPKernel(mlps=[g.mlp for g in generators])

    def params(self) -> List[np.ndarray]:
        """Stacked trainable arrays in scalar ``parameters()`` order."""
        return self.kernel.params()

    def forward(self, arch_features: np.ndarray, want_cache: bool = True):
        """Relaxed accelerator vectors (N, 6) plus the backward cache."""
        n = self.n_runs
        raw3, mlp_cache = self.kernel.forward(
            arch_features.reshape(n, 1, -1), want_cache=want_cache
        )
        beta, size_part, dataflow_part = accelerator_head_forward(
            raw3.reshape(n, -1)
        )
        cache = (mlp_cache, size_part, dataflow_part) if want_cache else None
        return beta, cache

    def backward(
        self,
        cache,
        d_beta: np.ndarray,
        need_input: bool = True,
        need_weights: bool = False,
    ):
        """VJP through head and MLP: returns (d_features or None, grads)."""
        mlp_cache, size_part, dataflow_part = cache
        n = self.n_runs
        d_raw = accelerator_head_vjp(d_beta, size_part, dataflow_part)
        d_x, grads = self.kernel.backward(
            mlp_cache, d_raw.reshape(n, 1, -1), need_input=need_input,
            need_weights=need_weights,
        )
        return (None if d_x is None else d_x.reshape(n, -1)), grads

    def discretize_all(self, arch_features: np.ndarray) -> List[AcceleratorConfig]:
        """Snap every run's output to the platform's nearest design."""
        vectors, _ = self.forward(arch_features, want_cache=False)
        return [
            AcceleratorConfig.from_vector(v, platform=self.platform) for v in vectors
        ]
