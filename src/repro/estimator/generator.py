"""The hardware generator ``gen(v, alpha)``.

A five-layer residual MLP mapping the architecture encoding to a
relaxed accelerator vector: three sigmoid outputs (rows, cols, RF) and
a three-way softmax over dataflows.  It is randomly initialized and
jointly trained during co-exploration (paper Sec. 4.4), so it adapts
to whatever cost function and constraints are active.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.accelerator import AcceleratorConfig
from repro.autodiff import Tensor, no_grad, ops
from repro.arch import SearchSpace
from repro.arch.encoding import arch_feature_dim


class HardwareGenerator(nn.Module):
    """Residual-MLP generator of relaxed accelerator configurations."""

    def __init__(
        self,
        space: SearchSpace,
        width: int = 64,
        n_layers: int = 5,
        seed: int = 1,
    ) -> None:
        super().__init__()
        self.space = space
        self.mlp = nn.ResidualMLP(
            arch_feature_dim(space),
            AcceleratorConfig.vector_dim(),
            width=width,
            n_layers=n_layers,
            rng=np.random.default_rng(seed),
        )

    def forward(self, arch_features: Tensor) -> Tensor:
        """Relaxed accelerator vector (6,), differentiable."""
        raw = self.mlp(arch_features.reshape(1, -1)).reshape(-1)
        size_part = ops.sigmoid(raw[np.arange(3)])
        dataflow_part = ops.softmax(raw[np.arange(3, 6)], axis=-1)
        return ops.concat([size_part, dataflow_part], axis=0)

    def discretize(self, arch_features: Tensor) -> AcceleratorConfig:
        """Snap the generator output to the nearest discrete design."""
        with no_grad():
            vector = self.forward(arch_features.detach()).data
        return AcceleratorConfig.from_vector(vector)
