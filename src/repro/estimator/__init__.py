"""Learned hardware cost models: the estimator and the generator.

Following DANCE/HDX, the differentiable evaluator ``eval(alpha, beta)``
is a composition of two residual MLPs:

* :class:`CostEstimator` ``est(alpha, beta) -> (latency, energy, area)``
  — pre-trained on pairs sampled from the analytical ground truth
  (our Timeloop/Accelergy substitute), then frozen during search.
* :class:`HardwareGenerator` ``gen(v, alpha) -> beta`` — maps a network
  encoding to a relaxed accelerator configuration; jointly trained
  during co-exploration so it adapts to the active cost/constraints.
"""

from repro.estimator.dataset import (
    DEFAULT_PRETRAIN_EPOCHS,
    DEFAULT_PRETRAIN_SAMPLES,
    CostDataset,
    build_cost_dataset,
)
from repro.estimator.estimator import CostEstimator
from repro.estimator.generator import HardwareGenerator, HardwareGeneratorFleet
from repro.estimator.training import (
    estimator_accuracy,
    pretrain_estimator,
    train_estimator,
)

__all__ = [
    "DEFAULT_PRETRAIN_EPOCHS",
    "DEFAULT_PRETRAIN_SAMPLES",
    "CostDataset",
    "build_cost_dataset",
    "CostEstimator",
    "HardwareGenerator",
    "HardwareGeneratorFleet",
    "train_estimator",
    "pretrain_estimator",
    "estimator_accuracy",
]
