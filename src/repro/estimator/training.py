"""Estimator pre-training and accuracy reporting.

Two interchangeable trainers live here:

* ``backend="autodiff"`` — the reference implementation: builds the
  graph through :mod:`repro.autodiff` every minibatch and steps
  :class:`repro.nn.Adam`.
* ``backend="fused"`` (default) — a closed-form forward/backward/Adam
  kernel in raw NumPy, the pre-training twin of the search fleet's
  hand-written VJPs.  It performs the *same NumPy operations in the
  same order* as the autodiff engine (relu as ``z * (z > 0)``, weight
  VJPs as ``transpose(swapaxes(x) @ g)``, the engine's single-row
  outer-product special case, two-term gradient accumulations), so
  per-epoch losses and final weights are **bitwise identical** — the
  graph bookkeeping is all it removes.

Change-both rule: any change to :class:`repro.nn.ResidualMLP`,
:mod:`repro.autodiff.ops`, or :class:`repro.nn.Adam` must be mirrored
in :class:`_FusedMLPTrainer`; ``tests/test_estimator.py`` pins the
loss- and weight-level equivalence (see DESIGN.md "Pretraining
pipeline").
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro import nn
from repro.autodiff import Tensor
from repro.arch import SearchSpace
from repro.estimator.dataset import (
    DEFAULT_PRETRAIN_EPOCHS,
    DEFAULT_PRETRAIN_SAMPLES,
    CostDataset,
    build_cost_dataset,
)
from repro.estimator.estimator import CostEstimator

TRAIN_BACKENDS = ("fused", "autodiff")


def train_estimator(
    estimator: CostEstimator,
    dataset: CostDataset,
    epochs: int = 60,
    batch_size: int = 256,
    lr: float = 1e-3,
    seed: int = 0,
    backend: str = "fused",
) -> List[float]:
    """Train on normalized targets with Adam; returns per-epoch losses.

    The paper uses 200 epochs, batch 256, Adam lr 1e-4 on 10.8 M
    samples; the smaller default here converges on our smaller,
    smoother dataset.  ``backend`` selects the fused NumPy kernel
    (default) or the autodiff reference; both produce bitwise-identical
    losses and weights for the same seed.
    """
    if backend not in TRAIN_BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; choose from {TRAIN_BACKENDS}")
    estimator.set_normalization(dataset.target_mean, dataset.target_std)
    train = _train_fused if backend == "fused" else _train_autodiff
    return train(estimator, dataset, epochs, batch_size, lr, seed)


def _train_autodiff(
    estimator: CostEstimator,
    dataset: CostDataset,
    epochs: int,
    batch_size: int,
    lr: float,
    seed: int,
) -> List[float]:
    """Reference trainer: per-minibatch graph construction + nn.Adam."""
    optimizer = nn.Adam(estimator.parameters(), lr=lr)
    targets = dataset.normalized_targets()
    rng = np.random.default_rng(seed)
    losses: List[float] = []
    for _ in range(epochs):
        order = rng.permutation(len(dataset))
        epoch_loss = 0.0
        n_batches = 0
        for start in range(0, len(order), batch_size):
            idx = order[start : start + batch_size]
            optimizer.zero_grad()
            pred = estimator(Tensor(dataset.features[idx]))
            loss = nn.mse_loss(pred, targets[idx])
            loss.backward()
            optimizer.step()
            epoch_loss += loss.item()
            n_batches += 1
        losses.append(epoch_loss / n_batches)
    return losses


class _FusedMLPTrainer:
    """Closed-form MSE/Adam training kernel over a ResidualMLP.

    Operates in place on the estimator's parameter arrays (weights are
    shared by reference, exactly like ``ResidualMLPKernel``), with the
    autodiff engine's operation order mirrored step for step:

    * forward: ``(x @ W.T + b)`` per linear, relu as ``z * (z > 0)``,
      residual adds as ``(fc2(h1) + b2) + h_in``;
    * loss VJP: ``mean`` spreads ``1/size``, the ``diff * diff`` node
      accumulates its two identical contributions as ``t + t``;
    * weight VJP: ``transpose(swapaxes(x, -1, -2) @ g)`` — including
      the engine's broadcast-outer-product special case for single-row
      batches — and bias VJP ``g.sum(axis=0)`` (unbroadcast);
    * residual input gradient: ``(g @ W1) + d_skip`` (two-term float
      adds are order-insensitive bitwise);
    * Adam: the exact update sequence of :class:`repro.nn.Adam`.
    """

    def __init__(self, estimator: CostEstimator, lr: float) -> None:
        mlp = estimator.mlp
        linears = (
            [mlp.in_proj]
            + [fc for block in mlp.blocks for fc in (block.fc1, block.fc2)]
            + ([mlp.extra] if mlp.extra is not None else [])
            + [mlp.out_proj]
        )
        self.n_blocks = len(mlp.blocks)
        self.has_extra = mlp.extra is not None
        self.weights = [lin.weight.data for lin in linears]
        self.biases = [lin.bias.data for lin in linears]
        # Interleaved (W, b, W, b, ...) — scalar parameters() order.
        self.params: List[np.ndarray] = []
        for w, b in zip(self.weights, self.biases):
            self.params.extend([w, b])
        self.lr = float(lr)
        self.beta1, self.beta2, self.eps = 0.9, 0.999, 1e-8
        self._m = [np.zeros_like(p) for p in self.params]
        self._v = [np.zeros_like(p) for p in self.params]
        # Scratch buffers make the Adam step allocation-free; every
        # in-place ufunc below computes the exact expression nn.Adam
        # does (scalar multiplies commuted where needed — commutativity
        # is bitwise for IEEE floats).
        self._buf_a = [np.empty_like(p) for p in self.params]
        self._buf_b = [np.empty_like(p) for p in self.params]
        self._t = 0

    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray):
        """(B, in) -> (B, out) plus the cache backward consumes."""
        inputs: List[np.ndarray] = []
        masks: List[np.ndarray] = []
        k = 0
        # In-place += / *= below are the same add/mul ufuncs the engine
        # applies out of place; only the allocations differ.
        inputs.append(x)
        z = x @ self.weights[k].T
        z += self.biases[k]
        mask = z > 0
        h = np.multiply(z, mask, out=z)
        masks.append(mask)
        k += 1
        for _ in range(self.n_blocks):
            h_in = h
            inputs.append(h_in)
            z1 = h_in @ self.weights[k].T
            z1 += self.biases[k]
            m1 = z1 > 0
            h1 = np.multiply(z1, m1, out=z1)
            masks.append(m1)
            k += 1
            inputs.append(h1)
            s = h1 @ self.weights[k].T
            s += self.biases[k]
            s += h_in
            m2 = s > 0
            h = np.multiply(s, m2, out=s)
            masks.append(m2)
            k += 1
        if self.has_extra:
            inputs.append(h)
            z = h @ self.weights[k].T
            z += self.biases[k]
            mask = z > 0
            h = np.multiply(z, mask, out=z)
            masks.append(mask)
            k += 1
        inputs.append(h)
        out = h @ self.weights[k].T
        out += self.biases[k]
        return out, (inputs, masks)

    @staticmethod
    def _weight_grad(x: np.ndarray, g: np.ndarray) -> np.ndarray:
        # matmul grad_b + the transpose node's VJP, verbatim — with the
        # engine's single-row outer-product fast path.
        if x.shape[-2] == 1:
            return np.transpose(np.swapaxes(x, -1, -2) * g)
        return np.transpose(np.swapaxes(x, -1, -2) @ g)

    def backward(self, cache, g: np.ndarray) -> List[np.ndarray]:
        """Gradients in parameter order for upstream ``g = d out``."""
        inputs, masks = cache
        n_lin = len(self.weights)
        d_w: List[Optional[np.ndarray]] = [None] * n_lin
        d_b: List[Optional[np.ndarray]] = [None] * n_lin
        k = n_lin - 1
        m = len(masks) - 1
        d_w[k] = self._weight_grad(inputs[k], g)
        d_b[k] = g.sum(axis=0)
        g = g @ self.weights[k]
        k -= 1
        if self.has_extra:
            g = np.multiply(g, masks[m], out=g)
            m -= 1
            d_w[k] = self._weight_grad(inputs[k], g)
            d_b[k] = g.sum(axis=0)
            g = g @ self.weights[k]
            k -= 1
        for _ in range(self.n_blocks):
            g = np.multiply(g, masks[m], out=g)  # relu at the residual output
            m -= 1
            d_skip = g  # the skip connection's share (kept unmutated below)
            d_w[k] = self._weight_grad(inputs[k], g)
            d_b[k] = g.sum(axis=0)
            g = g @ self.weights[k]
            k -= 1
            g = np.multiply(g, masks[m], out=g)
            m -= 1
            d_w[k] = self._weight_grad(inputs[k], g)
            d_b[k] = g.sum(axis=0)
            g = g @ self.weights[k]
            g += d_skip
            k -= 1
        g = np.multiply(g, masks[m], out=g)
        d_w[0] = self._weight_grad(inputs[0], g)
        d_b[0] = g.sum(axis=0)
        grads: List[np.ndarray] = []
        for w_grad, b_grad in zip(d_w, d_b):
            grads.extend([w_grad, b_grad])
        return grads

    def adam_step(self, grads: List[np.ndarray]) -> None:
        """One in-place Adam update, arithmetic-identical to nn.Adam.

        Scratch buffers hold what nn.Adam allocates fresh each step;
        every expression is the same ufunc sequence (scalar factors
        commuted onto the array operand where ``out=`` needs it)."""
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for p, m, v, grad, buf_a, buf_b in zip(
            self.params, self._m, self._v, grads, self._buf_a, self._buf_b
        ):
            m *= self.beta1
            np.multiply(grad, 1.0 - self.beta1, out=buf_a)  # (1-b1) * grad
            m += buf_a
            v *= self.beta2
            np.multiply(grad, 1.0 - self.beta2, out=buf_a)  # (1-b2) * grad
            buf_a *= grad
            v += buf_a
            np.divide(m, bias1, out=buf_a)  # m_hat
            np.divide(v, bias2, out=buf_b)  # v_hat
            np.sqrt(buf_b, out=buf_b)
            buf_b += self.eps
            buf_a *= self.lr  # lr * m_hat (commuted)
            np.divide(buf_a, buf_b, out=buf_a)
            p -= buf_a


def _train_fused(
    estimator: CostEstimator,
    dataset: CostDataset,
    epochs: int,
    batch_size: int,
    lr: float,
    seed: int,
) -> List[float]:
    """Fused trainer: one NumPy program per minibatch, zero graph ops."""
    trainer = _FusedMLPTrainer(estimator, lr=lr)
    targets = dataset.normalized_targets()
    rng = np.random.default_rng(seed)
    losses: List[float] = []
    for _ in range(epochs):
        order = rng.permutation(len(dataset))
        epoch_loss = 0.0
        n_batches = 0
        for start in range(0, len(order), batch_size):
            idx = order[start : start + batch_size]
            pred, cache = trainer.forward(dataset.features[idx])
            diff = pred - targets[idx]
            sq = diff * diff
            loss = sq.mean()
            # mse backward: mean spreads 1/size, the two mul-node
            # contributions to diff accumulate as t + t.
            g = np.broadcast_to(np.float64(1.0), sq.shape).astype(np.float64) / sq.size
            g_diff = g * diff
            d_pred = g_diff + g_diff
            trainer.adam_step(trainer.backward(cache, d_pred))
            epoch_loss += float(loss)
            n_batches += 1
        losses.append(epoch_loss / n_batches)
    return losses


def estimator_accuracy(estimator: CostEstimator, dataset: CostDataset) -> Dict[str, float]:
    """Mean relative accuracy per metric, in [0, 1] (paper quotes >99%).

    Predictions come from the one batched ``predict_numpy`` path (the
    per-row-stable kernel shared with the search fleet)."""
    pred = estimator.predict_numpy(dataset.features)
    names = ("latency", "energy", "area")
    out = {}
    for i, name in enumerate(names):
        rel_err = np.abs(pred[:, i] - dataset.targets[:, i]) / np.abs(dataset.targets[:, i])
        out[name] = float(1.0 - rel_err.mean())
    return out


def pretrain_estimator(
    space: SearchSpace,
    n_samples: int = DEFAULT_PRETRAIN_SAMPLES,
    epochs: int = DEFAULT_PRETRAIN_EPOCHS,
    seed: int = 0,
    estimator: Optional[CostEstimator] = None,
    platform: str = "eyeriss",
    backend: str = "fused",
) -> CostEstimator:
    """Build dataset, train, freeze — the full pre-training pipeline.

    ``platform`` names the hardware target the training pairs are
    sampled from; a supplied ``estimator`` must already be bound to it.
    ``n_samples`` defaults to the same canonical constant as
    ``build_cost_dataset`` (:data:`DEFAULT_PRETRAIN_SAMPLES`).
    """
    from repro.accelerator.platform import as_platform

    plat = as_platform(platform)
    if estimator is not None and estimator.platform != plat.name:
        raise ValueError(
            f"estimator is bound to platform {estimator.platform!r}, "
            f"cannot pre-train it against {plat.name!r}"
        )
    dataset = build_cost_dataset(space, n_samples=n_samples, seed=seed, platform=plat)
    estimator = estimator or CostEstimator(
        space, width=128, seed=seed, platform=plat.name
    )
    train_estimator(estimator, dataset, epochs=epochs, seed=seed, backend=backend)
    estimator.freeze()
    return estimator
