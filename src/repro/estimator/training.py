"""Estimator pre-training and accuracy reporting."""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro import nn
from repro.autodiff import Tensor
from repro.arch import SearchSpace
from repro.estimator.dataset import CostDataset, build_cost_dataset
from repro.estimator.estimator import CostEstimator


def train_estimator(
    estimator: CostEstimator,
    dataset: CostDataset,
    epochs: int = 60,
    batch_size: int = 256,
    lr: float = 1e-3,
    seed: int = 0,
) -> List[float]:
    """Train on normalized targets with Adam; returns per-epoch losses.

    The paper uses 200 epochs, batch 256, Adam lr 1e-4 on 10.8 M
    samples; the smaller default here converges on our smaller,
    smoother dataset.
    """
    estimator.set_normalization(dataset.target_mean, dataset.target_std)
    optimizer = nn.Adam(estimator.parameters(), lr=lr)
    targets = dataset.normalized_targets()
    rng = np.random.default_rng(seed)
    losses: List[float] = []
    for _ in range(epochs):
        order = rng.permutation(len(dataset))
        epoch_loss = 0.0
        n_batches = 0
        for start in range(0, len(order), batch_size):
            idx = order[start : start + batch_size]
            optimizer.zero_grad()
            pred = estimator(Tensor(dataset.features[idx]))
            loss = nn.mse_loss(pred, targets[idx])
            loss.backward()
            optimizer.step()
            epoch_loss += loss.item()
            n_batches += 1
        losses.append(epoch_loss / n_batches)
    return losses


def estimator_accuracy(estimator: CostEstimator, dataset: CostDataset) -> Dict[str, float]:
    """Mean relative accuracy per metric, in [0, 1] (paper quotes >99%)."""
    pred = estimator.predict_numpy(dataset.features)
    names = ("latency", "energy", "area")
    out = {}
    for i, name in enumerate(names):
        rel_err = np.abs(pred[:, i] - dataset.targets[:, i]) / np.abs(dataset.targets[:, i])
        out[name] = float(1.0 - rel_err.mean())
    return out


def pretrain_estimator(
    space: SearchSpace,
    n_samples: int = 8000,
    epochs: int = 120,
    seed: int = 0,
    estimator: Optional[CostEstimator] = None,
    platform: str = "eyeriss",
) -> CostEstimator:
    """Build dataset, train, freeze — the full pre-training pipeline.

    ``platform`` names the hardware target the training pairs are
    sampled from; a supplied ``estimator`` must already be bound to it.
    """
    from repro.accelerator.platform import as_platform

    plat = as_platform(platform)
    if estimator is not None and estimator.platform != plat.name:
        raise ValueError(
            f"estimator is bound to platform {estimator.platform!r}, "
            f"cannot pre-train it against {plat.name!r}"
        )
    dataset = build_cost_dataset(space, n_samples=n_samples, seed=seed, platform=plat)
    estimator = estimator or CostEstimator(
        space, width=128, seed=seed, platform=plat.name
    )
    train_estimator(estimator, dataset, epochs=epochs, seed=seed)
    estimator.freeze()
    return estimator
