"""Sampling network/accelerator pairs for estimator pre-training.

The paper samples 10.8 M pairs and evaluates them with Timeloop +
Accelergy; we sample a few thousand (the analytical oracle is smooth,
so far fewer samples suffice) and evaluate them with
:func:`repro.accelerator.evaluate_network`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.accelerator import DesignSpace, evaluate_network
from repro.arch import NetworkArch, SearchSpace
from repro.arch.encoding import extended_feature_dim, extended_features_from_indices


@dataclass
class CostDataset:
    """Feature/target arrays plus the normalization statistics.

    Targets are regressed in log-space: hardware metrics are positive
    and span an order of magnitude, and log-space training makes the
    model's *relative* error uniform — which is what constraint
    checking cares about.
    """

    features: np.ndarray  # (N, arch_dim + 6)
    targets: np.ndarray  # (N, 3) raw (latency_ms, energy_mj, area_mm2)
    target_mean: np.ndarray  # mean of log(targets)
    target_std: np.ndarray  # std of log(targets)

    def __len__(self) -> int:
        return len(self.features)

    def normalized_targets(self) -> np.ndarray:
        return (np.log(self.targets) - self.target_mean) / self.target_std

    def denormalize(self, normalized: np.ndarray) -> np.ndarray:
        return np.exp(normalized * self.target_std + self.target_mean)

    def split(self, val_fraction: float = 0.1, seed: int = 0) -> Tuple["CostDataset", "CostDataset"]:
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(self))
        n_val = int(len(self) * val_fraction)
        val_idx, train_idx = order[:n_val], order[n_val:]
        return (
            CostDataset(self.features[train_idx], self.targets[train_idx],
                        self.target_mean, self.target_std),
            CostDataset(self.features[val_idx], self.targets[val_idx],
                        self.target_mean, self.target_std),
        )


def build_cost_dataset(
    space: SearchSpace,
    n_samples: int = 4000,
    seed: int = 0,
    platform=None,
) -> CostDataset:
    """Sample (network, accelerator) pairs and evaluate ground truth.

    ``platform`` selects the hardware design space the accelerator half
    is drawn from and the analytical oracle the targets come from
    (default: eyeriss).
    """
    from repro.accelerator.platform import as_platform

    plat = as_platform(platform)
    rng = np.random.default_rng(seed)
    design_space = DesignSpace(plat)
    dim = extended_feature_dim(space) + 6
    features = np.empty((n_samples, dim))
    targets = np.empty((n_samples, 3))
    for i in range(n_samples):
        arch = NetworkArch.random(space, rng)
        config = design_space.sample(rng)
        metrics = evaluate_network(arch, config, platform=plat)
        features[i] = np.concatenate(
            [extended_features_from_indices(space, arch.to_indices()), config.to_vector()]
        )
        targets[i] = metrics.as_tuple()
    log_targets = np.log(targets)
    mean = log_targets.mean(axis=0)
    std = log_targets.std(axis=0) + 1e-12
    return CostDataset(features, targets, mean, std)
