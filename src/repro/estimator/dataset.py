"""Sampling network/accelerator pairs for estimator pre-training.

The paper samples 10.8 M pairs and evaluates them with Timeloop +
Accelergy; we sample a few thousand (the analytical oracle is smooth,
so far fewer samples suffice) and evaluate them with the pair-batch
oracle (:mod:`repro.accelerator.batch`), which is bitwise identical to
the scalar :func:`repro.accelerator.evaluate_network`.

``build_cost_dataset`` contains no per-sample Python: the sampling is
one stream-exact vectorized draw, the features come from the batched
encoders, and the targets from one pair-oracle call.  The sampling
stream interleaves per pair — ``L`` architecture draws followed by 4
design-space draws — exactly as the original scalar loop did, so the
dataset (and everything trained on it) is bitwise reproducible across
the vectorization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.accelerator import DesignSpace
from repro.arch import SearchSpace
from repro.arch.encoding import (
    extended_feature_dim,
    extended_features_from_indices_batch,
)

#: Canonical pre-training sample count.  ``build_cost_dataset`` and
#: ``pretrain_estimator`` both default to this; they used to disagree
#: (4000 vs 8000), which made ad-hoc dataset builds silently train on
#: half the data the canonical estimators see.
DEFAULT_PRETRAIN_SAMPLES = 8000

#: Canonical pre-training epoch count (``pretrain_estimator`` default).
DEFAULT_PRETRAIN_EPOCHS = 120


@dataclass
class CostDataset:
    """Feature/target arrays plus the normalization statistics.

    Targets are regressed in log-space: hardware metrics are positive
    and span an order of magnitude, and log-space training makes the
    model's *relative* error uniform — which is what constraint
    checking cares about.  Non-positive targets are rejected at
    construction: ``np.log`` would turn them into ``-inf``/``nan``
    means that silently poison the normalization statistics.
    """

    features: np.ndarray  # (N, arch_dim + 6)
    targets: np.ndarray  # (N, 3) raw (latency_ms, energy_mj, area_mm2)
    target_mean: np.ndarray  # mean of log(targets)
    target_std: np.ndarray  # std of log(targets)

    def __post_init__(self) -> None:
        if len(self.targets) and not np.all(self.targets > 0):
            bad = int(np.argwhere(~(self.targets > 0))[0][0])
            raise ValueError(
                f"CostDataset targets must be positive for log-space "
                f"regression; row {bad} is {self.targets[bad]!r}"
            )

    def __len__(self) -> int:
        return len(self.features)

    def normalized_targets(self) -> np.ndarray:
        return (np.log(self.targets) - self.target_mean) / self.target_std

    def denormalize(self, normalized: np.ndarray) -> np.ndarray:
        return np.exp(normalized * self.target_std + self.target_mean)

    def split(self, val_fraction: float = 0.1, seed: int = 0) -> Tuple["CostDataset", "CostDataset"]:
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(self))
        n_val = int(len(self) * val_fraction)
        val_idx, train_idx = order[:n_val], order[n_val:]
        return (
            CostDataset(self.features[train_idx], self.targets[train_idx],
                        self.target_mean, self.target_std),
            CostDataset(self.features[val_idx], self.targets[val_idx],
                        self.target_mean, self.target_std),
        )


def _check_oracle_targets(targets: np.ndarray, platform_name: str, configs) -> None:
    """Raise a ValueError naming the offending platform/config when the
    analytical oracle ever emits a non-positive metric."""
    if np.all(targets > 0):
        return
    row, col = (int(x) for x in np.argwhere(~(targets > 0))[0])
    metric = ("latency_ms", "energy_mj", "area_mm2")[col]
    config = configs.configs()[row]
    raise ValueError(
        f"oracle produced non-positive {metric}={targets[row, col]!r} on "
        f"platform {platform_name!r} for config [{config}] (sample {row}); "
        f"log-space normalization would be poisoned — fix the platform's "
        f"cost model before pre-training on it"
    )


def build_cost_dataset(
    space: SearchSpace,
    n_samples: int = DEFAULT_PRETRAIN_SAMPLES,
    seed: int = 0,
    platform=None,
) -> CostDataset:
    """Sample (network, accelerator) pairs and evaluate ground truth.

    ``platform`` selects the hardware design space the accelerator half
    is drawn from and the analytical oracle the targets come from
    (default: eyeriss).

    Fully vectorized: one stream-exact bounded draw for all samples
    (per-pair interleaved order, see :mod:`repro.rng`), batched feature
    encoding, and one pair-oracle evaluation — bitwise identical to the
    original one-pair-at-a-time loop, ~30x faster.
    """
    from repro.accelerator.batch import evaluate_pairs_from_indices
    from repro.accelerator.platform import as_platform
    from repro.rng import bounded_integers_batch

    plat = as_platform(platform)
    rng = np.random.default_rng(seed)
    design_space = DesignSpace(plat)

    # One draw matrix replays the scalar loop's stream: each sample row
    # is L candidate draws (NetworkArch.random) then the 4 design-space
    # draws (DesignSpace.sample), in that order.
    n_layers = space.num_layers
    bounds_row = np.concatenate(
        [space.candidate_count_array(), design_space.sample_bounds()]
    )
    draws = bounded_integers_batch(
        rng, np.broadcast_to(bounds_row, (n_samples, n_layers + 4))
    )
    indices = draws[:, :n_layers]
    configs = design_space.batch_from_draws(draws[:, n_layers:])

    features = np.concatenate(
        [extended_features_from_indices_batch(space, indices), configs.to_vectors()],
        axis=1,
    )
    assert features.shape == (n_samples, extended_feature_dim(space) + 6)
    targets = evaluate_pairs_from_indices(space, indices, configs).as_matrix()
    _check_oracle_targets(targets, plat.name, configs)
    log_targets = np.log(targets)
    mean = log_targets.mean(axis=0)
    std = log_targets.std(axis=0) + 1e-12
    return CostDataset(features, targets, mean, std)
