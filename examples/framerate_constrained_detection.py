"""Frame-rate-constrained vision system design (paper Sec. 1 scenario).

An object-detection pipeline must keep up with its camera: 60 FPS
(16.6 ms/frame) for a high-speed camera, 30 FPS (33.3 ms) for a
standard one.  This example co-designs a network/accelerator pair for
each camera and contrasts the two solutions — reproducing the paper's
Figure 5 analysis: tight budgets push toward small kernels and a
latency-lean array; loose budgets admit larger kernels and an
energy-lean row-stationary design.

Run:  python examples/framerate_constrained_detection.py
"""

from repro.arch import cifar_space
from repro.baselines import run_dance, run_hdx
from repro.core import ConstraintSet
from repro.estimator import pretrain_estimator


def describe(tag: str, result) -> None:
    arch, config, metrics = result.arch, result.config, result.metrics
    kernels = [c.kernel for c in arch.choices if not c.is_skip]
    print(f"--- {tag} ---")
    print(f"  constraint: {result.constraints} -> satisfied: {result.in_constraint}")
    print(f"  metrics   : {metrics}")
    print(f"  error     : {result.error_percent:.2f}%")
    print(f"  network   : depth {arch.depth()}, mean kernel {sum(kernels)/len(kernels):.2f}, "
          f"{arch.total_macs()/1e6:.0f}M MACs")
    print(f"  hardware  : {config}")
    print()


def main() -> None:
    space = cifar_space()
    print("Pre-training cost estimator...")
    estimator = pretrain_estimator(space, seed=0)

    # A designer without hard constraints would have to tune lambda by
    # trial and error; show what the unconstrained search gives first.
    free = run_dance(space, estimator, lambda_cost=0.002, seed=0,
                     constraints=ConstraintSet.latency(16.6))
    describe("unconstrained co-exploration (DANCE)", free)

    for fps in (60, 30):
        target_ms = 1000.0 / fps / 2  # leave half the frame for post-processing
        target_ms = round(2 * target_ms, 1)  # i.e. 16.6 / 33.3 ms budgets
        result = run_hdx(
            space, estimator, ConstraintSet.latency(target_ms),
            lambda_cost=0.002, seed=0,
        )
        describe(f"{fps} FPS camera ({target_ms} ms budget)", result)


if __name__ == "__main__":
    main()
