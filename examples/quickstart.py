"""Quickstart: hard-constrained co-exploration in ~a minute.

Searches a CIFAR-scale MBConv network together with an Eyeriss-style
accelerator under a 60 FPS (16.6 ms) latency constraint, then prints
the solution and verifies it against the analytical ground truth.

Run:  python examples/quickstart.py
"""

from repro.arch import cifar_space
from repro.core import ConstraintSet
from repro.baselines import run_hdx
from repro.estimator import pretrain_estimator

def main() -> None:
    space = cifar_space()
    print(f"Search space: {space}")

    # 1. Pre-train the hardware cost estimator on the analytical oracle
    #    (the paper does this once with Timeloop/Accelergy samples).
    print("Pre-training cost estimator (one-off, ~30 s)...")
    estimator = pretrain_estimator(space, seed=0)

    # 2. Run HDX with a hard 16.6 ms (60 FPS) latency constraint.
    constraints = ConstraintSet.latency(16.6)
    print(f"Searching with hard constraint: {constraints}")
    result = run_hdx(space, estimator, constraints, lambda_cost=0.002, seed=0)

    # 3. Inspect the solution.
    print()
    print(result.summary())
    print()
    print("Network (kernel, expand) per layer:")
    print("  " + " ".join(str(c) for c in result.arch.choices))
    print(f"Accelerator: {result.config}")
    print(f"Constraint satisfied (ground truth): {result.in_constraint}")
    manipulated = sum(r.manipulated_alpha for r in result.history)
    print(f"Gradient manipulation engaged on {manipulated}/{len(result.history)} epochs")


if __name__ == "__main__":
    main()
