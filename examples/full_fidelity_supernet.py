"""Full-fidelity co-exploration: real supernet on synthetic images.

The benchmark harness uses a calibrated surrogate for Loss_NAS so that
hundred-run experiments finish offline; this example exercises the
*other* fidelity: a genuine ProxylessNAS-style supernet trained on the
synthetic CIFAR substitute, with bilevel updates (weights on the train
split, architecture parameters on the validation split), followed by
from-scratch training of the discovered network.

Expect a few minutes of CPU time.

Run:  python examples/full_fidelity_supernet.py
"""

import numpy as np

from repro import nn
from repro.arch import build_network_module, cifar_space
from repro.autodiff import Tensor
from repro.core import CoExplorer, ConstraintSet, SearchConfig
from repro.data import DataLoader, cifar10_like, train_val_split
from repro.estimator import pretrain_estimator


def train_final_network(arch, dataset, epochs: int = 4) -> float:
    """From-scratch training of the searched architecture (reduced-scale
    version of the paper's 300-epoch final training)."""
    model = build_network_module(arch, seed=0)
    train_ds, test_ds = train_val_split(dataset, val_fraction=0.25, seed=1)
    optimizer = nn.SGD(model.parameters(), lr=0.05, momentum=0.9, nesterov=True,
                       weight_decay=1e-3)
    schedule = nn.CosineAnnealingLR(optimizer, t_max=epochs)
    loader = DataLoader(train_ds, batch_size=32, seed=0)
    for epoch in range(epochs):
        for images, labels in loader:
            optimizer.zero_grad()
            loss = nn.cross_entropy(model(Tensor(images)), labels)
            loss.backward()
            optimizer.step()
        schedule.step()
    model.eval()
    accuracy = nn.accuracy(model(Tensor(test_ds.images)), test_ds.labels)
    return 100.0 * (1.0 - accuracy)


def main() -> None:
    space = cifar_space()
    dataset = cifar10_like(n_samples=600, size=space.train_input_size, seed=0)
    print("Pre-training cost estimator...")
    estimator = pretrain_estimator(space, n_samples=4000, epochs=80, seed=0)

    config = SearchConfig(
        fidelity="full",
        constraints=ConstraintSet.latency(33.3),
        lambda_cost=0.002,
        epochs=12,  # supernet epochs (reduced for the example)
        w_steps_per_epoch=6,
        batch_size=32,
        seed=0,
    )
    print("Running full-fidelity co-exploration (supernet training)...")
    explorer = CoExplorer(space, estimator, config, dataset=dataset)
    result = explorer.search()
    print(result.summary())

    print("Training the searched network from scratch...")
    error = train_final_network(result.arch, dataset)
    print(f"From-scratch test error on the synthetic task: {error:.1f}%")
    print("(Chance level is 90%; any value well below that shows the "
          "discovered architecture genuinely learns.)")


if __name__ == "__main__":
    main()
