"""Multi-constraint design for a battery-powered device.

A mobile subsystem has three simultaneous budgets: a latency target
(interactive use), an energy-per-inference budget (battery life), and
a silicon-area cap (cost).  HDX's generalized manipulation (Eqs. 8/9)
handles all three at once; this example also shows the single-metric
variants for comparison.

Run:  python examples/multi_constraint_budget.py
"""

from repro.arch import cifar_space
from repro.baselines import run_hdx
from repro.core import ConstraintSet
from repro.estimator import pretrain_estimator

BUDGETS = {"latency": 25.0, "energy": 9.0, "area": 1.8}


def main() -> None:
    space = cifar_space()
    print("Pre-training cost estimator...")
    estimator = pretrain_estimator(space, seed=0)

    print(f"\nBudgets: {BUDGETS} (ms / mJ / mm2)\n")

    for label, bounds in [
        ("latency only", {"latency": BUDGETS["latency"]}),
        ("energy only", {"energy": BUDGETS["energy"]}),
        ("area only", {"area": BUDGETS["area"]}),
        ("all three", dict(BUDGETS)),
    ]:
        constraints = ConstraintSet.from_dict(bounds)
        result = run_hdx(space, estimator, constraints, lambda_cost=0.002, seed=1)
        status = "OK " if result.in_constraint else "VIOLATED"
        print(f"{label:12s} [{status}] {result.metrics} | "
              f"err {result.error_percent:.2f}% | {result.config}")

    print("\nGround-truth metrics come from the analytical Timeloop/Accelergy")
    print("substitute, never from the learned estimator.")


if __name__ == "__main__":
    main()
